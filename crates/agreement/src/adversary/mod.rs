//! Byzantine adversary implementations.
//!
//! A Byzantine process in the model can deviate arbitrarily — *except* that
//! it cannot forge signatures (it holds only its own [`sigsim::Signer`]) and
//! cannot bypass memory permissions (the memory checks every operation).
//! Each adversary here exercises one of the attack surfaces the paper's
//! mechanisms close:
//!
//! * [`SilentActor`] — omission/crash behaviour, the residual power a
//!   Byzantine process has once non-equivocation and history checking
//!   confine it.
//! * [`NebEquivocator`] — attempts classic equivocation through the
//!   *replicated* broadcast slots: different (validly signed!) values for
//!   the same sequence number on different memory replicas. Non-equivocating
//!   broadcast must never let two correct processes deliver different
//!   values (Lemma 4.1, property 2).
//! * [`BadHistoryActor`] — speaks the trusted-channel protocol but sends a
//!   Paxos message its history cannot justify (an `Accept` with no promise
//!   quorum). The conformance checker must reject it everywhere.
//! * [`CqEquivocatingLeader`] — a Byzantine Cheap Quorum leader that writes
//!   *different signed values* to different replicas of the leader region,
//!   trying to make followers decide differently. Unanimity (all `n`
//!   matching copies + `n` proofs) must prevent any split decision.

use rdma_sim::{MemWire, MemoryClient, OpId};
use sigsim::Signer;
use simnet::{Actor, ActorId, Context, EventKind};

use crate::cheap_quorum;
use crate::nebcast::{self, NebSlot};
use crate::paxos::{Dest, PaxosMsg};
use crate::trusted::{HistEntry, RbPayload, TWire};
use crate::types::{sigtags, Ballot, CqSigned, Msg, Pid, RegVal, Value};

/// A Byzantine process that never takes a step (pure omission).
#[derive(Debug)]
pub struct SilentActor;

impl Actor<Msg> for SilentActor {
    fn on_event(&mut self, _ctx: &mut Context<'_, Msg>, _ev: EventKind<Msg>) {}
}

/// Tries to equivocate at the broadcast layer: writes signed value `a` to
/// the first `split` memories and signed value `b` to the rest, all in its
/// own slot `slots[me, 1, me]`.
pub struct NebEquivocator {
    me: Pid,
    mems: Vec<ActorId>,
    split: usize,
    a: Value,
    b: Value,
    signer: Signer,
    client: MemoryClient<RegVal, Msg>,
}

impl NebEquivocator {
    /// Creates the adversary.
    pub fn new(
        me: Pid,
        mems: Vec<ActorId>,
        split: usize,
        a: Value,
        b: Value,
        signer: Signer,
    ) -> NebEquivocator {
        NebEquivocator {
            me,
            mems,
            split,
            a,
            b,
            signer,
            client: MemoryClient::new(),
        }
    }

    fn slot_for(&self, v: Value) -> RegVal {
        let wire = TWire {
            dest: Dest::All,
            payload: RbPayload::Setup {
                value: v,
                evidence: Default::default(),
            },
            history: Vec::new(),
        };
        let sig = self.signer.sign(&wire.sign_view(1));
        RegVal::Neb(NebSlot { k: 1, wire, sig })
    }
}

impl Actor<Msg> for NebEquivocator {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                let reg = nebcast::slot_reg(self.me, 1, self.me);
                let region = nebcast::row_region(self.me);
                let (a, b) = (self.slot_for(self.a), self.slot_for(self.b));
                for (i, mem) in self.mems.clone().into_iter().enumerate() {
                    let val = if i < self.split { a.clone() } else { b.clone() };
                    self.client.write(ctx, mem, region, reg, val);
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let _ = self.client.on_wire(ctx, from, wire);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for NebEquivocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NebEquivocator({})", self.me)
    }
}

/// Broadcasts a protocol-illegal Paxos `Accept` (no promise quorum in its
/// history) through a *correctly formatted* trusted wire. Every correct
/// receiver's conformance check must reject and distrust it.
pub struct BadHistoryActor {
    me: Pid,
    mems: Vec<ActorId>,
    v: Value,
    signer: Signer,
    client: MemoryClient<RegVal, Msg>,
}

impl BadHistoryActor {
    /// Creates the adversary.
    pub fn new(me: Pid, mems: Vec<ActorId>, v: Value, signer: Signer) -> BadHistoryActor {
        BadHistoryActor {
            me,
            mems,
            v,
            signer,
            client: MemoryClient::new(),
        }
    }
}

impl Actor<Msg> for BadHistoryActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                // An Accept for our own ballot with an empty history: no
                // Setup, no promises — flagrantly non-conformant, but
                // correctly signed and sequenced.
                let wire = TWire {
                    dest: Dest::All,
                    payload: RbPayload::Paxos(PaxosMsg::Accept {
                        b: Ballot {
                            round: 1,
                            pid: self.me,
                        },
                        v: self.v,
                    }),
                    history: Vec::<HistEntry>::new(),
                };
                let sig = self.signer.sign(&wire.sign_view(1));
                let slot = RegVal::Neb(NebSlot { k: 1, wire, sig });
                let reg = nebcast::slot_reg(self.me, 1, self.me);
                let region = nebcast::row_region(self.me);
                for mem in self.mems.clone() {
                    self.client.write(ctx, mem, region, reg, slot.clone());
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let _ = self.client.on_wire(ctx, from, wire);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for BadHistoryActor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BadHistoryActor({})", self.me)
    }
}

/// A Byzantine Cheap Quorum leader: writes signed value `a` to the leader
/// region on the first `split` memories and signed value `b` to the rest,
/// hoping different followers adopt different values.
pub struct CqEquivocatingLeader {
    me: Pid,
    mems: Vec<ActorId>,
    split: usize,
    a: Value,
    b: Value,
    signer: Signer,
    client: MemoryClient<RegVal, Msg>,
    ops: Vec<OpId>,
}

impl CqEquivocatingLeader {
    /// Creates the adversary (it must be the configured leader to hold the
    /// write permission).
    pub fn new(
        me: Pid,
        mems: Vec<ActorId>,
        split: usize,
        a: Value,
        b: Value,
        signer: Signer,
    ) -> CqEquivocatingLeader {
        CqEquivocatingLeader {
            me,
            mems,
            split,
            a,
            b,
            signer,
            client: MemoryClient::new(),
            ops: Vec::new(),
        }
    }

    fn signed(&self, v: Value) -> RegVal {
        let sig = self.signer.sign(&(sigtags::CQ_VALUE, v));
        RegVal::CqValue(CqSigned {
            value: v,
            leader_sig: sig,
            own_sig: sig,
        })
    }
}

impl Actor<Msg> for CqEquivocatingLeader {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                let (a, b) = (self.signed(self.a), self.signed(self.b));
                for (i, mem) in self.mems.clone().into_iter().enumerate() {
                    let val = if i < self.split { a.clone() } else { b.clone() };
                    let op = self.client.write(
                        ctx,
                        mem,
                        cheap_quorum::LEADER_REGION,
                        cheap_quorum::VALUE_L,
                        val,
                    );
                    self.ops.push(op);
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let _ = self.client.on_wire(ctx, from, wire);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for CqEquivocatingLeader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CqEquivocatingLeader({})", self.me)
    }
}

/// Broadcasts a legal first message, then a second message whose attached
/// history **misrepresents the first** (claims it sent a different value).
/// The trusted layer's actual-broadcast cross-check must reject message 2
/// at every correct receiver, while message 1 stays usable.
pub struct HistoryRewriter {
    me: Pid,
    mems: Vec<ActorId>,
    /// The value actually broadcast at k=1.
    pub real: Value,
    /// The value the k=2 history pretends was sent at k=1.
    pub fake: Value,
    signer: Signer,
    client: MemoryClient<RegVal, Msg>,
}

impl HistoryRewriter {
    /// Creates the adversary.
    pub fn new(
        me: Pid,
        mems: Vec<ActorId>,
        real: Value,
        fake: Value,
        signer: Signer,
    ) -> HistoryRewriter {
        HistoryRewriter {
            me,
            mems,
            real,
            fake,
            signer,
            client: MemoryClient::new(),
        }
    }

    fn broadcast(&mut self, ctx: &mut Context<'_, Msg>, k: u64, wire: TWire) {
        let sig = self.signer.sign(&wire.sign_view(k));
        let slot = RegVal::Neb(NebSlot { k, wire, sig });
        let reg = nebcast::slot_reg(self.me, k, self.me);
        let region = nebcast::row_region(self.me);
        for mem in self.mems.clone() {
            self.client.write(ctx, mem, region, reg, slot.clone());
        }
    }
}

impl Actor<Msg> for HistoryRewriter {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                // k=1: a perfectly legal Setup broadcast of `real`.
                let first = TWire {
                    dest: Dest::All,
                    payload: RbPayload::Setup {
                        value: self.real,
                        evidence: Default::default(),
                    },
                    history: Vec::new(),
                };
                self.broadcast(ctx, 1, first);
                // k=2: a Paxos Prepare whose history claims the k=1 send
                // carried `fake` instead of `real`.
                let lying_history = vec![HistEntry::Sent {
                    k: 1,
                    dest: Dest::All,
                    payload: RbPayload::Setup {
                        value: self.fake,
                        evidence: Default::default(),
                    },
                }];
                let second = TWire {
                    dest: Dest::All,
                    payload: RbPayload::Paxos(PaxosMsg::Prepare {
                        b: Ballot {
                            round: 1,
                            pid: self.me,
                        },
                    }),
                    history: lying_history,
                };
                self.broadcast(ctx, 2, second);
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let _ = self.client.on_wire(ctx, from, wire);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for HistoryRewriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HistoryRewriter({})", self.me)
    }
}

/// A Byzantine *group leader* for the sharded Byzantine-mode service
/// ([`crate::smr::ByzSmrNode`] groups): it holds the leader role of its
/// replication group and attacks on both fronts the mode must close.
///
/// * **Log equivocation (rewrite attack).** At start it broadcasts a
///   validly-signed `LogEntries` wire committing junk value `a` at
///   instance 0, then after `rewrite_after` overwrites the same broadcast
///   slot with junk value `b` — the classic attack on a replicated SWMR
///   register. Non-equivocating broadcast confines it: early auditors may
///   deliver `a`, but every auditor that sees both (the earlier copies
///   replicate to a memory majority) blocks the sender forever, counted
///   in the report as `equivocations_blocked`. No two correct replicas
///   ever settle different values for the instance.
/// * **Fabricated commits.** Every routed [`Msg::Submit`] batch is
///   answered with `Decided` claims to the router — for the routed
///   commands it never committed anywhere, *plus* one claim per batch
///   for a command id that does not exist at all. The router's `f + 1`
///   confirmation quorum withholds every one (`byz_withheld_reports`);
///   the claims for real commands are eventually out-voted by honest
///   reports after failover, while the invented ids stay unconfirmed
///   forever (`byz_unconfirmed_claims`).
///
/// It never commits a real client command, so scripted Ω failover is what
/// restores the group's liveness — exactly the role a silent-after-lying
/// Byzantine leader plays in the paper's model.
pub struct LogEquivocator {
    me: Pid,
    mems: Vec<ActorId>,
    /// The router it lies to.
    router: ActorId,
    /// Junk committed at instance 0 first...
    a: Value,
    /// ...then rewritten to this (same broadcast slot, new signature).
    b: Value,
    rewrite_after: simnet::Duration,
    signer: Signer,
    client: MemoryClient<RegVal, Msg>,
    next_claim_instance: u64,
    fabricated: u64,
}

impl LogEquivocator {
    /// Creates the adversary (install it as its group's initial leader).
    pub fn new(
        me: Pid,
        mems: Vec<ActorId>,
        router: ActorId,
        a: Value,
        b: Value,
        rewrite_after: simnet::Duration,
        signer: Signer,
    ) -> LogEquivocator {
        LogEquivocator {
            me,
            mems,
            router,
            a,
            b,
            rewrite_after,
            signer,
            client: MemoryClient::new(),
            next_claim_instance: 0,
            fabricated: 0,
        }
    }

    fn log_slot(&self, v: Value) -> RegVal {
        let wire = crate::smr::byz::log_entries_wire(0, 0, vec![v]);
        let sig = self.signer.sign(&wire.sign_view(1));
        RegVal::Neb(NebSlot { k: 1, wire, sig })
    }

    fn write_everywhere(&mut self, ctx: &mut Context<'_, Msg>, val: RegVal) {
        let reg = nebcast::slot_reg(self.me, 1, self.me);
        let region = nebcast::row_region(self.me);
        for mem in self.mems.clone() {
            self.client.write(ctx, mem, region, reg, val.clone());
        }
    }
}

impl Actor<Msg> for LogEquivocator {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                let a = self.log_slot(self.a);
                self.write_everywhere(ctx, a);
                ctx.set_timer(self.rewrite_after, 1);
            }
            EventKind::Timer { tag: 1, .. } => {
                // The rewrite: same sequence number, different signed
                // value. Anyone who audits from here on sees the earlier
                // copies and blocks us.
                let b = self.log_slot(self.b);
                self.write_everywhere(ctx, b);
            }
            EventKind::Msg {
                msg: Msg::Submit { cmds },
                ..
            } => {
                // Lie to the router: claim every routed command decided,
                // without writing a thing — plus one wholly invented
                // command id per batch (a counter in bits disjoint from
                // the junk base's set bits, well above any client id),
                // which no honest replica can ever corroborate.
                self.fabricated += 1;
                let invented = Value((self.a.0 | 1 << 50) + (self.fabricated << 16));
                for v in cmds.into_iter().chain([invented]) {
                    let instance = self.next_claim_instance;
                    self.next_claim_instance += 1;
                    ctx.send(
                        self.router,
                        Msg::Decided {
                            instance: crate::types::Instance(instance),
                            value: v,
                        },
                    );
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let _ = self.client.on_wire(ctx, from, wire);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for LogEquivocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LogEquivocator({})", self.me)
    }
}

/// A Byzantine *follower* in a sharded Byzantine-mode group that forges
/// delivery receipts. Colluding with its group's initial leader — it
/// holds a copy of that leader's [`sigsim::Signer`], double-signing being
/// the one extra capability the signature model grants a coalition — it
/// writes into its own row a receipt crediting the leader with a
/// validly-signed broadcast the leader never made. Without a provenance
/// check a takeover scan would *prefer* the forged "delivered" value over
/// genuine candidates; [`crate::smr::ByzSmrNode`]'s scan instead matches
/// every receipt against the claimed broadcaster's unforgeable self-slot,
/// demotes the forgery, and counts it (surfaced as
/// `byz_receipts_rejected` in the sharded report). Beyond the forgery it
/// is silent, so Ω failover past it behaves like failover past a silent
/// replica.
pub struct ReceiptForger {
    me: Pid,
    mems: Vec<ActorId>,
    /// The never-broadcast value the forged receipt vouches for.
    forged: Value,
    write_after: simnet::Duration,
    /// The colluding leader's signer (the forgery must verify as the
    /// leader's own broadcast).
    leader_signer: Signer,
    leader: Pid,
    client: MemoryClient<RegVal, Msg>,
}

/// Sequence number of the forged broadcast: far above anything a real
/// leader reaches, so the forgery never collides with a genuine self-slot
/// (which would merely make it an equivocation-rewrite race instead).
const FORGED_K: u64 = 9_999;

impl ReceiptForger {
    /// Creates the adversary (install it at a *follower* slot of the
    /// group whose initial leader `leader` is).
    pub fn new(
        me: Pid,
        mems: Vec<ActorId>,
        forged: Value,
        write_after: simnet::Duration,
        leader_signer: Signer,
        leader: Pid,
    ) -> ReceiptForger {
        ReceiptForger {
            me,
            mems,
            forged,
            write_after,
            leader_signer,
            leader,
            client: MemoryClient::new(),
        }
    }
}

impl Actor<Msg> for ReceiptForger {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                ctx.set_timer(self.write_after, 1);
            }
            EventKind::Timer { tag: 1, .. } => {
                // The forgery: a receipt in OUR row claiming the leader
                // broadcast `forged` at instance 0 — signed with the
                // leader's key, so every signature check passes.
                let wire = crate::smr::byz::log_entries_wire(0, 0, vec![self.forged]);
                let sig = self.leader_signer.sign(&wire.sign_view(FORGED_K));
                let slot = RegVal::Neb(NebSlot {
                    k: FORGED_K,
                    wire,
                    sig,
                });
                let reg = nebcast::receipt_reg(self.me, FORGED_K, self.leader);
                let region = nebcast::row_region(self.me);
                for mem in self.mems.clone() {
                    self.client.write(ctx, mem, region, reg, slot.clone());
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let _ = self.client.on_wire(ctx, from, wire);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for ReceiptForger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReceiptForger({})", self.me)
    }
}

/// Re-export used by tests that only need a type name.
pub type Wire = MemWire<RegVal>;
