//! Aligned Paxos (§5.2, Algorithms 9–15).
//!
//! Shows that processes and memories are *equivalent agents*: consensus is
//! possible as long as a majority of the **combined** set of agents
//! (`n + m`) stays alive — strictly better than requiring a process
//! majority or a memory majority separately.
//!
//! Structure (Algorithm 9): a classic two-phase proposer whose
//! communicate / hear-back / analyze steps are implemented per agent kind:
//!
//! * **Process agents** speak Paxos: `Prepare`/`Promise`,
//!   `Accept`/`Accepted` ([`AlMsg`]).
//! * **Memory agents** hold one slot per process. Two implementations of
//!   the memory leg are provided, mirroring the paper's footnote 4:
//!   * [`MemoryMode::Protected`] — Algorithm 10's `changePermission` then
//!     write; a successful phase-2 write needs no read-back (dynamic
//!     permissions, as in Protected Memory Paxos).
//!   * [`MemoryMode::DiskStyle`] — write own slot then read all slots
//!     (Disk-Paxos style, **no permissions needed**); phase 2 re-reads to
//!     verify no interference.
//!
//! A phase completes when a majority of all agents answered successfully;
//! any `Nack`, higher `minProp`, or failed write aborts the attempt.

use std::collections::BTreeMap;

use rdma_sim::{
    LegalChange, MemResponse, MemoryActor, MemoryClient, Permission, RegId, RegionId, RegionSpec,
};
use simnet::{Actor, ActorId, Context, Duration, EventKind, Time};

use crate::types::{spaces, Ballot, Instance, Msg, PaxSlot, Pid, RegVal, Value};

/// Process-agent messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AlMsg {
    /// Phase-1 communicate to a process agent.
    Prepare {
        /// The ballot.
        b: Ballot,
    },
    /// Phase-1 hear-back from a process agent.
    Promise {
        /// The promised ballot.
        b: Ballot,
        /// The agent's accepted pair, if any.
        acc: Option<(Ballot, Value)>,
    },
    /// Phase-2 communicate to a process agent.
    Accept {
        /// The ballot.
        b: Ballot,
        /// The value.
        v: Value,
    },
    /// Phase-2 hear-back from a process agent.
    Accepted {
        /// The ballot.
        b: Ballot,
    },
    /// Rejection (the agent promised a higher ballot).
    Nack {
        /// The rejected ballot.
        b: Ballot,
    },
}

/// How the memory leg is implemented (footnote 4 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemoryMode {
    /// Acquire exclusive write permission, then write; phase-2 write
    /// success alone certifies no interference.
    Protected,
    /// Static per-process slots; every phase writes then reads all slots
    /// back (permissions unused).
    DiskStyle,
}

/// Region id for the exclusive whole-space region (Protected mode).
pub const EXCL_REGION: RegionId = RegionId(0x6000);

/// Region id of process `p`'s slot row (DiskStyle mode).
pub fn row_region(p: Pid) -> RegionId {
    RegionId(0x6100 + p.0)
}

/// Region id of the read-only whole-space region.
pub const ALL_REGION: RegionId = RegionId(0x61FF);

/// The slot of process `p` in `instance`.
pub fn slot_reg(instance: Instance, p: Pid) -> RegId {
    RegId::two(spaces::ALN, instance.0, p.0 as u64)
}

/// Builds one Aligned Paxos memory for the given mode.
pub fn memory_actor(
    mode: MemoryMode,
    procs: &[Pid],
    initial_leader: Pid,
) -> MemoryActor<RegVal, Msg> {
    match mode {
        MemoryMode::Protected => {
            MemoryActor::new(LegalChange::Policy(crate::protected::legal_change)).with_region(
                EXCL_REGION,
                RegionSpec::Space(spaces::ALN),
                Permission::exclusive_writer(initial_leader),
            )
        }
        MemoryMode::DiskStyle => {
            let mut mem = MemoryActor::new(LegalChange::Static);
            for &p in procs {
                mem.add_region(
                    row_region(p),
                    RegionSpec::Pattern {
                        space: spaces::ALN,
                        a: None,
                        b: Some(p.0 as u64),
                        c: None,
                    },
                    Permission::exclusive_writer(p),
                );
            }
            mem.add_region(
                ALL_REGION,
                RegionSpec::Space(spaces::ALN),
                Permission::read_only(),
            );
            mem
        }
    }
}

const RETRY_TAG: u64 = 1;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Idle,
    One,
    Two,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StepKind {
    Perm,
    Write,
    Scan,
}

#[derive(Clone, Debug, Default)]
struct MemAgent {
    wrote: Option<bool>,
    slots: Option<Vec<PaxSlot>>,
    /// DiskStyle phase 2 verification scan outcome.
    verify: Option<Vec<PaxSlot>>,
}

/// An Aligned Paxos process: always an acceptor agent; a proposer when Ω
/// nominates it.
#[derive(Debug)]
pub struct AlignedPaxosActor {
    me: Pid,
    procs: Vec<Pid>,
    mems: Vec<ActorId>,
    instance: Instance,
    input: Value,
    initial_leader: Pid,
    mode: MemoryMode,
    retry_every: Duration,
    client: MemoryClient<RegVal, Msg>,
    // Acceptor agent state.
    promised: Option<Ballot>,
    accepted: Option<(Ballot, Value)>,
    // Proposer state.
    is_leader: bool,
    attempt: u64,
    round: u64,
    max_round_seen: u64,
    ballot: Option<Ballot>,
    phase: Phase,
    value: Option<Value>,
    promises: BTreeMap<Pid, Option<(Ballot, Value)>>,
    accepteds: BTreeMap<Pid, ()>,
    nacked: bool,
    mem_agents: BTreeMap<ActorId, MemAgent>,
    op_map: BTreeMap<rdma_sim::OpId, (u64, ActorId, StepKind)>,
    decided: Option<Value>,
    /// When this process decided, if it has.
    pub decided_at: Option<Time>,
}

impl AlignedPaxosActor {
    /// Creates a process.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        mems: Vec<ActorId>,
        instance: Instance,
        input: Value,
        initial_leader: Pid,
        mode: MemoryMode,
        retry_every: Duration,
    ) -> AlignedPaxosActor {
        AlignedPaxosActor {
            me,
            procs,
            mems,
            instance,
            input,
            initial_leader,
            mode,
            retry_every,
            client: MemoryClient::new(),
            promised: None,
            accepted: None,
            is_leader: false,
            attempt: 0,
            round: 0,
            max_round_seen: 0,
            ballot: None,
            phase: Phase::Idle,
            value: None,
            promises: BTreeMap::new(),
            accepteds: BTreeMap::new(),
            nacked: false,
            mem_agents: BTreeMap::new(),
            op_map: BTreeMap::new(),
            decided: None,
            decided_at: None,
        }
    }

    /// This process's decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.decided
    }

    /// Majority of the combined agent set (processes + memories).
    fn agent_majority(&self) -> usize {
        (self.procs.len() + self.mems.len()) / 2 + 1
    }

    fn write_region(&self) -> RegionId {
        match self.mode {
            MemoryMode::Protected => EXCL_REGION,
            MemoryMode::DiskStyle => row_region(self.me),
        }
    }

    fn scan_region(&self) -> RegionId {
        match self.mode {
            MemoryMode::Protected => EXCL_REGION,
            MemoryMode::DiskStyle => ALL_REGION,
        }
    }

    fn instance_pattern(&self) -> RegionSpec {
        RegionSpec::Pattern {
            space: spaces::ALN,
            a: Some(self.instance.0),
            b: None,
            c: None,
        }
    }

    fn start_attempt(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.is_leader || self.decided.is_some() {
            return;
        }
        self.attempt += 1;
        self.round = self.round.max(self.max_round_seen) + 1;
        let b = Ballot {
            round: self.round,
            pid: self.me,
        };
        self.ballot = Some(b);
        self.phase = Phase::One;
        self.promises.clear();
        self.accepteds.clear();
        self.nacked = false;
        self.mem_agents.clear();
        // Communicate phase 1 to process agents (including ourselves,
        // locally and instantaneously).
        for &q in &self.procs.clone() {
            if q != self.me {
                ctx.send(q, Msg::Aligned(AlMsg::Prepare { b }));
            }
        }
        if let Some(reply) = self.acceptor_on(AlMsg::Prepare { b }) {
            self.proposer_on(ctx, self.me, reply);
        }
        // Communicate phase 1 to memory agents.
        let reg = slot_reg(self.instance, self.me);
        for &mem in &self.mems.clone() {
            self.mem_agents.insert(mem, MemAgent::default());
            if self.mode == MemoryMode::Protected {
                let p = self.client.change_perm(
                    ctx,
                    mem,
                    EXCL_REGION,
                    Permission::exclusive_writer(self.me),
                );
                self.op_map.insert(p, (self.attempt, mem, StepKind::Perm));
            }
            let w = self.client.write(
                ctx,
                mem,
                self.write_region(),
                reg,
                RegVal::Slot(PaxSlot::phase1(b)),
            );
            self.op_map.insert(w, (self.attempt, mem, StepKind::Write));
            let r =
                self.client
                    .read_range(ctx, mem, self.scan_region(), Some(self.instance_pattern()));
            self.op_map.insert(r, (self.attempt, mem, StepKind::Scan));
        }
    }

    /// The acceptor-agent half (runs on every process).
    fn acceptor_on(&mut self, m: AlMsg) -> Option<AlMsg> {
        match m {
            AlMsg::Prepare { b } => {
                self.max_round_seen = self.max_round_seen.max(b.round);
                if self.promised.is_none_or(|p| b >= p) {
                    self.promised = Some(b);
                    Some(AlMsg::Promise {
                        b,
                        acc: self.accepted,
                    })
                } else {
                    Some(AlMsg::Nack { b })
                }
            }
            AlMsg::Accept { b, v } => {
                self.max_round_seen = self.max_round_seen.max(b.round);
                if self.promised.is_none_or(|p| b >= p) {
                    self.promised = Some(b);
                    self.accepted = Some((b, v));
                    Some(AlMsg::Accepted { b })
                } else {
                    Some(AlMsg::Nack { b })
                }
            }
            _ => None,
        }
    }

    /// The proposer half: absorbs hear-backs from process agents.
    fn proposer_on(&mut self, ctx: &mut Context<'_, Msg>, from: Pid, m: AlMsg) {
        let Some(ballot) = self.ballot else { return };
        match m {
            AlMsg::Promise { b, acc } if b == ballot && self.phase == Phase::One => {
                self.promises.insert(from, acc);
                self.phase1_step(ctx);
            }
            AlMsg::Accepted { b } if b == ballot && self.phase == Phase::Two => {
                self.accepteds.insert(from, ());
                self.phase2_step(ctx);
            }
            AlMsg::Nack { b } if b == ballot => {
                self.max_round_seen = self.max_round_seen.max(b.round);
                self.nacked = true;
                self.abandon();
            }
            _ => {}
        }
    }

    fn abandon(&mut self) {
        self.phase = Phase::Idle;
    }

    fn completed_mem_agents_phase1(&self) -> Vec<&MemAgent> {
        self.mem_agents
            .values()
            .filter(|a| a.wrote.is_some() && a.slots.is_some())
            .collect()
    }

    fn phase1_step(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.phase != Phase::One {
            return;
        }
        let ballot = self.ballot.expect("phase without ballot");
        let mems = self.completed_mem_agents_phase1();
        let ok_mems: Vec<_> = mems.iter().filter(|a| a.wrote == Some(true)).collect();
        // Analyze 1 (Algorithm 12): any failed write or higher minProp
        // aborts; otherwise adopt the highest accepted value.
        let mut max_seen = 0;
        let mut higher = false;
        let mut best: Option<(Ballot, Value)> = None;
        for a in &ok_mems {
            for s in a.slots.as_ref().expect("completed") {
                max_seen = max_seen.max(s.min_prop.round);
                if s.min_prop > ballot {
                    higher = true;
                }
                if let (Some(ap), Some(v)) = (s.acc_prop, s.value) {
                    if best.is_none_or(|(bb, _)| ap > bb) {
                        best = Some((ap, v));
                    }
                }
            }
        }
        let any_failed_write = mems.iter().any(|a| a.wrote == Some(false));
        let responded = self.promises.len() + mems.len();
        if responded < self.agent_majority() {
            self.max_round_seen = self.max_round_seen.max(max_seen);
            return;
        }
        self.max_round_seen = self.max_round_seen.max(max_seen);
        if higher || any_failed_write {
            self.abandon();
            return;
        }
        // Merge process promises into the adoption rule.
        for acc in self.promises.values().flatten() {
            if best.is_none_or(|(bb, _)| acc.0 > bb) {
                best = Some(*acc);
            }
        }
        let v = best.map(|(_, v)| v).unwrap_or(self.input);
        self.value = Some(v);
        self.phase = Phase::Two;
        self.attempt += 1;
        self.accepteds.clear();
        // Communicate phase 2.
        for &q in &self.procs.clone() {
            if q != self.me {
                ctx.send(q, Msg::Aligned(AlMsg::Accept { b: ballot, v }));
            }
        }
        if let Some(reply) = self.acceptor_on(AlMsg::Accept { b: ballot, v }) {
            self.proposer_on(ctx, self.me, reply);
        }
        let reg = slot_reg(self.instance, self.me);
        for &mem in &self.mems.clone() {
            self.mem_agents.insert(mem, MemAgent::default());
            let w = self.client.write(
                ctx,
                mem,
                self.write_region(),
                reg,
                RegVal::Slot(PaxSlot::phase2(ballot, v)),
            );
            self.op_map.insert(w, (self.attempt, mem, StepKind::Write));
            if self.mode == MemoryMode::DiskStyle {
                let r = self.client.read_range(
                    ctx,
                    mem,
                    self.scan_region(),
                    Some(self.instance_pattern()),
                );
                self.op_map.insert(r, (self.attempt, mem, StepKind::Scan));
            }
        }
    }

    fn phase2_step(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.phase != Phase::Two {
            return;
        }
        let ballot = self.ballot.expect("phase without ballot");
        let complete: Vec<&MemAgent> = self
            .mem_agents
            .values()
            .filter(|a| match self.mode {
                MemoryMode::Protected => a.wrote.is_some(),
                MemoryMode::DiskStyle => a.wrote.is_some() && a.verify.is_some(),
            })
            .collect();
        let mut ok_mems = 0;
        let mut failed = false;
        for a in &complete {
            if a.wrote != Some(true) {
                failed = true;
                continue;
            }
            match self.mode {
                MemoryMode::Protected => ok_mems += 1,
                MemoryMode::DiskStyle => {
                    let slots = a.verify.as_ref().expect("completed");
                    if slots.iter().any(|s| s.min_prop > ballot) {
                        failed = true;
                    } else {
                        ok_mems += 1;
                    }
                }
            }
        }
        if failed {
            self.abandon();
            return;
        }
        if self.accepteds.len() + ok_mems < self.agent_majority() {
            return;
        }
        let v = self.value.expect("phase 2 without value");
        self.decided = Some(v);
        self.decided_at = Some(ctx.now());
        self.phase = Phase::Idle;
        ctx.mark_decided();
        for &q in &self.procs.clone() {
            if q != self.me {
                ctx.send(
                    q,
                    Msg::Decided {
                        instance: self.instance,
                        value: v,
                    },
                );
            }
        }
    }
}

impl Actor<Msg> for AlignedPaxosActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                self.is_leader = self.initial_leader == self.me;
                if self.is_leader {
                    self.start_attempt(ctx);
                }
                ctx.set_timer(self.retry_every, RETRY_TAG);
            }
            EventKind::Timer { tag: RETRY_TAG, .. } => {
                if self.decided.is_none() {
                    if self.is_leader && self.phase == Phase::Idle {
                        self.start_attempt(ctx);
                    }
                    ctx.set_timer(self.retry_every, RETRY_TAG);
                }
            }
            EventKind::Timer { .. } => {}
            EventKind::LeaderChange { leader } => {
                let was = self.is_leader;
                self.is_leader = leader == self.me;
                if self.is_leader && !was && self.phase == Phase::Idle {
                    self.start_attempt(ctx);
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Aligned(m),
            } => {
                // Acceptor-agent half first (Prepare/Accept), proposer half
                // for hear-backs.
                match m {
                    AlMsg::Prepare { .. } | AlMsg::Accept { .. } => {
                        if let Some(reply) = self.acceptor_on(m) {
                            ctx.send(from, Msg::Aligned(reply));
                        }
                    }
                    _ => self.proposer_on(ctx, from, m),
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let Some(c) = self.client.on_wire(ctx, from, wire) else {
                    return;
                };
                let Some((attempt, mem, step)) = self.op_map.remove(&c.op) else {
                    return;
                };
                if attempt != self.attempt || self.phase == Phase::Idle {
                    return;
                }
                let phase = self.phase;
                let Some(agent) = self.mem_agents.get_mut(&mem) else {
                    return;
                };
                match (step, c.resp) {
                    (StepKind::Perm, _) => {} // advisory; write outcome decides
                    (StepKind::Write, MemResponse::Ack) => agent.wrote = Some(true),
                    (StepKind::Write, _) => agent.wrote = Some(false),
                    (StepKind::Scan, MemResponse::Range(rows)) => {
                        let slots: Vec<PaxSlot> = rows
                            .into_iter()
                            .filter_map(|(_, v)| match v {
                                RegVal::Slot(s) => Some(s),
                                _ => None,
                            })
                            .collect();
                        match phase {
                            Phase::One => agent.slots = Some(slots),
                            Phase::Two => agent.verify = Some(slots),
                            Phase::Idle => {}
                        }
                    }
                    (StepKind::Scan, _) => match phase {
                        Phase::One => agent.slots = Some(Vec::new()),
                        Phase::Two => agent.verify = Some(Vec::new()),
                        Phase::Idle => {}
                    },
                }
                match self.phase {
                    Phase::One => self.phase1_step(ctx),
                    Phase::Two => self.phase2_step(ctx),
                    Phase::Idle => {}
                }
            }
            EventKind::Msg {
                msg: Msg::Decided { instance, value },
                ..
            } => {
                if instance == self.instance && self.decided.is_none() {
                    self.decided = Some(value);
                    self.decided_at = Some(ctx.now());
                    ctx.mark_decided();
                }
            }
            EventKind::Msg { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Simulation;

    fn build(
        n: u32,
        m: u32,
        seed: u64,
        mode: MemoryMode,
    ) -> (Simulation<Msg>, Vec<Pid>, Vec<ActorId>) {
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        for i in 0..n {
            sim.add(AlignedPaxosActor::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                Instance(0),
                Value(100 + i as u64),
                ActorId(0),
                mode,
                Duration::from_delays(30),
            ));
        }
        for _ in 0..m {
            sim.add(memory_actor(mode, &procs, ActorId(0)));
        }
        (sim, procs, mems)
    }

    fn decisions(sim: &Simulation<Msg>, procs: &[Pid]) -> Vec<Option<Value>> {
        procs
            .iter()
            .map(|&p| sim.actor_as::<AlignedPaxosActor>(p).unwrap().decision())
            .collect()
    }

    #[test]
    fn decides_in_common_case_both_modes() {
        for mode in [MemoryMode::Protected, MemoryMode::DiskStyle] {
            let (mut sim, procs, _) = build(3, 2, 1, mode);
            sim.run_to_quiescence(Time::from_delays(60));
            let ds = decisions(&sim, &procs);
            assert!(
                ds.iter().all(|d| *d == Some(Value(100))),
                "{mode:?}: {ds:?}"
            );
        }
    }

    #[test]
    fn survives_combined_minority_failures() {
        // n=3, m=2 → 5 agents, majority 3. Kill 1 process + 1 memory.
        let (mut sim, procs, mems) = build(3, 2, 2, MemoryMode::DiskStyle);
        sim.crash_at(ActorId(2), Time::ZERO);
        sim.crash_at(mems[1], Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(200));
        let ds = decisions(&sim, &procs[..2]);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
    }

    #[test]
    fn survives_all_memories_down_if_process_majority() {
        // n=4, m=3 → 7 agents, majority 4 = all processes.
        let (mut sim, procs, mems) = build(4, 3, 3, MemoryMode::DiskStyle);
        for &d in &mems {
            sim.crash_at(d, Time::ZERO);
        }
        sim.run_to_quiescence(Time::from_delays(200));
        let ds = decisions(&sim, &procs);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
    }

    #[test]
    fn survives_all_but_one_process_if_memory_rich() {
        // n=2, m=5 → 7 agents, majority 4 = 1 process + 3 memories... the
        // proposer plus 3 memories reach quorum with the peer crashed.
        let (mut sim, procs, mems) = build(2, 5, 4, MemoryMode::DiskStyle);
        sim.crash_at(ActorId(1), Time::ZERO);
        sim.crash_at(mems[0], Time::ZERO);
        sim.crash_at(mems[1], Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(200));
        assert_eq!(decisions(&sim, &procs)[0], Some(Value(100)));
    }

    #[test]
    fn combined_majority_failure_blocks_safely() {
        // n=3, m=2 → majority 3; kill 2 processes + 1 memory (3 agents).
        let (mut sim, procs, mems) = build(3, 2, 5, MemoryMode::DiskStyle);
        sim.crash_at(ActorId(1), Time::ZERO);
        sim.crash_at(ActorId(2), Time::ZERO);
        sim.crash_at(mems[0], Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(800));
        assert_eq!(decisions(&sim, &procs)[0], None);
    }

    #[test]
    fn takeover_preserves_value_both_modes() {
        for mode in [MemoryMode::Protected, MemoryMode::DiskStyle] {
            let (mut sim, procs, _) = build(3, 3, 6, mode);
            sim.crash_at(ActorId(0), Time::from_delays(8));
            sim.announce_leader(Time::from_delays(15), &procs, ActorId(1));
            sim.run_to_quiescence(Time::from_delays(400));
            let ds = decisions(&sim, &procs[1..]);
            let got: Vec<Value> = ds.iter().flatten().copied().collect();
            assert!(!got.is_empty(), "{mode:?}: nobody decided");
            assert!(got.iter().all(|v| *v == got[0]), "{mode:?}: {got:?}");
        }
    }

    #[test]
    fn contention_stays_safe_many_seeds() {
        for seed in 0..10 {
            for mode in [MemoryMode::Protected, MemoryMode::DiskStyle] {
                let (mut sim, procs, _) = build(3, 2, seed, mode);
                sim.announce_leader(Time::from_delays(2), &procs[1..2], ActorId(1));
                sim.announce_leader(Time::from_delays(4), &procs[2..3], ActorId(2));
                sim.announce_leader(Time::from_delays(100), &procs, ActorId(1));
                sim.run_to_quiescence(Time::from_delays(3000));
                let got: Vec<Value> = decisions(&sim, &procs).into_iter().flatten().collect();
                assert!(!got.is_empty(), "{mode:?} seed {seed}: nobody decided");
                assert!(
                    got.windows(2).all(|w| w[0] == w[1]),
                    "{mode:?} seed {seed}: {got:?}"
                );
            }
        }
    }
}
