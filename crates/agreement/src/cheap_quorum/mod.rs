//! Cheap Quorum (Algorithms 4 and 5, §4.2).
//!
//! The 2-deciding Byzantine fast path. In synchronous, failure-free
//! executions the leader signs its value, writes it to the leader region
//! (one replicated write — two delays) and decides: dynamic permissions
//! guarantee that a successful write means nobody revoked it, so no
//! read-back is needed, and the fast path costs **one signature** (versus
//! `6·f_P + 2` for the best prior 2-deciding protocol \[7\]).
//!
//! Followers copy the leader's signed value into their own region, wait for
//! all `n` copies, assemble a **unanimity proof** (the value signed by every
//! process), replicate the proof, and decide once `n` valid proofs exist.
//!
//! Under asynchrony or failures, a process **panics** (Algorithm 5): it
//! raises its panic flag (register + relayed message, §7), *revokes the
//! leader's write permission* — the only change `legalChange` admits — and
//! aborts with the best-evidenced value it holds: own replicated value
//! (with proof, if assembled), else the leader's value, else its input.
//! The abort value and evidence seed Preferential Paxos (Definition 3).
//!
//! Key agreement lemmas exercised by the tests here and in
//! `tests/fast_robust.rs`:
//! * Lemma 4.5 — two correct processes never decide differently.
//! * Lemma 4.6 — if p decides v and q aborts, q's abort value is v (and
//!   carries a correct unanimity proof when p is a follower).
//! * Lemma B.6 — Cheap Quorum is 2-deciding.

use std::collections::BTreeMap;

use rdma_sim::{
    Completion, LegalChange, MemoryActor, MemoryClient, Permission, RegId, RegionId, RegionSpec,
};
use sigsim::{SigVerifier, Signature, Signer};
use simnet::{Actor, ActorId, Context, Duration, EventKind, Time};

use crate::trusted::SetupEvidence;
use crate::types::{
    sigtags, spaces, CqSigned, Msg, Pid, PriorityClass, RegVal, UnanimityProof, Value,
};
use swmr::{RepEngine, RepId, RepResult};

/// Region id of the leader's proposal region (`Region[ℓ]`).
pub const LEADER_REGION: RegionId = RegionId(0x2FFF);

/// Region id of `Region[p]` (holds `Value[p]`, `Panic[p]`, `Proof[p]`).
pub fn proc_region(p: Pid) -> RegionId {
    RegionId(0x2000 + p.0)
}

/// The leader proposal register `Value[ℓ]`.
pub const VALUE_L: RegId = RegId {
    space: spaces::CQ_LEADER,
    a: 0,
    b: 0,
    c: 0,
};

/// `Value[p]`.
pub fn value_reg(p: Pid) -> RegId {
    RegId::two(spaces::CQ, p.0 as u64, 0)
}

/// `Panic[p]`.
pub fn panic_reg(p: Pid) -> RegId {
    RegId::two(spaces::CQ, p.0 as u64, 1)
}

/// `Proof[p]`.
pub fn proof_reg(p: Pid) -> RegId {
    RegId::two(spaces::CQ, p.0 as u64, 2)
}

/// Cheap Quorum's `legalChange`: the only permission change ever allowed is
/// revoking write access to the leader region (any process may do it; the
/// result is read-only-for-everyone).
pub fn legal_change(
    _requester: ActorId,
    region: RegionId,
    _old: &Permission,
    new: &Permission,
) -> bool {
    region == LEADER_REGION && *new == Permission::read_only()
}

/// Configures one memory for Cheap Quorum.
pub fn configure_memory(mem: &mut MemoryActor<RegVal, Msg>, procs: &[Pid], leader: Pid) {
    mem.add_region(
        LEADER_REGION,
        RegionSpec::Space(spaces::CQ_LEADER),
        Permission::exclusive_writer(leader),
    );
    for &p in procs {
        mem.add_region(
            proc_region(p),
            RegionSpec::row(spaces::CQ, p.0 as u64),
            Permission::exclusive_writer(p),
        );
    }
}

/// Builds a ready-to-add Cheap Quorum memory.
pub fn memory_actor(procs: &[Pid], leader: Pid) -> MemoryActor<RegVal, Msg> {
    let mut mem = MemoryActor::new(LegalChange::Policy(legal_change));
    configure_memory(&mut mem, procs, leader);
    mem
}

/// Hashable view of a unanimity proof's outer signature.
#[derive(Hash)]
struct ProofView<'a> {
    tag: u64,
    value: Value,
    shares: &'a [(Pid, Signature)],
}

/// Checks a unanimity proof: every process's valid signature over the value,
/// plus the assembler's outer signature.
pub fn verify_unanimity(proof: &UnanimityProof, procs: &[Pid], verifier: &SigVerifier) -> bool {
    let mut seen: Vec<Pid> = proof.shares.iter().map(|(p, _)| *p).collect();
    seen.sort();
    seen.dedup();
    let mut all: Vec<Pid> = procs.to_vec();
    all.sort();
    if seen != all {
        return false;
    }
    for (p, sig) in &proof.shares {
        if !verifier.valid(*p, &(sigtags::CQ_VALUE, proof.value), sig) {
            return false;
        }
    }
    let view = ProofView {
        tag: sigtags::CQ_PROOF,
        value: proof.value,
        shares: &proof.shares,
    };
    verifier.valid(proof.assembler, &view, &proof.outer_sig)
}

/// The abort output of Cheap Quorum: a value plus the evidence that fixes
/// its Definition-3 priority class.
#[derive(Clone, Debug)]
pub struct AbortOutcome {
    /// The abort value.
    pub value: Value,
    /// Evidence (proof ⇒ class T; leader signature ⇒ class M; none ⇒ B).
    pub evidence: SetupEvidence,
}

impl AbortOutcome {
    /// The priority class this evidence supports, as a *correct* process
    /// computes it (receivers re-verify).
    pub fn class(&self, procs: &[Pid], leader: Pid, verifier: &SigVerifier) -> PriorityClass {
        if let Some(p) = &self.evidence.proof {
            if p.value == self.value && verify_unanimity(p, procs, verifier) {
                return PriorityClass::Proven;
            }
        }
        if let Some(sig) = &self.evidence.leader_sig {
            if verifier.valid(leader, &(sigtags::CQ_VALUE, self.value), sig) {
                return PriorityClass::LeaderSigned;
            }
        }
        PriorityClass::Bare
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tag {
    LeaderWrite,
    LeaderValRead,
    CopyWrite,
    CopyRead(Pid),
    ProofWrite,
    ProofRead(Pid),
    PanicFlagWrite,
    PanicRevoke,
    PanicReadOwnValue,
    PanicReadOwnProof,
    PanicReadLeader,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PanicStep {
    Flag,
    Revoke,
    ReadOwnValue,
    ReadOwnProof,
    ReadLeader,
    Done,
}

/// The embeddable Cheap Quorum state machine.
pub struct CqCore {
    me: Pid,
    procs: Vec<Pid>,
    leader: Pid,
    input: Value,
    signer: Signer,
    verifier: SigVerifier,
    rep: RepEngine<RegVal, Msg>,
    tags: BTreeMap<RepId, Tag>,
    /// The leader's signed value, once seen/written.
    v: Option<Value>,
    leader_sig: Option<Signature>,
    copy_started: bool,
    wrote_copy: bool,
    waiting_leader_read: bool,
    copies: BTreeMap<Pid, CqSigned>,
    copy_reads_out: BTreeMap<Pid, ()>,
    my_proof: Option<UnanimityProof>,
    proofs: BTreeMap<Pid, UnanimityProof>,
    proof_reads_out: BTreeMap<Pid, ()>,
    decided: Option<Value>,
    /// Whether this process decided as the leader (on its own write).
    pub decided_as_leader: bool,
    panicked: bool,
    panic_step: PanicStep,
    panic_own_value: Option<CqSigned>,
    panic_own_proof: Option<UnanimityProof>,
    abort: Option<AbortOutcome>,
}

impl std::fmt::Debug for CqCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CqCore")
            .field("me", &self.me)
            .field("decided", &self.decided)
            .field("panicked", &self.panicked)
            .field("abort", &self.abort.as_ref().map(|a| a.value))
            .finish()
    }
}

impl CqCore {
    /// Creates the state machine for one process.
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        memories: Vec<ActorId>,
        leader: Pid,
        input: Value,
        signer: Signer,
        verifier: SigVerifier,
    ) -> CqCore {
        CqCore {
            me,
            procs,
            leader,
            input,
            signer,
            verifier,
            rep: RepEngine::new(memories),
            tags: BTreeMap::new(),
            v: None,
            leader_sig: None,
            copy_started: false,
            wrote_copy: false,
            waiting_leader_read: false,
            copies: BTreeMap::new(),
            copy_reads_out: BTreeMap::new(),
            my_proof: None,
            proofs: BTreeMap::new(),
            proof_reads_out: BTreeMap::new(),
            decided: None,
            decided_as_leader: false,
            panicked: false,
            panic_step: PanicStep::Flag,
            panic_own_value: None,
            panic_own_proof: None,
            abort: None,
        }
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.decided
    }

    /// The abort outcome, once panic mode finished.
    pub fn abort(&self) -> Option<&AbortOutcome> {
        self.abort.as_ref()
    }

    /// Whether panic mode has been entered.
    pub fn panicked(&self) -> bool {
        self.panicked
    }

    /// Whether this core has nothing further to do (decided and fully
    /// replicated, or abort computed).
    pub fn settled(&self) -> bool {
        self.abort.is_some()
            || (self.decided.is_some()
                && !self.panicked
                && self.my_proof.is_some()
                && self.proofs.len() >= self.procs.len())
    }

    /// Leader: propose (Algorithm 4 leader code). Followers: no-op.
    pub fn start(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        if self.me != self.leader {
            return;
        }
        let v = self.input;
        let sig = self.signer.sign(&(sigtags::CQ_VALUE, v));
        self.leader_sig = Some(sig);
        let signed = CqSigned {
            value: v,
            leader_sig: sig,
            own_sig: sig,
        };
        let rep = self
            .rep
            .write(ctx, client, LEADER_REGION, VALUE_L, RegVal::CqValue(signed));
        self.tags.insert(rep, Tag::LeaderWrite);
    }

    /// Drives the follower loops (call on a poll timer).
    pub fn poll(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        if self.panicked {
            return; // panic mode is completion-driven
        }
        if self.v.is_none() {
            if self.me != self.leader && !self.waiting_leader_read {
                self.waiting_leader_read = true;
                let rep = self.rep.read(ctx, client, LEADER_REGION, VALUE_L);
                self.tags.insert(rep, Tag::LeaderValRead);
            }
            return;
        }
        if !self.copy_started {
            self.copy_started = true;
            self.write_copy(ctx, client);
            return;
        }
        if !self.wrote_copy {
            return; // copy write in flight
        }
        if self.my_proof.is_none() {
            // Collect Value[q] from everyone we have not yet matched.
            for q in self.procs.clone() {
                if !self.copies.contains_key(&q) && !self.copy_reads_out.contains_key(&q) {
                    self.copy_reads_out.insert(q, ());
                    let rep = self.rep.read(ctx, client, proc_region(q), value_reg(q));
                    self.tags.insert(rep, Tag::CopyRead(q));
                }
            }
            return;
        }
        if self.proofs.len() < self.procs.len() {
            for q in self.procs.clone() {
                if !self.proofs.contains_key(&q) && !self.proof_reads_out.contains_key(&q) {
                    self.proof_reads_out.insert(q, ());
                    let rep = self.rep.read(ctx, client, proc_region(q), proof_reg(q));
                    self.tags.insert(rep, Tag::ProofRead(q));
                }
            }
        }
    }

    /// Enters panic mode (Algorithm 5). Idempotent. The wrapper should also
    /// relay `Msg::Panic` to the other processes.
    pub fn panic(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        if self.panicked {
            return;
        }
        self.panicked = true;
        self.panic_step = PanicStep::Flag;
        let rep = self.rep.write(
            ctx,
            client,
            proc_region(self.me),
            panic_reg(self.me),
            RegVal::CqPanic(true),
        );
        self.tags.insert(rep, Tag::PanicFlagWrite);
    }

    fn panic_advance(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
    ) {
        match self.panic_step {
            PanicStep::Flag => {
                self.panic_step = PanicStep::Revoke;
                let rep = self
                    .rep
                    .change_perm(ctx, client, LEADER_REGION, Permission::read_only());
                self.tags.insert(rep, Tag::PanicRevoke);
            }
            PanicStep::Revoke => {
                self.panic_step = PanicStep::ReadOwnValue;
                let rep = self
                    .rep
                    .read(ctx, client, proc_region(self.me), value_reg(self.me));
                self.tags.insert(rep, Tag::PanicReadOwnValue);
            }
            PanicStep::ReadOwnValue => {
                self.panic_step = PanicStep::ReadOwnProof;
                let rep = self
                    .rep
                    .read(ctx, client, proc_region(self.me), proof_reg(self.me));
                self.tags.insert(rep, Tag::PanicReadOwnProof);
            }
            PanicStep::ReadOwnProof => {
                if let Some(own) = self.panic_own_value {
                    // Abort with our replicated value (+ proof if present).
                    self.panic_step = PanicStep::Done;
                    self.abort = Some(AbortOutcome {
                        value: own.value,
                        evidence: SetupEvidence {
                            proof: self.panic_own_proof.clone(),
                            leader_sig: Some(own.leader_sig),
                        },
                    });
                } else {
                    self.panic_step = PanicStep::ReadLeader;
                    let rep = self.rep.read(ctx, client, LEADER_REGION, VALUE_L);
                    self.tags.insert(rep, Tag::PanicReadLeader);
                }
            }
            PanicStep::ReadLeader | PanicStep::Done => {}
        }
    }

    /// Routes a memory completion. Returns true if consumed.
    pub fn on_completion(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        completion: Completion<RegVal>,
    ) -> bool {
        let Some(done) = self.rep.on_completion(completion) else {
            return false;
        };
        let Some(tag) = self.tags.remove(&done.id) else {
            return true;
        };
        match (tag, done.result) {
            (Tag::LeaderWrite, RepResult::WriteOk) => {
                // The uncontended instantaneous guarantee: a successful
                // write proves no revocation — decide now (2 delays), with
                // the single signature made at propose time. The next poll
                // continues the follower protocol (copy, proof) so others
                // can reach unanimity.
                self.v = Some(self.input);
                if self.decided.is_none() {
                    self.decided = Some(self.input);
                    self.decided_as_leader = true;
                }
            }
            (Tag::LeaderWrite, _) => self.panic(ctx, client),
            (Tag::LeaderValRead, RepResult::ReadOk(Some(RegVal::CqValue(cs)))) => {
                self.waiting_leader_read = false;
                if self
                    .verifier
                    .valid(self.leader, &(sigtags::CQ_VALUE, cs.value), &cs.leader_sig)
                {
                    self.v = Some(cs.value);
                    self.leader_sig = Some(cs.leader_sig);
                }
            }
            (Tag::LeaderValRead, _) => self.waiting_leader_read = false,
            (Tag::CopyWrite, RepResult::WriteOk) => {
                self.wrote_copy = true;
            }
            (Tag::CopyWrite, _) => self.panic(ctx, client),
            (Tag::CopyRead(q), RepResult::ReadOk(Some(RegVal::CqValue(cs)))) => {
                self.copy_reads_out.remove(&q);
                let v = self.v.expect("collecting before adopting");
                if cs.value == v && self.verifier.valid(q, &(sigtags::CQ_VALUE, v), &cs.own_sig) {
                    self.copies.insert(q, cs);
                    if self.copies.len() >= self.procs.len() && self.my_proof.is_none() {
                        self.assemble_proof(ctx, client);
                    }
                }
            }
            (Tag::CopyRead(q), _) => {
                self.copy_reads_out.remove(&q);
            }
            (Tag::ProofWrite, RepResult::WriteOk) => {
                let p = self.my_proof.clone().expect("wrote proof");
                self.proofs.insert(self.me, p);
            }
            (Tag::ProofWrite, _) => self.panic(ctx, client),
            (Tag::ProofRead(q), RepResult::ReadOk(Some(RegVal::CqProof(pf)))) => {
                self.proof_reads_out.remove(&q);
                let v = self.v.expect("collecting before adopting");
                if pf.value == v && verify_unanimity(&pf, &self.procs, &self.verifier) {
                    self.proofs.insert(q, pf);
                    if self.proofs.len() >= self.procs.len() && self.decided.is_none() {
                        self.decided = Some(v);
                    }
                }
            }
            (Tag::ProofRead(q), _) => {
                self.proof_reads_out.remove(&q);
            }
            (Tag::PanicFlagWrite, _) => self.panic_advance(ctx, client),
            (Tag::PanicRevoke, _) => self.panic_advance(ctx, client),
            (Tag::PanicReadOwnValue, r) => {
                if let RepResult::ReadOk(Some(RegVal::CqValue(cs))) = r {
                    self.panic_own_value = Some(cs);
                }
                self.panic_advance(ctx, client);
            }
            (Tag::PanicReadOwnProof, r) => {
                if let RepResult::ReadOk(Some(RegVal::CqProof(pf))) = r {
                    self.panic_own_proof = Some(pf);
                }
                self.panic_advance(ctx, client);
            }
            (Tag::PanicReadLeader, r) => {
                self.panic_step = PanicStep::Done;
                if let RepResult::ReadOk(Some(RegVal::CqValue(cs))) = r {
                    if self.verifier.valid(
                        self.leader,
                        &(sigtags::CQ_VALUE, cs.value),
                        &cs.leader_sig,
                    ) {
                        self.abort = Some(AbortOutcome {
                            value: cs.value,
                            evidence: SetupEvidence {
                                proof: None,
                                leader_sig: Some(cs.leader_sig),
                            },
                        });
                        return true;
                    }
                }
                self.abort = Some(AbortOutcome {
                    value: self.input,
                    evidence: SetupEvidence::default(),
                });
            }
        }
        true
    }

    fn write_copy(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        let v = self.v.expect("copying before adopting");
        let own_sig = self.signer.sign(&(sigtags::CQ_VALUE, v));
        let signed = CqSigned {
            value: v,
            leader_sig: self.leader_sig.expect("leader sig known"),
            own_sig,
        };
        let rep = self.rep.write(
            ctx,
            client,
            proc_region(self.me),
            value_reg(self.me),
            RegVal::CqValue(signed),
        );
        self.tags.insert(rep, Tag::CopyWrite);
    }

    fn assemble_proof(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
    ) {
        let v = self.v.expect("proof before value");
        let shares: Vec<(Pid, Signature)> =
            self.copies.iter().map(|(q, cs)| (*q, cs.own_sig)).collect();
        let view = ProofView {
            tag: sigtags::CQ_PROOF,
            value: v,
            shares: &shares,
        };
        let outer_sig = self.signer.sign(&view);
        let proof = UnanimityProof {
            value: v,
            shares,
            assembler: self.me,
            outer_sig,
        };
        self.my_proof = Some(proof.clone());
        let rep = self.rep.write(
            ctx,
            client,
            proc_region(self.me),
            proof_reg(self.me),
            RegVal::CqProof(proof),
        );
        self.tags.insert(rep, Tag::ProofWrite);
    }
}

const POLL_TAG: u64 = 20;
const TIMEOUT_TAG: u64 = 21;

/// Standalone Cheap Quorum actor (for unit tests and the fast-path
/// experiments; production use composes it in `fast_robust`).
#[derive(Debug)]
pub struct CheapQuorumActor {
    core: CqCore,
    procs: Vec<Pid>,
    client: MemoryClient<RegVal, Msg>,
    poll_every: Duration,
    timeout: Duration,
    relayed_panic: bool,
    /// When this process decided, if it has.
    pub decided_at: Option<Time>,
    /// When this process aborted, if it did.
    pub aborted_at: Option<Time>,
}

impl CheapQuorumActor {
    /// Creates the actor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        memories: Vec<ActorId>,
        leader: Pid,
        input: Value,
        signer: Signer,
        verifier: SigVerifier,
        poll_every: Duration,
        timeout: Duration,
    ) -> CheapQuorumActor {
        CheapQuorumActor {
            core: CqCore::new(me, procs.clone(), memories, leader, input, signer, verifier),
            procs,
            client: MemoryClient::new(),
            poll_every,
            timeout,
            relayed_panic: false,
            decided_at: None,
            aborted_at: None,
        }
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.core.decision()
    }

    /// The abort outcome, if panic mode completed.
    pub fn abort(&self) -> Option<&AbortOutcome> {
        self.core.abort()
    }

    fn after_step(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.core.decision().is_some() && self.decided_at.is_none() {
            self.decided_at = Some(ctx.now());
            ctx.mark_decided();
        }
        if self.core.abort().is_some() && self.aborted_at.is_none() {
            self.aborted_at = Some(ctx.now());
            ctx.mark_aborted();
        }
        if self.core.panicked() && !self.relayed_panic {
            self.relayed_panic = true;
            let me = self.core.me;
            for &q in &self.procs.clone() {
                if q != me {
                    ctx.send(q, Msg::Panic { who: me });
                }
            }
        }
    }
}

impl Actor<Msg> for CheapQuorumActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                self.core.start(ctx, &mut self.client);
                self.core.poll(ctx, &mut self.client);
                ctx.set_timer(self.poll_every, POLL_TAG);
                ctx.set_timer(self.timeout, TIMEOUT_TAG);
            }
            EventKind::Timer { tag: POLL_TAG, .. } => {
                if !self.core.settled() {
                    self.core.poll(ctx, &mut self.client);
                    ctx.set_timer(self.poll_every, POLL_TAG);
                }
                self.after_step(ctx);
            }
            EventKind::Timer {
                tag: TIMEOUT_TAG, ..
            } => {
                // The paper's timeout: an upper bound on common-case
                // delays; expiry without a decision means panic.
                if self.core.decision().is_none() && !self.core.panicked() {
                    self.core.panic(ctx, &mut self.client);
                    self.after_step(ctx);
                }
            }
            EventKind::Timer { .. } => {}
            EventKind::Msg {
                msg: Msg::Panic { .. },
                ..
            } => {
                self.core.panic(ctx, &mut self.client);
                self.after_step(ctx);
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                if let Some(c) = self.client.on_wire(ctx, from, wire) {
                    self.core.on_completion(ctx, &mut self.client, c);
                    self.after_step(ctx);
                }
            }
            EventKind::Msg { .. } => {}
            EventKind::LeaderChange { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigsim::SigAuthority;
    use simnet::Simulation;

    struct Built {
        sim: Simulation<Msg>,
        procs: Vec<Pid>,
        mems: Vec<ActorId>,
    }

    fn build(n: u32, m: u32, seed: u64, timeout_delays: u64) -> Built {
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        let mut auth = SigAuthority::new(seed ^ 0x77);
        for i in 0..n {
            let signer = auth.register(ActorId(i));
            sim.add(CheapQuorumActor::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                ActorId(0),
                Value(100 + i as u64),
                signer,
                auth.verifier(),
                Duration::from_delays(1),
                Duration::from_delays(timeout_delays),
            ));
        }
        for _ in 0..m {
            sim.add(memory_actor(&procs, ActorId(0)));
        }
        Built { sim, procs, mems }
    }

    fn outcomes(b: &Built) -> Vec<(Option<Value>, Option<Value>)> {
        b.procs
            .iter()
            .map(|&p| {
                let a = b.sim.actor_as::<CheapQuorumActor>(p).unwrap();
                (a.decision(), a.abort().map(|x| x.value))
            })
            .collect()
    }

    #[test]
    fn leader_decides_in_two_delays_everyone_decides() {
        let mut b = build(3, 3, 1, 60);
        b.sim.run_until(Time::from_delays(50), |s| {
            (0..3).all(|i| {
                s.actor_as::<CheapQuorumActor>(ActorId(i))
                    .unwrap()
                    .decision()
                    .is_some()
            })
        });
        let out = outcomes(&b);
        assert!(out.iter().all(|(d, _)| *d == Some(Value(100))), "{out:?}");
        // Lemma B.6: the leader decides after one replicated write.
        assert_eq!(b.sim.metrics().first_decision_delays(), Some(2.0));
        // Nobody panicked in the synchronous failure-free run (Lemma B.3).
        assert!(out.iter().all(|(_, a)| a.is_none()), "{out:?}");
    }

    #[test]
    fn one_signature_on_the_leader_fast_path() {
        let mut sim = Simulation::new(9);
        let procs: Vec<Pid> = (0..3).map(ActorId).collect();
        let mems: Vec<ActorId> = (3..6).map(ActorId).collect();
        let mut auth = SigAuthority::new(5);
        let signers: Vec<_> = procs.iter().map(|&p| auth.register(p)).collect();
        for i in 0..3u32 {
            sim.add(CheapQuorumActor::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                ActorId(0),
                Value(7),
                signers[i as usize].clone(),
                auth.verifier(),
                Duration::from_delays(1),
                Duration::from_delays(60),
            ));
        }
        for _ in 0..3 {
            sim.add(memory_actor(&procs, ActorId(0)));
        }
        // Run only until the leader decides.
        sim.run_until(Time::from_delays(1000), |s| {
            s.metrics().first_decision().is_some()
        });
        // The fast decision required exactly one signature (the leader's
        // sign(v)) — the §4.2 claim versus 6f+2 for prior protocols.
        assert_eq!(auth.signatures_created(), 1);
        assert_eq!(sim.metrics().first_decision_delays(), Some(2.0));
    }

    #[test]
    fn leader_crash_before_write_aborts_everyone_with_inputs() {
        let mut b = build(3, 3, 2, 30);
        b.sim.crash_at(ActorId(0), Time::ZERO);
        b.sim.run_to_quiescence(Time::from_delays(300));
        let out = outcomes(&b);
        // Followers timed out and aborted with their own inputs (class B).
        assert_eq!(out[1], (None, Some(Value(101))));
        assert_eq!(out[2], (None, Some(Value(102))));
    }

    #[test]
    fn leader_crash_after_write_aborts_with_leader_value() {
        // The leader decides (write lands) then crashes before helping the
        // followers reach unanimity; they abort carrying v with the
        // leader's signature (Lemma 4.6, leader case).
        let mut b = build(3, 3, 3, 30);
        b.sim.crash_at(ActorId(0), Time::from_delays(3));
        b.sim.run_to_quiescence(Time::from_delays(300));
        let out = outcomes(&b);
        assert_eq!(out[0].0, Some(Value(100)), "leader decided before crash");
        for i in [1usize, 2] {
            let (d, a) = &out[i];
            assert_eq!(*d, None);
            assert_eq!(*a, Some(Value(100)), "abort value must match decision");
            let actor = b
                .sim
                .actor_as::<CheapQuorumActor>(ActorId(i as u32))
                .unwrap();
            let ab = actor.abort().unwrap();
            assert!(ab.evidence.leader_sig.is_some());
        }
    }

    #[test]
    fn follower_crash_blocks_unanimity_but_leader_decision_survives() {
        let mut b = build(3, 3, 4, 25);
        b.sim.crash_at(ActorId(2), Time::ZERO);
        b.sim.run_to_quiescence(Time::from_delays(300));
        let out = outcomes(&b);
        // Leader decided on the fast path.
        assert_eq!(out[0].0, Some(Value(100)));
        // The correct follower cannot reach n copies; it panics and aborts
        // with the leader's value.
        assert_eq!(out[1].1, Some(Value(100)));
        // Lemma 4.6 (abort agreement): abort value equals the decision.
    }

    #[test]
    fn follower_decision_carries_unanimity_and_aborters_get_proofs() {
        // All correct and synchronous, but crash the leader right after
        // followers decided; then a late panic must still find proofs.
        let mut b = build(3, 3, 5, 18);
        // Let the run go: all three decide (followers via proofs).
        b.sim.run_until(Time::from_delays(17), |s| {
            (0..3).all(|i| {
                s.actor_as::<CheapQuorumActor>(ActorId(i))
                    .unwrap()
                    .decision()
                    .is_some()
            })
        });
        let followers_decided = (1..3)
            .filter(|&i| {
                b.sim
                    .actor_as::<CheapQuorumActor>(ActorId(i))
                    .unwrap()
                    .decision()
                    .is_some()
            })
            .count();
        assert!(followers_decided > 0, "some follower decided via proofs");
        // Now force a panic at one follower: its abort must carry the value
        // and a correct unanimity proof (Lemma 4.6, follower case).
        b.sim.run_to_quiescence(Time::from_delays(100));
        let a1 = b.sim.actor_as::<CheapQuorumActor>(ActorId(1)).unwrap();
        if let Some(ab) = a1.abort() {
            assert_eq!(ab.value, Value(100));
            assert!(ab.evidence.proof.is_some());
        }
    }

    #[test]
    fn revocation_defeats_slow_leader_write() {
        // Delay the leader's replicated write; a follower panics first and
        // revokes; the leader's write must fail and the leader abort.
        let mut b = build(2, 3, 6, 8);
        b.sim.set_delay_hook(Box::new(|_, from, _, m| {
            if from == ActorId(0) {
                if let Msg::Mem(rdma_sim::MemWire::Req {
                    req: rdma_sim::MemRequest::Write { region, .. },
                    ..
                }) = m
                {
                    if *region == LEADER_REGION {
                        return Some(Duration::from_delays(40));
                    }
                }
            }
            None
        }));
        b.sim.run_to_quiescence(Time::from_delays(400));
        let out = outcomes(&b);
        // Nobody decides; both abort (leader with its input after nak).
        assert_eq!(out[0].0, None, "{out:?}");
        assert!(out[0].1.is_some(), "{out:?}");
        assert!(out[1].1.is_some(), "{out:?}");
    }

    #[test]
    fn memory_crashes_tolerated_on_fast_path() {
        let mut b = build(3, 5, 7, 60);
        let m0 = b.mems[0];
        let m4 = b.mems[4];
        b.sim.crash_at(m0, Time::ZERO);
        b.sim.crash_at(m4, Time::ZERO);
        b.sim.run_until(Time::from_delays(59), |s| {
            (0..3).all(|i| {
                s.actor_as::<CheapQuorumActor>(ActorId(i))
                    .unwrap()
                    .decision()
                    .is_some()
            })
        });
        let out = outcomes(&b);
        assert!(out.iter().all(|(d, _)| *d == Some(Value(100))), "{out:?}");
    }
}
