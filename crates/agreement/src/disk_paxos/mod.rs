//! Disk Paxos (Gafni–Lamport \[28\]) — the shared-memory baseline.
//!
//! The paper positions Disk Paxos as the high-resilience/low-speed corner of
//! the trade-off: it needs only `n ≥ f_P + 1` processes and `m ≥ 2·f_M + 1`
//! memories (disks), but "it takes at least four delays" in the common case
//! — and by Theorem 6.1 no static-permission shared-memory algorithm can do
//! better than four. Protected Memory Paxos (same resilience) beats it to
//! two delays using dynamic permissions; that gap is Experiment E2.
//!
//! Implementation: each process `p` owns one block per disk,
//! `block[d, p] = (mbal, bal, inp)`, writable only by `p` (static SWMR
//! permissions — the disk model's "single region that always permits all
//! processes" is refined to per-row regions, which only strengthens the
//! baseline). A ballot attempt runs two phases; each phase writes the
//! process's block to every disk and reads *all* blocks from a majority of
//! disks (one range read per disk). Seeing a higher `mbal` aborts the
//! attempt. Phase 1 adopts the value of the highest `bal`; phase 2 commits
//! it; a phase-2 round completed without interference decides.
//!
//! The initial leader owns ballot `(0, leader)` and starts directly in
//! phase 2, but — lacking a permission signal — it still must read back to
//! check for interference: write (2 delays) + read (2 delays) = 4 delays.

use std::collections::BTreeMap;

use rdma_sim::{LegalChange, MemoryActor, MemoryClient, Permission, RegId, RegionId, RegionSpec};
use simnet::{Actor, ActorId, Context, Duration, EventKind, Time};

use crate::types::{spaces, Ballot, DiskBlock, Instance, Msg, Pid, RegVal, Value};

/// Region id of process `p`'s row of blocks on each disk.
pub fn row_region(p: Pid) -> RegionId {
    RegionId(0x4000 + p.0)
}

/// Region id of the read-everything region on each disk.
pub const ALL_REGION: RegionId = RegionId(0x4FFF);

/// The block register of process `p` in `instance`.
pub fn block_reg(instance: Instance, p: Pid) -> RegId {
    RegId::two(spaces::DISK, instance.0, p.0 as u64)
}

/// Configures one disk (memory) for Disk Paxos: per-process write rows plus
/// a global read region.
pub fn configure_disk(mem: &mut MemoryActor<RegVal, Msg>, procs: &[Pid]) {
    for &p in procs {
        mem.add_region(
            row_region(p),
            RegionSpec::Pattern {
                space: spaces::DISK,
                a: None,
                b: Some(p.0 as u64),
                c: None,
            },
            Permission::exclusive_writer(p),
        );
    }
    mem.add_region(
        ALL_REGION,
        RegionSpec::Space(spaces::DISK),
        Permission::read_only(),
    );
}

/// Builds a ready-to-add disk actor.
pub fn disk_actor(procs: &[Pid]) -> MemoryActor<RegVal, Msg> {
    let mut mem = MemoryActor::new(LegalChange::Static);
    configure_disk(&mut mem, procs);
    mem
}

const RETRY_TAG: u64 = 1;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Idle,
    One,
    Two,
}

#[derive(Clone, Debug, Default)]
struct DiskProgress {
    wrote: bool,
    blocks: Option<Vec<(RegId, DiskBlock)>>,
}

/// A Disk Paxos process.
#[derive(Debug)]
pub struct DiskPaxosActor {
    me: Pid,
    procs: Vec<Pid>,
    disks: Vec<ActorId>,
    instance: Instance,
    input: Value,
    initial_leader: Option<Pid>,
    retry_every: Duration,
    client: MemoryClient<RegVal, Msg>,
    is_leader: bool,
    used_initial: bool,
    attempt: u64,
    round: u64,
    max_round_seen: u64,
    ballot: Option<Ballot>,
    phase: Phase,
    value: Option<Value>,
    progress: BTreeMap<ActorId, DiskProgress>,
    op_map: BTreeMap<rdma_sim::OpId, (u64, ActorId, bool /* is_write */)>,
    decided: Option<Value>,
    /// When this process decided, if it has.
    pub decided_at: Option<Time>,
}

impl DiskPaxosActor {
    /// Creates a Disk Paxos process. `initial_leader` seeds Ω and owns the
    /// phase-1-free first ballot.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        disks: Vec<ActorId>,
        instance: Instance,
        input: Value,
        initial_leader: Option<Pid>,
        retry_every: Duration,
    ) -> DiskPaxosActor {
        DiskPaxosActor {
            me,
            procs,
            disks,
            instance,
            input,
            initial_leader,
            retry_every,
            client: MemoryClient::new(),
            is_leader: false,
            used_initial: false,
            attempt: 0,
            round: 0,
            max_round_seen: 0,
            ballot: None,
            phase: Phase::Idle,
            value: None,
            progress: BTreeMap::new(),
            op_map: BTreeMap::new(),
            decided: None,
            decided_at: None,
        }
    }

    /// This process's decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.decided
    }

    fn majority(&self) -> usize {
        self.disks.len() / 2 + 1
    }

    fn start_attempt(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.is_leader || self.decided.is_some() {
            return;
        }
        self.attempt += 1;
        self.progress.clear();
        let (ballot, phase) = if self.initial_leader == Some(self.me) && !self.used_initial {
            // Ballot (0, me) is pre-owned: start in phase 2 with own input.
            self.used_initial = true;
            self.value = Some(self.input);
            (Ballot::initial(self.me), Phase::Two)
        } else {
            self.round = self.round.max(self.max_round_seen) + 1;
            (
                Ballot {
                    round: self.round,
                    pid: self.me,
                },
                Phase::One,
            )
        };
        self.ballot = Some(ballot);
        self.phase = phase;
        let block = match phase {
            Phase::One => DiskBlock {
                mbal: ballot,
                bal: None,
                inp: None,
            },
            Phase::Two => DiskBlock {
                mbal: ballot,
                bal: Some(ballot),
                inp: self.value,
            },
            Phase::Idle => unreachable!(),
        };
        self.write_and_scan(ctx, block);
    }

    /// One phase's disk traffic: write own block to every disk, then read
    /// the whole block array back (the reads queue FIFO behind the writes).
    fn write_and_scan(&mut self, ctx: &mut Context<'_, Msg>, block: DiskBlock) {
        let reg = block_reg(self.instance, self.me);
        for &d in &self.disks.clone() {
            self.progress.insert(d, DiskProgress::default());
            let w = self
                .client
                .write(ctx, d, row_region(self.me), reg, RegVal::Disk(block));
            self.op_map.insert(w, (self.attempt, d, true));
            let r = self.client.read_range(
                ctx,
                d,
                ALL_REGION,
                Some(RegionSpec::Pattern {
                    space: spaces::DISK,
                    a: Some(self.instance.0),
                    b: None,
                    c: None,
                }),
            );
            self.op_map.insert(r, (self.attempt, d, false));
        }
    }

    fn phase_step(&mut self, ctx: &mut Context<'_, Msg>) {
        let complete: Vec<_> = self
            .progress
            .values()
            .filter(|p| p.wrote && p.blocks.is_some())
            .collect();
        if complete.len() < self.majority() {
            return;
        }
        let ballot = self.ballot.expect("phase without ballot");
        // Abort if any disk shows a higher mbal (someone else is trying).
        let mut all_blocks: Vec<DiskBlock> = Vec::new();
        for p in &complete {
            for (_, b) in p.blocks.as_ref().expect("filtered above") {
                all_blocks.push(*b);
            }
        }
        for b in &all_blocks {
            self.max_round_seen = self.max_round_seen.max(b.mbal.round);
        }
        if all_blocks.iter().any(|b| b.mbal > ballot) {
            // Abandoned: retry via the timer (if still leader).
            self.phase = Phase::Idle;
            return;
        }
        match self.phase {
            Phase::One => {
                // Adopt the committed value of the highest bal, else own input.
                let adopted = all_blocks
                    .iter()
                    .filter_map(|b| b.bal.map(|bal| (bal, b.inp)))
                    .max_by_key(|(bal, _)| *bal)
                    .and_then(|(_, inp)| inp)
                    .unwrap_or(self.input);
                self.value = Some(adopted);
                self.phase = Phase::Two;
                self.attempt += 1;
                self.progress.clear();
                let block = DiskBlock {
                    mbal: ballot,
                    bal: Some(ballot),
                    inp: Some(adopted),
                };
                self.write_and_scan(ctx, block);
            }
            Phase::Two => {
                let v = self.value.expect("phase 2 without value");
                self.decided = Some(v);
                self.decided_at = Some(ctx.now());
                self.phase = Phase::Idle;
                ctx.mark_decided();
                // Outside the pure disk model: tell everyone (the paper's
                // "easy to extend it so all correct processes decide").
                for &q in &self.procs.clone() {
                    if q != self.me {
                        ctx.send(
                            q,
                            Msg::Decided {
                                instance: self.instance,
                                value: v,
                            },
                        );
                    }
                }
            }
            Phase::Idle => {}
        }
    }
}

impl Actor<Msg> for DiskPaxosActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                self.is_leader = self.initial_leader == Some(self.me);
                if self.is_leader {
                    self.start_attempt(ctx);
                }
                ctx.set_timer(self.retry_every, RETRY_TAG);
            }
            EventKind::Timer { tag: RETRY_TAG, .. } => {
                if self.decided.is_none() {
                    if self.is_leader && self.phase == Phase::Idle {
                        self.start_attempt(ctx);
                    }
                    ctx.set_timer(self.retry_every, RETRY_TAG);
                }
            }
            EventKind::Timer { .. } => {}
            EventKind::LeaderChange { leader } => {
                let was = self.is_leader;
                self.is_leader = leader == self.me;
                if self.is_leader && !was && self.phase == Phase::Idle {
                    self.start_attempt(ctx);
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let Some(c) = self.client.on_wire(ctx, from, wire) else {
                    return;
                };
                let Some((attempt, disk, is_write)) = self.op_map.remove(&c.op) else {
                    return;
                };
                if attempt != self.attempt || self.phase == Phase::Idle {
                    return; // stale response from an abandoned attempt
                }
                let Some(prog) = self.progress.get_mut(&disk) else {
                    return;
                };
                if is_write {
                    match c.resp {
                        rdma_sim::MemResponse::Ack => prog.wrote = true,
                        _ => return, // nak impossible under static SWMR; ignore
                    }
                } else {
                    match c.resp {
                        rdma_sim::MemResponse::Range(rows) => {
                            let blocks = rows
                                .into_iter()
                                .filter_map(|(r, v)| match v {
                                    RegVal::Disk(b) => Some((r, b)),
                                    _ => None,
                                })
                                .collect();
                            prog.blocks = Some(blocks);
                        }
                        _ => return,
                    }
                }
                self.phase_step(ctx);
            }
            EventKind::Msg {
                msg: Msg::Decided { instance, value },
                ..
            } => {
                if instance == self.instance && self.decided.is_none() {
                    self.decided = Some(value);
                    self.decided_at = Some(ctx.now());
                    ctx.mark_decided();
                }
            }
            EventKind::Msg { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Simulation;

    fn build(n: u32, m: u32, seed: u64) -> (Simulation<Msg>, Vec<Pid>, Vec<ActorId>) {
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        for i in 0..n {
            // Actors 0..n-1 are processes; disks come after.
            let disks: Vec<ActorId> = (n..n + m).map(ActorId).collect();
            sim.add(DiskPaxosActor::new(
                ActorId(i),
                procs.clone(),
                disks,
                Instance(0),
                Value(100 + i as u64),
                Some(ActorId(0)),
                Duration::from_delays(25),
            ));
        }
        let disks: Vec<ActorId> = (0..m).map(|_| sim.add(disk_actor(&procs))).collect();
        assert_eq!(disks, (n..n + m).map(ActorId).collect::<Vec<_>>());
        (sim, procs, disks)
    }

    fn decisions(sim: &Simulation<Msg>, procs: &[Pid]) -> Vec<Option<Value>> {
        procs
            .iter()
            .map(|&p| sim.actor_as::<DiskPaxosActor>(p).unwrap().decision())
            .collect()
    }

    #[test]
    fn common_case_decides_in_four_delays() {
        let (mut sim, procs, _) = build(3, 3, 1);
        sim.run_to_quiescence(Time::from_delays(30));
        let ds = decisions(&sim, &procs);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
        // write (2) + verification read (2): Disk Paxos cannot skip the
        // read-back — this is the paper's "at least four delays".
        assert_eq!(sim.metrics().first_decision_delays(), Some(4.0));
    }

    #[test]
    fn single_survivor_process_decides() {
        // n ≥ f_P + 1: every process but the leader may crash.
        let (mut sim, procs, _) = build(3, 3, 2);
        sim.crash_at(ActorId(1), Time::ZERO);
        sim.crash_at(ActorId(2), Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(100));
        assert_eq!(decisions(&sim, &procs)[0], Some(Value(100)));
    }

    #[test]
    fn tolerates_minority_disk_crashes() {
        let (mut sim, procs, disks) = build(2, 5, 3);
        sim.crash_at(disks[1], Time::ZERO);
        sim.crash_at(disks[3], Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(100));
        let ds = decisions(&sim, &procs);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
    }

    #[test]
    fn majority_disk_crash_blocks_safely() {
        let (mut sim, procs, disks) = build(2, 3, 4);
        sim.crash_at(disks[0], Time::ZERO);
        sim.crash_at(disks[1], Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(500));
        assert_eq!(decisions(&sim, &procs), vec![None, None]);
    }

    #[test]
    fn leader_takeover_preserves_committed_value() {
        let (mut sim, procs, _) = build(3, 3, 5);
        // Let the initial leader commit (decides at 4 delays), then crash
        // it before new leader p1 starts; p1 must adopt value 100.
        sim.crash_at(ActorId(0), Time::from_delays(5));
        sim.announce_leader(Time::from_delays(10), &procs, ActorId(1));
        sim.run_to_quiescence(Time::from_delays(300));
        let ds = decisions(&sim, &procs);
        assert_eq!(ds[1], Some(Value(100)), "{ds:?}");
        assert_eq!(ds[2], Some(Value(100)), "{ds:?}");
    }

    #[test]
    fn contending_leaders_stay_safe() {
        for seed in 0..10 {
            let (mut sim, procs, _) = build(4, 3, seed);
            // Everyone believes they lead at some point.
            sim.announce_leader(Time::from_delays(3), &procs[1..2], ActorId(1));
            sim.announce_leader(Time::from_delays(6), &procs[2..3], ActorId(2));
            sim.announce_leader(Time::from_delays(60), &procs, ActorId(3));
            sim.run_to_quiescence(Time::from_delays(2000));
            let got: Vec<Value> = decisions(&sim, &procs).into_iter().flatten().collect();
            assert!(!got.is_empty(), "seed {seed}: nobody decided");
            assert!(got.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {got:?}");
        }
    }
}
