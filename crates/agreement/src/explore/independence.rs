//! The explorer's independence relation over ripe kernel events.
//!
//! Two same-tick events are *independent* when dispatching them in
//! either order yields the same state and the same future behaviour —
//! the Mazurkiewicz-trace equivalence a partial-order reduction prunes
//! by. The relation here is deliberately conservative (sound for
//! pruning: anything *possibly* conflicting is declared dependent):
//!
//! * **Different destination actors ⇒ independent.** An actor's handler
//!   reads and writes only its own state plus the [`Context`] effects it
//!   emits; two dispatches at different actors touch disjoint state.
//!   Swapping them relabels the kernel sequence numbers of the events
//!   they emit — but same-tick ordering is exactly the freedom the
//!   explorer already enumerates, and cross-tick order is fixed by
//!   virtual time, so the relabeling never changes what any later
//!   choice point can choose *among*, only its default order.
//! * **Same actor ⇒ dependent**, with one carve-out: two memory-wire
//!   *requests* arriving at a memory actor with disjoint register
//!   footprints and no permission change commute — the memory applies
//!   each against unrelated registers and the responses (sent to the
//!   original requesters) carry the same values either way. This is the
//!   reduction of Abdulla et al.'s RDMA-program verification work: most
//!   same-memory traffic lands on distinct registers (per-slot log
//!   writes, per-process broadcast rows), so this carve-out is where
//!   the pruning actually bites.
//!
//! Footprints over-approximate: a `ReadRange` reads its whole `within`
//! pattern (the region's own spec is memory-side configuration the wire
//! does not carry), and `ChangePerm` conflicts with everything on that
//! memory — permissions gate every other request's Nak-or-apply
//! outcome.
//!
//! [`Context`]: simnet::Context

use std::collections::BTreeSet;

use rdma_sim::{MemRequest, MemWire, RegId, RegionSpec};
use simnet::{ActorId, Choice, ChoicePayload, EventKind};

use crate::types::{Msg, RegVal};

/// An order-stable summary of one ripe kernel event, as the explorer's
/// sleep sets and child seeds store it. `seq` is the kernel scheduling
/// sequence number — identical across replays of a shared choice-vector
/// prefix, which is what makes summaries comparable between runs.
#[derive(Clone, Debug, PartialEq)]
pub struct ExploredEvent {
    /// Kernel scheduling sequence number (replay-stable identity).
    pub seq: u64,
    /// Destination actor.
    pub to: ActorId,
    /// What the event is, as far as independence cares.
    pub kind: EventClass,
}

/// The independence-relevant classification of an event.
#[derive(Clone, Debug, PartialEq)]
pub enum EventClass {
    /// An actor's `Start` event.
    Start,
    /// A timer firing with the given tag.
    Timer {
        /// The timer's purpose tag.
        tag: u64,
    },
    /// A leader-oracle announcement.
    LeaderChange,
    /// A scheduled crash of the destination actor.
    Crash,
    /// A message delivery that is not a memory request (protocol
    /// messages, memory *responses*, anything opaque).
    Msg {
        /// The sender.
        from: ActorId,
    },
    /// A memory-wire request arriving at a memory actor, with its
    /// register footprint.
    MemReq {
        /// The requesting process.
        from: ActorId,
        /// Registers the request reads/writes.
        fp: Footprint,
    },
}

/// The register sets a memory request touches.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Footprint {
    /// Registers (or register patterns) read.
    pub reads: Vec<RegAccess>,
    /// Registers written.
    pub writes: Vec<RegAccess>,
    /// Whether the request changes a region's permission — which gates
    /// every other request on the memory, so it conflicts with all.
    pub perm: bool,
}

/// One element of a footprint: a single register or a pattern of them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RegAccess {
    /// Exactly one register.
    Exact(RegId),
    /// Every register a [`RegionSpec`] matches (the `ReadRange`
    /// over-approximation).
    Pattern(RegionSpec),
}

/// Summarizes a kernel [`Choice`] for the independence relation. `mems`
/// is the deployment's set of memory-actor ids ([`GroupTopology::mems`]
/// over every group): only requests *to a memory* get footprints —
/// the same wire message delivered to a process is protocol input and
/// stays order-dependent.
///
/// [`GroupTopology::mems`]: crate::sharded::GroupTopology::mems
pub fn summarize_choice(c: &Choice<'_, Msg>, mems: &BTreeSet<ActorId>) -> ExploredEvent {
    let kind = match &c.payload {
        ChoicePayload::Crash => EventClass::Crash,
        ChoicePayload::Deliver(ev) => match ev {
            EventKind::Start => EventClass::Start,
            EventKind::Timer { tag, .. } => EventClass::Timer { tag: *tag },
            EventKind::LeaderChange { .. } => EventClass::LeaderChange,
            EventKind::Msg { from, msg } => match msg {
                Msg::Mem(MemWire::Req { req, .. }) if mems.contains(&c.to) => EventClass::MemReq {
                    from: *from,
                    fp: footprint(req),
                },
                _ => EventClass::Msg { from: *from },
            },
        },
    };
    ExploredEvent {
        seq: c.seq,
        to: c.to,
        kind,
    }
}

/// The register footprint of one memory request.
pub fn footprint(req: &MemRequest<RegVal>) -> Footprint {
    let mut fp = Footprint::default();
    match req {
        MemRequest::Read { reg, .. } => fp.reads.push(RegAccess::Exact(*reg)),
        MemRequest::Write { reg, .. } => fp.writes.push(RegAccess::Exact(*reg)),
        MemRequest::WriteMany { writes, .. } => {
            fp.writes
                .extend(writes.iter().map(|(r, _)| RegAccess::Exact(*r)));
        }
        MemRequest::ReadRange { within, .. } => {
            // The region's own spec lives memory-side; the wildcard is
            // the sound over-approximation.
            fp.reads
                .push(RegAccess::Pattern(within.unwrap_or(RegionSpec::All)));
        }
        MemRequest::ChangePerm { .. } => fp.perm = true,
    }
    fp
}

/// Whether two same-tick events commute (see the module docs).
pub fn independent(a: &ExploredEvent, b: &ExploredEvent) -> bool {
    if a.to != b.to {
        return true;
    }
    match (&a.kind, &b.kind) {
        (EventClass::MemReq { fp: fa, .. }, EventClass::MemReq { fp: fb, .. }) => {
            !conflicts(fa, fb)
        }
        _ => false,
    }
}

/// Whether two footprints interfere: a permission change on either
/// side, or a write overlapping the other's reads or writes.
pub fn conflicts(a: &Footprint, b: &Footprint) -> bool {
    if a.perm || b.perm {
        return true;
    }
    let hit = |xs: &[RegAccess], ys: &[RegAccess]| {
        xs.iter().any(|x| ys.iter().any(|y| may_overlap(*x, *y)))
    };
    hit(&a.writes, &b.writes) || hit(&a.writes, &b.reads) || hit(&a.reads, &b.writes)
}

/// Whether two footprint elements can name a common register
/// (conservative: `true` unless provably disjoint).
pub fn may_overlap(a: RegAccess, b: RegAccess) -> bool {
    match (a, b) {
        (RegAccess::Exact(r), RegAccess::Exact(s)) => r == s,
        (RegAccess::Exact(r), RegAccess::Pattern(spec))
        | (RegAccess::Pattern(spec), RegAccess::Exact(r)) => spec.contains(r),
        (RegAccess::Pattern(p), RegAccess::Pattern(q)) => specs_may_overlap(p, q),
    }
}

/// Whether two region specs can share a register. Distinct namespaces
/// and incompatible fixed coordinates are provably disjoint; everything
/// else is assumed to overlap.
fn specs_may_overlap(p: RegionSpec, q: RegionSpec) -> bool {
    use RegionSpec::*;
    let coord = |x: Option<u64>, y: Option<u64>| match (x, y) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    };
    match (p, q) {
        (All, _) | (_, All) => true,
        (Exact(r), other) | (other, Exact(r)) => other.contains(r),
        (Space(s), Space(t)) => s == t,
        (Space(s), Pattern { space, .. }) | (Pattern { space, .. }, Space(s)) => s == space,
        (
            Pattern {
                space: s1,
                a: a1,
                b: b1,
                c: c1,
            },
            Pattern {
                space: s2,
                a: a2,
                b: b2,
                c: c2,
            },
        ) => s1 == s2 && coord(a1, a2) && coord(b1, b2) && coord(c1, c2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::RegionId;

    fn ev(seq: u64, to: u32, kind: EventClass) -> ExploredEvent {
        ExploredEvent {
            seq,
            to: ActorId(to),
            kind,
        }
    }

    fn mem_req(seq: u64, to: u32, req: &MemRequest<RegVal>) -> ExploredEvent {
        ev(
            seq,
            to,
            EventClass::MemReq {
                from: ActorId(0),
                fp: footprint(req),
            },
        )
    }

    const MR: RegionId = RegionId(0);

    fn write(reg: RegId) -> MemRequest<RegVal> {
        MemRequest::Write {
            region: MR,
            reg,
            value: RegVal::LbFlag(crate::types::Value(0)),
        }
    }

    fn read(reg: RegId) -> MemRequest<RegVal> {
        MemRequest::Read { region: MR, reg }
    }

    #[test]
    fn different_actors_always_commute() {
        let a = ev(1, 3, EventClass::Msg { from: ActorId(9) });
        let b = ev(2, 4, EventClass::Msg { from: ActorId(9) });
        assert!(independent(&a, &b));
        let c = ev(3, 4, EventClass::Crash);
        assert!(independent(&a, &c));
    }

    #[test]
    fn same_actor_non_mem_events_conflict() {
        let a = ev(1, 3, EventClass::Msg { from: ActorId(9) });
        let b = ev(2, 3, EventClass::Timer { tag: 1 });
        assert!(!independent(&a, &b));
        let c = ev(3, 3, EventClass::Crash);
        assert!(!independent(&a, &c));
    }

    #[test]
    fn disjoint_register_requests_commute() {
        let a = mem_req(1, 7, &write(RegId::one(1, 0)));
        let b = mem_req(2, 7, &write(RegId::one(1, 1)));
        assert!(independent(&a, &b));
        let c = mem_req(3, 7, &read(RegId::one(1, 2)));
        assert!(independent(&a, &c));
    }

    #[test]
    fn same_register_write_conflicts_with_read_and_write() {
        let w = mem_req(1, 7, &write(RegId::one(1, 5)));
        let w2 = mem_req(2, 7, &write(RegId::one(1, 5)));
        let r = mem_req(3, 7, &read(RegId::one(1, 5)));
        assert!(!independent(&w, &w2));
        assert!(!independent(&w, &r));
        // Two reads of the same register commute.
        let r2 = mem_req(4, 7, &read(RegId::one(1, 5)));
        assert!(independent(&r, &r2));
    }

    #[test]
    fn range_read_conflicts_with_matching_writes_only() {
        let scan = mem_req(
            1,
            7,
            &MemRequest::ReadRange {
                region: MR,
                within: Some(RegionSpec::row(2, 4)),
            },
        );
        let hit = mem_req(2, 7, &write(RegId::new(2, 4, 9, 0)));
        let miss_row = mem_req(3, 7, &write(RegId::new(2, 5, 9, 0)));
        let miss_space = mem_req(4, 7, &write(RegId::new(3, 4, 9, 0)));
        assert!(!independent(&scan, &hit));
        assert!(independent(&scan, &miss_row));
        assert!(independent(&scan, &miss_space));
        // An unrestricted scan conflicts with every write.
        let full = mem_req(
            5,
            7,
            &MemRequest::ReadRange {
                region: MR,
                within: None,
            },
        );
        assert!(!independent(&full, &miss_space));
    }

    #[test]
    fn perm_change_conflicts_with_everything_on_the_memory() {
        let perm = mem_req(
            1,
            7,
            &MemRequest::ChangePerm {
                region: MR,
                new: rdma_sim::Permission::read_only(),
            },
        );
        let r = mem_req(2, 7, &read(RegId::one(1, 0)));
        let w = mem_req(3, 7, &write(RegId::one(9, 9)));
        assert!(!independent(&perm, &r));
        assert!(!independent(&perm, &w));
        // ...but not with traffic at a different memory.
        let elsewhere = mem_req(4, 8, &read(RegId::one(1, 0)));
        assert!(independent(&perm, &elsewhere));
    }

    #[test]
    fn pattern_pattern_overlap_is_conservative() {
        use RegAccess::Pattern;
        // Same space, compatible coords: may overlap.
        assert!(may_overlap(
            Pattern(RegionSpec::row(1, 3)),
            Pattern(RegionSpec::Space(1))
        ));
        // Fixed differing coordinate: provably disjoint.
        assert!(!may_overlap(
            Pattern(RegionSpec::row(1, 3)),
            Pattern(RegionSpec::row(1, 4))
        ));
        // Different spaces: disjoint.
        assert!(!may_overlap(
            Pattern(RegionSpec::Space(1)),
            Pattern(RegionSpec::Space(2))
        ));
    }
}
