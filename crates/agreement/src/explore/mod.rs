//! Bounded systematic schedule exploration (DPOR-lite) over the
//! kernel's delivery choices.
//!
//! The deterministic kernel dispatches same-tick events in `(time, seq)`
//! order; with a [`simnet::Simulation::set_choice_hook`] installed, that
//! tie-break becomes a *choice point* the explorer controls. A schedule
//! is then a **choice vector** — the index picked at each multi-option
//! slate, in order — and replaying a vector is bit-deterministic.
//!
//! [`explore`] enumerates inequivalent vectors by depth-first frontier
//! search with **sleep-set pruning** (Godefroid): after exploring one
//! branch of a choice point, the branched-over alternatives are put to
//! sleep in the sibling branches and never re-explored until some
//! *dependent* event (per [`independence`]) wakes the state. Sleep sets
//! alone are a sound reduction — every Mazurkiewicz trace keeps at least
//! one representative — without the bookkeeping of full persistent-set
//! DPOR; redundant runs that wake no new behaviour are detected
//! (sleep-blocked) and their subtrees cut.
//!
//! Every explored schedule runs the full scenario and is audited by the
//! fuzzer's oracle ([`crate::fuzz::audit_report`]); failures carry their
//! choice vector, shrink to a minimal vector ([`shrink_choices`]), and
//! render as timelines ([`render_schedule_timeline`]). The `explore`
//! bench binary drives exhaustive sweeps of tiny configurations.

pub mod independence;

use std::cell::RefCell;
use std::collections::{BTreeSet, HashSet};
use std::rc::Rc;

use simnet::{ActorId, Choice, DelayModel, Simulation};

use crate::fuzz::{audit_report, Violation};
use crate::harness::{run_sharded_instrumented, ShardedRunReport, ShardedScenario};
use crate::types::Msg;
use independence::{independent, summarize_choice, ExploredEvent};

/// Budgets and switches for one [`explore`] sweep.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Maximum schedules to run before abandoning the frontier.
    pub max_schedules: usize,
    /// Maximum choice points a single run branches at; deeper slates
    /// fall back to default order (the run still completes, but is
    /// marked truncated and grows no children past the cap).
    pub max_depth: usize,
    /// Sleep-set pruning on (the default). Off enumerates the full
    /// naive product of slate sizes — the baseline pruning is measured
    /// against.
    pub prune: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 10_000,
            max_depth: 64,
            prune: true,
        }
    }
}

/// One recorded multi-option choice point of a run.
#[derive(Clone, Debug)]
pub struct ChoicePoint {
    /// The slate offered, in ascending kernel `seq` order.
    pub options: Vec<ExploredEvent>,
    /// The sleep set on arrival at this point (empty when pruning is
    /// off or the point is inside a replayed prefix).
    pub sleep: Vec<ExploredEvent>,
    /// The index dispatched.
    pub chosen: usize,
}

/// One schedule's execution under the explorer's hook.
#[derive(Debug)]
pub struct ScheduleRun {
    /// The run's report (auditable by [`crate::fuzz::audit_report`]).
    pub report: ShardedRunReport,
    /// The multi-option choice points encountered, in order.
    pub points: Vec<ChoicePoint>,
    /// The index taken at each point (`points[i].chosen`, flattened —
    /// replaying this vector reproduces the run bit-for-bit).
    pub taken: Vec<usize>,
    /// Whether the run hit the depth cap (choices past it defaulted).
    pub truncated: bool,
    /// Whether the run went sleep-blocked: it dispatched an event its
    /// sleep set proves commutes back into an already-explored trace,
    /// so the whole continuation is redundant.
    pub redundant: bool,
    /// Alternatives discarded at the sleep-blocking point, if any (they
    /// are not recorded as a [`ChoicePoint`], so the explorer counts
    /// them as pruned from here).
    pub block_pruned: u64,
    /// Observability events, when the scenario records them (the
    /// timeline path); empty otherwise.
    pub events: Vec<simnet::obs::Event>,
}

/// A schedule the oracle rejected.
#[derive(Clone, Debug)]
pub struct ScheduleFailure {
    /// The failing choice vector (trailing default choices trimmed;
    /// replay with [`run_schedule`]).
    pub choices: Vec<usize>,
    /// What the oracle reported.
    pub violation: Violation,
}

/// What one [`explore`] sweep found.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Schedules executed (sleep-blocked redundant runs included).
    pub schedules_run: u64,
    /// Branches never executed because their event slept (plus the
    /// unexplored alternatives of sleep-blocked points) — the work the
    /// independence relation saved.
    pub schedules_pruned: u64,
    /// Runs that went sleep-blocked (duplicates of explored traces).
    pub schedules_redundant: u64,
    /// Runs that hit the depth cap.
    pub truncated_runs: u64,
    /// Whether the frontier drained within `max_schedules` — together
    /// with `truncated_runs == 0` this makes the sweep *exhaustive*.
    pub frontier_exhausted: bool,
    /// Schedules the oracle passed.
    pub oracle_pass: u64,
    /// Schedules the oracle rejected (total; the first
    /// [`ExploreReport::MAX_STORED_FAILURES`] are kept in `failures`).
    pub failures_found: u64,
    /// The stored failing schedules.
    pub failures: Vec<ScheduleFailure>,
    /// Distinct final-state fingerprints over all runs (see
    /// [`fingerprint`]).
    pub fingerprints: BTreeSet<u64>,
    /// Widest slate offered at any choice point.
    pub max_branching: usize,
    /// Total multi-option choice points recorded across all runs.
    pub choice_points: u64,
}

impl ExploreReport {
    /// Cap on failing schedules kept in [`ExploreReport::failures`].
    pub const MAX_STORED_FAILURES: usize = 32;
}

/// Mutable state behind the kernel choice hook for one run.
struct HookState {
    /// Memory-actor ids (footprints only apply to requests at these).
    mems: BTreeSet<ActorId>,
    /// Frozen prefix to replay; free choice beyond it.
    vector: Vec<usize>,
    /// Multi-option points consumed so far.
    pos: usize,
    /// Depth cap on *free* choice points.
    max_depth: usize,
    /// Sleep-set pruning on.
    prune: bool,
    /// The live sleep set (seq-identified events).
    sleep: Vec<ExploredEvent>,
    points: Vec<ChoicePoint>,
    taken: Vec<usize>,
    truncated: bool,
    /// Set when the run goes sleep-blocked; recording stops.
    blocked: bool,
    /// Alternatives discarded at the blocking point.
    block_pruned: u64,
    max_branching: usize,
}

impl HookState {
    fn slept(&self, ev: &ExploredEvent) -> bool {
        self.sleep.iter().any(|z| z.seq == ev.seq)
    }

    fn on_choices(&mut self, choices: &[Choice<'_, Msg>]) -> usize {
        if choices.len() == 1 {
            // Forced dispatch: no choice, but the sleep set must see it —
            // a forced event that is itself asleep proves the whole
            // continuation replays an explored trace.
            if self.pos >= self.vector.len() && !self.blocked && self.prune {
                let ev = summarize_choice(&choices[0], &self.mems);
                if self.slept(&ev) {
                    self.blocked = true;
                } else {
                    self.sleep.retain(|z| independent(z, &ev));
                }
            }
            return 0;
        }
        let p = self.pos;
        let free = p >= self.vector.len();
        if free && p >= self.max_depth {
            self.truncated = true;
            return 0;
        }
        self.pos += 1;
        let options: Vec<ExploredEvent> = choices
            .iter()
            .map(|c| summarize_choice(c, &self.mems))
            .collect();
        self.max_branching = self.max_branching.max(options.len());
        let chosen = if !free {
            // Replaying the parent's prefix; the inherited sleep set was
            // computed at the branch point and needs no updates here.
            self.vector[p].min(options.len() - 1)
        } else if self.blocked {
            0
        } else if self.prune {
            match (0..options.len()).find(|&i| !self.slept(&options[i])) {
                Some(i) => {
                    let sleep_snapshot = self.sleep.clone();
                    self.sleep.retain(|z| independent(z, &options[i]));
                    self.points.push(ChoicePoint {
                        options,
                        sleep: sleep_snapshot,
                        chosen: i,
                    });
                    self.taken.push(i);
                    return i;
                }
                None => {
                    // Every alternative is asleep: this state is fully
                    // covered by already-explored traces.
                    self.blocked = true;
                    self.block_pruned += options.len() as u64 - 1;
                    return 0;
                }
            }
        } else {
            0
        };
        if !self.blocked {
            self.points.push(ChoicePoint {
                options,
                sleep: self.sleep.clone(),
                chosen,
            });
            self.taken.push(chosen);
        }
        chosen
    }
}

/// Clones `sc` into the explorer's normalized form: the monolithic
/// single-threaded kernel with observability off.
///
/// # Panics
///
/// Panics unless the scenario's delay model is constant — under jitter
/// the schedule space is the delay space, not the same-tick tie-break
/// the explorer enumerates.
fn normalize(sc: &ShardedScenario) -> ShardedScenario {
    assert!(
        matches!(sc.delay, DelayModel::Constant(_)),
        "explore() needs a constant delay model: same-tick ordering is \
         the only schedule freedom it enumerates"
    );
    let mut norm = sc.clone();
    norm.partitions = 1;
    norm.threads = 1;
    norm.record_events = false;
    norm.record_spans = false;
    norm
}

/// The memory-actor id set of `sc`'s deployment.
fn memory_ids(sc: &ShardedScenario) -> BTreeSet<ActorId> {
    let topo = sc.topology();
    (0..sc.groups).flat_map(|g| topo.mems(g)).collect()
}

/// Executes one schedule: replay `vector` at the first choice points,
/// then free-run (first non-slept alternative under pruning, default
/// order otherwise) with `sleep` as the inherited sleep set.
fn run_one(
    sc: &ShardedScenario,
    mems: &BTreeSet<ActorId>,
    cfg: &ExploreConfig,
    vector: Vec<usize>,
    sleep: Vec<ExploredEvent>,
) -> ScheduleRun {
    let state = Rc::new(RefCell::new(HookState {
        mems: mems.clone(),
        vector,
        pos: 0,
        max_depth: cfg.max_depth,
        prune: cfg.prune,
        sleep,
        points: Vec::new(),
        taken: Vec::new(),
        truncated: false,
        blocked: false,
        block_pruned: 0,
        max_branching: 0,
    }));
    let hook_state = state.clone();
    let (report, events) = run_sharded_instrumented(sc, move |sim: &mut Simulation<Msg>| {
        sim.set_choice_hook(Box::new(move |_t, choices| {
            hook_state.borrow_mut().on_choices(choices)
        }));
    });
    let mut st = state.borrow_mut();
    ScheduleRun {
        report,
        points: std::mem::take(&mut st.points),
        taken: std::mem::take(&mut st.taken),
        truncated: st.truncated,
        redundant: st.blocked,
        block_pruned: st.block_pruned,
        events,
    }
}

/// Replays one choice vector against `sc` (normalized as [`explore`]
/// normalizes it) and returns the run. Entry `i` picks the alternative
/// at the `i`-th multi-option choice point (out-of-range indices clamp);
/// points past the vector take default `(time, seq)` order.
pub fn run_schedule(sc: &ShardedScenario, choices: &[usize]) -> ScheduleRun {
    let norm = normalize(sc);
    let mems = memory_ids(&norm);
    let cfg = ExploreConfig {
        // Honor arbitrarily long replay vectors; the depth cap only
        // gates free branching.
        max_depth: usize::MAX,
        prune: true,
        ..ExploreConfig::default()
    };
    run_one(&norm, &mems, &cfg, choices.to_vec(), Vec::new())
}

/// The sleep set a child branch inherits: everything already explored
/// from this point (the run's own choice plus earlier-enumerated
/// siblings) joined with the point's arrival sleep set, kept only where
/// independent of the branch event — dependent events *wake*.
fn child_sleep(pt: &ChoicePoint, branch: usize) -> Vec<ExploredEvent> {
    let b = &pt.options[branch];
    let mut seen = HashSet::new();
    pt.sleep
        .iter()
        .chain(pt.options[..branch].iter())
        .chain(std::iter::once(&pt.options[pt.chosen]))
        .filter(|ev| seen.insert(ev.seq) && independent(ev, b))
        .cloned()
        .collect()
}

/// A frontier entry: a schedule prefix awaiting execution.
struct FrontierItem {
    vector: Vec<usize>,
    sleep: Vec<ExploredEvent>,
}

/// Systematically explores `sc`'s schedule space under `cfg`, auditing
/// every schedule with the fuzzer's oracle. Deterministic: the same
/// `(scenario, config)` always yields the same report, including the
/// order failures are found in.
pub fn explore(sc: &ShardedScenario, cfg: &ExploreConfig) -> ExploreReport {
    let norm = normalize(sc);
    let mems = memory_ids(&norm);
    let mut report = ExploreReport {
        frontier_exhausted: true,
        ..ExploreReport::default()
    };
    let mut stack = vec![FrontierItem {
        vector: Vec::new(),
        sleep: Vec::new(),
    }];
    while let Some(item) = stack.pop() {
        if report.schedules_run as usize >= cfg.max_schedules {
            report.frontier_exhausted = false;
            break;
        }
        let run = run_one(&norm, &mems, cfg, item.vector.clone(), item.sleep);
        report.schedules_run += 1;
        report.truncated_runs += u64::from(run.truncated);
        report.schedules_redundant += u64::from(run.redundant);
        report.max_branching = report.max_branching.max(
            run.points
                .iter()
                .map(|p| p.options.len())
                .max()
                .unwrap_or(0),
        );
        report.choice_points += run.points.len() as u64;
        report.fingerprints.insert(fingerprint(&run.report));
        match audit_report(&norm, &run.report) {
            Ok(()) => report.oracle_pass += 1,
            Err(v) => {
                report.failures_found += 1;
                if report.failures.len() < ExploreReport::MAX_STORED_FAILURES {
                    let mut choices = run.taken.clone();
                    while choices.last() == Some(&0) {
                        choices.pop();
                    }
                    report.failures.push(ScheduleFailure {
                        choices,
                        violation: v,
                    });
                }
            }
        }
        // Branch every free choice point (prefix points were branched by
        // the ancestors that froze them). A sleep-blocked run records no
        // points past the block, cutting the redundant subtree.
        let mut children = Vec::new();
        for p in item.vector.len()..run.points.len() {
            let pt = &run.points[p];
            for a in 0..pt.options.len() {
                if a == pt.chosen {
                    continue;
                }
                if cfg.prune && pt.sleep.iter().any(|z| z.seq == pt.options[a].seq) {
                    report.schedules_pruned += 1;
                    continue;
                }
                let mut vector = run.taken[..p].to_vec();
                vector.push(a);
                children.push(FrontierItem {
                    vector,
                    sleep: if cfg.prune {
                        child_sleep(pt, a)
                    } else {
                        Vec::new()
                    },
                });
            }
        }
        // Account the blocking point's unexplored alternatives.
        report.schedules_pruned += run.block_pruned;
        // LIFO stack: push reversed for in-order depth-first traversal.
        for c in children.into_iter().rev() {
            stack.push(c);
        }
    }
    report
}

/// FNV-1a over a report's *safety-relevant* state: the committed logs,
/// the invariant flags, and the suppression/migration counters — not
/// latencies or queue depths. Two schedules with equal fingerprints
/// reached the same observable outcome.
pub fn fingerprint(r: &ShardedRunReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut put = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    for g in &r.groups {
        put(g.entries as u64);
        put(g.committed as u64);
        put(u64::from(g.logs_agree));
        for v in &g.log {
            put(v.0);
        }
        put(u64::MAX); // group separator
    }
    put(r.total_entries as u64);
    put(r.committed as u64);
    put(u64::from(r.all_committed));
    put(u64::from(r.all_logs_agree));
    put(u64::from(r.no_cross_group_leak));
    put(r.duplicates_suppressed);
    put(r.equivocations_blocked);
    put(r.byz_receipts_rejected);
    put(r.byz_unconfirmed_claims);
    put(r.byz_withheld_reports);
    put(r.byz_fast_commits);
    put(r.byz_fast_confirms);
    put(r.migrations_completed as u64);
    put(r.routing_table_version);
    put(r.rerouted_commands);
    put(r.cross_epoch_commits);
    h
}

/// Shrinks a failing choice vector to a minimal one: first the shortest
/// failing prefix, then greedily resetting entries to the default
/// choice, to a fixed point. Wholly deterministic.
///
/// # Panics
///
/// Panics if `choices` does not fail on `sc` — shrinking a passing
/// schedule is a caller bug.
pub fn shrink_choices(sc: &ShardedScenario, choices: &[usize]) -> (Vec<usize>, Violation) {
    let norm = normalize(sc);
    let fails = |v: &[usize]| -> Option<Violation> {
        let run = run_schedule(&norm, v);
        audit_report(&norm, &run.report).err()
    };
    let mut violation =
        fails(choices).expect("shrink_choices() called on a schedule that passes the oracle");
    let mut current: Vec<usize> = choices.to_vec();
    // Phase 1: shortest failing prefix (points past the prefix take
    // default order, so a prefix is a complete schedule).
    for k in 0..current.len() {
        if let Some(v) = fails(&current[..k]) {
            violation = v;
            current.truncate(k);
            break;
        }
    }
    // Phase 2: zero entries greedily, restarting on success, until no
    // single entry can be defaulted.
    'outer: loop {
        for i in 0..current.len() {
            if current[i] == 0 {
                continue;
            }
            let mut cand = current.clone();
            cand[i] = 0;
            if let Some(v) = fails(&cand) {
                violation = v;
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    while current.last() == Some(&0) {
        current.pop();
    }
    (current, violation)
}

/// Replays a failing choice vector with observability recording on and
/// renders the run's timeline — the explorer's analogue of
/// [`crate::fuzz::render_timeline`], showing the *schedule-induced*
/// failure rather than a scenario-induced one.
pub fn render_schedule_timeline(
    sc: &ShardedScenario,
    choices: &[usize],
    title: &str,
) -> crate::fuzz::TimelineArtifacts {
    let mut traced = normalize(sc);
    traced.record_events = true;
    traced.record_spans = true;
    let mems = memory_ids(&traced);
    let cfg = ExploreConfig {
        max_depth: usize::MAX,
        ..ExploreConfig::default()
    };
    let run = run_one(&traced, &mems, &cfg, choices.to_vec(), Vec::new());
    crate::fuzz::render_events(&run.events, title)
}
