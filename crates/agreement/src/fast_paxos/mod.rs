//! Fast Paxos (Lamport \[38\]) — the message-passing baseline the paper's
//! introduction contrasts with: it decides in **two delays** in common
//! executions, but "it requires n ≥ 2·f_P + 1 processes" (and its fast path
//! needs larger quorums, so it tolerates fewer failures while staying fast).
//!
//! Implementation outline (single fast round + coordinated recovery):
//! * Any proposer broadcasts its value directly to all acceptors
//!   ([`FpMsg::FastPropose`]). An acceptor casts at most one fast vote and
//!   broadcasts [`FpMsg::FastAccepted`]; a value with a **fast quorum**
//!   `q_f` of votes is decided — two delays end to end.
//! * On collision (no fast quorum), the coordinator runs a classic round:
//!   `Prepare` / `Promise` (promises report fast votes), then picks the only
//!   possibly-chosen value: any `v` with at least `q_c + q_f − n` votes among
//!   a classic quorum `q_c` of promises must be chosen; otherwise the choice
//!   is free. `Accept` / `Accepted` with classic majority completes.
//!
//! Quorum sizes: `q_c = ⌊n/2⌋ + 1` (crash resilience `n ≥ 2·f_P + 1`) and
//! the smallest `q_f` with `q_c + 2·q_f ≥ 2n + 1`, so any two fast quorums
//! and any classic quorum intersect. Two values can never both reach the
//! pick threshold `q_c + q_f − n` within one classic quorum (that would need
//! `q_c + 2·q_f ≤ 2n`), so recovery is deterministic.

use std::collections::{BTreeMap, BTreeSet};

use simnet::{Actor, Context, Duration, EventKind, Time};

use crate::types::{Ballot, Msg, Pid, Value};

/// Fast Paxos wire messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FpMsg {
    /// Proposer → acceptors: vote for `v` in the fast round.
    FastPropose {
        /// The proposed value.
        v: Value,
    },
    /// Acceptor → all: its fast-round vote.
    FastAccepted {
        /// The voted value.
        v: Value,
    },
    /// Coordinator → acceptors: start classic recovery round `b`.
    Prepare {
        /// The classic ballot.
        b: Ballot,
    },
    /// Acceptor → coordinator: promise for `b`, reporting both its fast
    /// vote and any classic accepted pair.
    Promise {
        /// The promised ballot.
        b: Ballot,
        /// The acceptor's fast-round vote, if it cast one.
        fast: Option<Value>,
        /// The acceptor's classic accepted pair, if any.
        classic: Option<(Ballot, Value)>,
    },
    /// Coordinator → acceptors: classic phase 2.
    Accept {
        /// The classic ballot.
        b: Ballot,
        /// The recovered value.
        v: Value,
    },
    /// Acceptor → all: classic accept vote.
    Accepted {
        /// The ballot.
        b: Ballot,
        /// The value.
        v: Value,
    },
    /// Decision announcement (crash model: trusted).
    Decide {
        /// The decided value.
        v: Value,
    },
}

/// Classic quorum size.
fn q_classic(n: usize) -> usize {
    n / 2 + 1
}

/// Fast quorum size: smallest `q_f` with `q_c + 2 q_f ≥ 2n + 1`.
fn q_fast(n: usize) -> usize {
    let need = 2 * n + 1 - q_classic(n);
    need / 2 + (need % 2)
}

/// Timer tags.
const RECOVERY_TAG: u64 = 1;

/// A follower's phase-1b report: `(fast vote, accepted (ballot, value))`.
type PromiseInfo = (Option<Value>, Option<(Ballot, Value)>);

/// A Fast Paxos process (proposer+acceptor+learner; the configured
/// coordinator also runs recovery).
#[derive(Debug)]
pub struct FastPaxosActor {
    me: Pid,
    procs: Vec<Pid>,
    input: Value,
    /// Whether this process proposes at start (harness-controlled, so the
    /// common case has one proposer and collision tests have several).
    propose_at_start: bool,
    coordinator: Pid,
    recovery_after: Duration,
    // Acceptor state.
    fast_vote: Option<Value>,
    promised: Option<Ballot>,
    accepted: Option<(Ballot, Value)>,
    // Learner state.
    fast_tally: BTreeMap<Value, BTreeSet<Pid>>,
    classic_tally: BTreeMap<(Ballot, Value), BTreeSet<Pid>>,
    // Coordinator state.
    round: u64,
    promises: BTreeMap<Pid, PromiseInfo>,
    recovery_ballot: Option<Ballot>,
    decided: Option<Value>,
    /// When this process decided, if it has.
    pub decided_at: Option<Time>,
}

impl FastPaxosActor {
    /// Creates a Fast Paxos process.
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        input: Value,
        propose_at_start: bool,
        coordinator: Pid,
        recovery_after: Duration,
    ) -> FastPaxosActor {
        FastPaxosActor {
            me,
            procs,
            input,
            propose_at_start,
            coordinator,
            recovery_after,
            fast_vote: None,
            promised: None,
            accepted: None,
            fast_tally: BTreeMap::new(),
            classic_tally: BTreeMap::new(),
            round: 0,
            promises: BTreeMap::new(),
            recovery_ballot: None,
            decided: None,
            decided_at: None,
        }
    }

    /// This process's decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.decided
    }

    fn n(&self) -> usize {
        self.procs.len()
    }

    fn broadcast(&self, ctx: &mut Context<'_, Msg>, m: FpMsg) {
        for &q in &self.procs {
            if q != self.me {
                ctx.send(q, Msg::FastPaxos(m));
            }
        }
    }

    fn decide(&mut self, ctx: &mut Context<'_, Msg>, v: Value) {
        if self.decided.is_none() {
            self.decided = Some(v);
            self.decided_at = Some(ctx.now());
            ctx.mark_decided();
            self.broadcast(ctx, FpMsg::Decide { v });
        }
    }

    /// Handles one message, including self-delivered ones.
    fn handle(&mut self, ctx: &mut Context<'_, Msg>, from: Pid, m: FpMsg) {
        match m {
            FpMsg::FastPropose { v } => {
                // Cast at most one fast vote, and none after joining a
                // classic round.
                if self.fast_vote.is_none() && self.promised.is_none() {
                    self.fast_vote = Some(v);
                    self.broadcast(ctx, FpMsg::FastAccepted { v });
                    self.handle(ctx, self.me, FpMsg::FastAccepted { v });
                }
            }
            FpMsg::FastAccepted { v } => {
                self.fast_tally.entry(v).or_default().insert(from);
                if self.fast_tally[&v].len() >= q_fast(self.n()) {
                    self.decide(ctx, v);
                }
            }
            FpMsg::Prepare { b } => {
                if self.promised.is_none_or(|p| b >= p) {
                    self.promised = Some(b);
                    let reply = FpMsg::Promise {
                        b,
                        fast: self.fast_vote,
                        classic: self.accepted,
                    };
                    if b.pid == self.me {
                        self.handle(ctx, self.me, reply);
                    } else {
                        ctx.send(b.pid, Msg::FastPaxos(reply));
                    }
                }
            }
            FpMsg::Promise { b, fast, classic } => {
                if self.recovery_ballot != Some(b) {
                    return;
                }
                self.promises.insert(from, (fast, classic));
                if self.promises.len() == q_classic(self.n()) {
                    let v = self.pick_recovery_value();
                    let accept = FpMsg::Accept { b, v };
                    self.broadcast(ctx, accept);
                    self.handle(ctx, self.me, accept);
                }
            }
            FpMsg::Accept { b, v } => {
                if self.promised.is_none_or(|p| b >= p) {
                    self.promised = Some(b);
                    self.accepted = Some((b, v));
                    let vote = FpMsg::Accepted { b, v };
                    self.broadcast(ctx, vote);
                    self.handle(ctx, self.me, vote);
                }
            }
            FpMsg::Accepted { b, v } => {
                self.classic_tally.entry((b, v)).or_default().insert(from);
                if self.classic_tally[&(b, v)].len() >= q_classic(self.n()) {
                    self.decide(ctx, v);
                }
            }
            FpMsg::Decide { v } => {
                if self.decided.is_none() {
                    self.decided = Some(v);
                    self.decided_at = Some(ctx.now());
                    ctx.mark_decided();
                }
            }
        }
    }

    /// Lamport's recovery rule over the collected classic quorum.
    fn pick_recovery_value(&self) -> Value {
        // Highest classic accepted pair wins outright (multi-round safety).
        if let Some((_, v)) = self
            .promises
            .values()
            .filter_map(|(_, c)| *c)
            .max_by_key(|(b, _)| *b)
        {
            return v;
        }
        // Fast-vote counting: a value with ≥ q_c + q_f − n votes among the
        // quorum may have been fast-chosen and must be picked.
        let threshold = q_classic(self.n()) + q_fast(self.n()) - self.n();
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        for (fast, _) in self.promises.values() {
            if let Some(v) = fast {
                *counts.entry(*v).or_default() += 1;
            }
        }
        if let Some((&v, _)) = counts.iter().find(|(_, &c)| c >= threshold) {
            return v;
        }
        // Free choice: any reported vote, else own input.
        counts.keys().next().copied().unwrap_or(self.input)
    }

    fn start_recovery(&mut self, ctx: &mut Context<'_, Msg>) {
        self.round += 1;
        let b = Ballot {
            round: self.round,
            pid: self.me,
        };
        self.recovery_ballot = Some(b);
        self.promises.clear();
        let prep = FpMsg::Prepare { b };
        self.broadcast(ctx, prep);
        self.handle(ctx, self.me, prep);
    }
}

impl Actor<Msg> for FastPaxosActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                if self.propose_at_start {
                    let m = FpMsg::FastPropose { v: self.input };
                    self.broadcast(ctx, m);
                    self.handle(ctx, self.me, m);
                }
                if self.me == self.coordinator {
                    ctx.set_timer(self.recovery_after, RECOVERY_TAG);
                }
            }
            EventKind::Timer {
                tag: RECOVERY_TAG, ..
            } => {
                if self.decided.is_none() {
                    self.start_recovery(ctx);
                    ctx.set_timer(self.recovery_after, RECOVERY_TAG);
                }
            }
            EventKind::Timer { .. } => {}
            EventKind::Msg {
                from,
                msg: Msg::FastPaxos(m),
            } => self.handle(ctx, from, m),
            EventKind::Msg { .. } => {}
            EventKind::LeaderChange { leader } => {
                // Ω hands recovery duty to a new coordinator.
                self.coordinator = leader;
                if leader == self.me && self.decided.is_none() {
                    ctx.set_timer(self.recovery_after, RECOVERY_TAG);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ActorId, DelayModel, Simulation};

    fn build(n: u32, seed: u64, proposers: &[u32]) -> (Simulation<Msg>, Vec<Pid>) {
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        for i in 0..n {
            sim.add(FastPaxosActor::new(
                ActorId(i),
                procs.clone(),
                Value(100 + i as u64),
                proposers.contains(&i),
                ActorId(0),
                Duration::from_delays(30),
            ));
        }
        (sim, procs)
    }

    fn decisions(sim: &Simulation<Msg>, procs: &[Pid]) -> Vec<Option<Value>> {
        procs
            .iter()
            .map(|&p| sim.actor_as::<FastPaxosActor>(p).unwrap().decision())
            .collect()
    }

    #[test]
    fn quorum_sizes_satisfy_intersection() {
        for n in 3..=12usize {
            let qc = q_classic(n);
            let qf = q_fast(n);
            assert!(qc + 2 * qf > 2 * n, "n={n}");
            assert!(qf <= n, "n={n}");
            // Pick threshold positive and unambiguous.
            let t = qc + qf - n;
            assert!(t >= 1, "n={n}");
            assert!(2 * t > qc, "n={n}: two values could both hit the threshold");
        }
    }

    #[test]
    fn uncontended_fast_path_decides_in_two_delays() {
        let (mut sim, procs) = build(3, 1, &[1]);
        sim.run_to_quiescence(Time::from_delays(20));
        let ds = decisions(&sim, &procs);
        assert!(ds.iter().all(|d| *d == Some(Value(101))), "{ds:?}");
        // Propose (1 delay) + FastAccepted (1 delay): the proposer itself
        // needs votes back from the other acceptors, so 2 delays.
        assert_eq!(sim.metrics().first_decision_delays(), Some(2.0));
    }

    #[test]
    fn collision_recovers_through_coordinator() {
        let (mut sim, procs) = build(5, 2, &[1, 2, 3]);
        sim.run_to_quiescence(Time::from_delays(500));
        let ds = decisions(&sim, &procs);
        assert!(ds.iter().all(|d| d.is_some()), "{ds:?}");
        let v0 = ds[0].unwrap();
        assert!(ds.iter().all(|d| *d == Some(v0)), "{ds:?}");
        // Validity: one of the proposers' inputs.
        assert!([Value(101), Value(102), Value(103)].contains(&v0));
    }

    #[test]
    fn collision_under_random_delays_many_seeds() {
        for seed in 0..25 {
            let (mut sim, procs) = build(5, seed, &[0, 1, 2, 3, 4]);
            sim.set_default_delay(DelayModel::Uniform {
                lo: Duration::from_delays(1),
                hi: Duration::from_delays(5),
            });
            sim.run_to_quiescence(Time::from_delays(3000));
            let ds = decisions(&sim, &procs);
            let got: Vec<Value> = ds.iter().flatten().copied().collect();
            assert_eq!(got.len(), 5, "seed {seed}: {ds:?}");
            assert!(got.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {ds:?}");
        }
    }

    #[test]
    fn fast_path_needs_full_fast_quorum_with_n3() {
        // n=3 → q_f = 3: one crashed acceptor forces recovery.
        let (mut sim, procs) = build(3, 3, &[1]);
        sim.crash_at(ActorId(2), Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(500));
        let ds: Vec<_> = procs[..2]
            .iter()
            .map(|&p| sim.actor_as::<FastPaxosActor>(p).unwrap().decision())
            .collect();
        assert!(ds.iter().all(|d| d.is_some()), "{ds:?}");
        assert_eq!(ds[0], ds[1]);
        // Decided later than the 2-delay fast path.
        assert!(sim.metrics().first_decision_delays().unwrap() > 2.0);
    }

    #[test]
    fn fast_chosen_value_survives_recovery() {
        // All 5 vote fast for proposer 1's value, but the Decide messages
        // are lost to a crash... simulate by having the coordinator start
        // recovery anyway: it must pick the fast-chosen value.
        let (mut sim, procs) = build(5, 4, &[1]);
        // Slow the proposer's links so votes trickle; coordinator recovery
        // fires concurrently with fast votes.
        sim.set_default_delay(DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(40),
        });
        sim.run_to_quiescence(Time::from_delays(5000));
        let ds = decisions(&sim, &procs);
        let got: Vec<Value> = ds.iter().flatten().copied().collect();
        assert!(!got.is_empty());
        assert!(got.iter().all(|v| *v == Value(101)), "{ds:?}");
    }
}
