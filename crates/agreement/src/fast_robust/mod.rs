//! Fast & Robust (§4.3, Figure 6, Theorem 4.9): the paper's headline
//! Byzantine result — a **2-deciding** weak Byzantine agreement protocol
//! with only `n ≥ 2·f_P + 1` processes and `m ≥ 2·f_M + 1` memories.
//!
//! Composition (after the Abstract framework \[7\]):
//!
//! ```text
//!                 commit value                       commit value
//!  Cheap Quorum ───────────────►  ...  ◄─────────────── Preferential Paxos
//!       │                                                      ▲
//!       └──── abort value (+ evidence, Definition 3) ──────────┘
//!                          Robust Backup / nebcast
//! ```
//!
//! Every process runs Cheap Quorum; in the common case the leader decides
//! after one replicated write (2 delays) and followers decide through
//! unanimity proofs. Any failure or asynchrony triggers panic: processes
//! abort with evidence-bearing values, which seed Preferential Paxos with
//! Definition-3 priorities. Lemma 4.8 (asserted *at run time* here): if any
//! correct process decided `v` in Cheap Quorum, `v` is the only value
//! Preferential Paxos can decide.

use rdma_sim::{LegalChange, MemoryActor, MemoryClient};
use sigsim::{SigVerifier, Signer};
use simnet::{Actor, ActorId, Context, Duration, EventKind, Time};

use crate::cheap_quorum::{self, CqCore};
use crate::nebcast;
use crate::pref_paxos::PrefCore;
use crate::types::{Msg, Pid, RegVal, Value};

/// Which sub-protocol produced the decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Via {
    /// The Cheap Quorum fast path.
    Fast,
    /// The Robust Backup (Preferential Paxos) path.
    Backup,
}

/// Configures one memory with both Cheap Quorum and broadcast regions.
pub fn configure_memory(mem: &mut MemoryActor<RegVal, Msg>, procs: &[Pid], leader: Pid) {
    cheap_quorum::configure_memory(mem, procs, leader);
    nebcast::configure_memory(mem, procs);
}

/// Builds a ready-to-add Fast & Robust memory.
pub fn memory_actor(procs: &[Pid], leader: Pid) -> MemoryActor<RegVal, Msg> {
    // Cheap Quorum's legalChange already admits only the leader-region
    // revocation; broadcast regions are static, so the same policy is
    // correct for the combined region set.
    let mut mem = MemoryActor::new(LegalChange::Policy(cheap_quorum::legal_change));
    configure_memory(&mut mem, procs, leader);
    mem
}

const POLL_TAG: u64 = 40;
const TIMEOUT_TAG: u64 = 41;
const RETRY_TAG: u64 = 42;

/// A Fast & Robust process.
pub struct FastRobustActor {
    me: Pid,
    procs: Vec<Pid>,
    leader: Pid,
    client: MemoryClient<RegVal, Msg>,
    cq: CqCore,
    pp: PrefCore,
    poll_every: Duration,
    timeout: Duration,
    retry_every: Duration,
    relayed_panic: bool,
    backup_started: bool,
    decided: Option<Value>,
    /// Which path decided first.
    pub via: Option<Via>,
    /// When this process decided, if it has.
    pub decided_at: Option<Time>,
    timers_armed: bool,
}

impl std::fmt::Debug for FastRobustActor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastRobustActor")
            .field("me", &self.me)
            .field("decided", &self.decided)
            .field("via", &self.via)
            .finish()
    }
}

impl FastRobustActor {
    /// Creates a process. `leader` is both the Cheap Quorum leader and the
    /// initial Robust Backup leader.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        memories: Vec<ActorId>,
        leader: Pid,
        input: Value,
        signer: Signer,
        verifier: SigVerifier,
        poll_every: Duration,
        timeout: Duration,
        retry_every: Duration,
    ) -> FastRobustActor {
        let cq = CqCore::new(
            me,
            procs.clone(),
            memories.clone(),
            leader,
            input,
            signer.clone(),
            verifier.clone(),
        );
        let pp = PrefCore::new(
            me,
            procs.clone(),
            memories,
            Some(leader),
            leader,
            signer,
            verifier,
        );
        FastRobustActor {
            me,
            procs,
            leader,
            client: MemoryClient::new(),
            cq,
            pp,
            poll_every,
            timeout,
            retry_every,
            relayed_panic: false,
            backup_started: false,
            decided: None,
            via: None,
            decided_at: None,
            timers_armed: false,
        }
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.decided
    }

    /// Whether this process entered panic mode.
    pub fn panicked(&self) -> bool {
        self.cq.panicked()
    }

    fn finished(&self) -> bool {
        match self.decided {
            None => false,
            Some(_) => {
                if self.cq.panicked() {
                    self.pp.decision().is_some()
                } else {
                    self.cq.settled()
                }
            }
        }
    }

    fn after_step(&mut self, ctx: &mut Context<'_, Msg>) {
        // Propagate panic exactly once (register write happens in CqCore;
        // the message relay is §7's panic-message optimization).
        if self.cq.panicked() && !self.relayed_panic {
            self.relayed_panic = true;
            for &q in &self.procs.clone() {
                if q != self.me {
                    ctx.send(q, Msg::Panic { who: self.me });
                }
            }
        }
        // Feed the abort value into Preferential Paxos (Figure 6's arrow).
        if !self.backup_started {
            if let Some(ab) = self.cq.abort().cloned() {
                self.backup_started = true;
                self.pp.start(ctx, &mut self.client, ab.value, ab.evidence);
            }
        }
        // Record decisions; Lemma 4.8 lets us assert cross-path agreement.
        let cq_d = self.cq.decision();
        let pp_d = self.pp.decision();
        if self.decided.is_none() {
            if let Some(v) = cq_d {
                self.decided = Some(v);
                self.via = Some(Via::Fast);
            } else if let Some(v) = pp_d {
                self.decided = Some(v);
                self.via = Some(Via::Backup);
            }
            if self.decided.is_some() {
                self.decided_at = Some(ctx.now());
                ctx.mark_decided();
            }
        }
        if let (Some(d), Some(c)) = (self.decided, cq_d) {
            assert_eq!(
                d, c,
                "composition broken: fast path diverged at {}",
                self.me
            );
        }
        if let (Some(d), Some(p)) = (self.decided, pp_d) {
            assert_eq!(d, p, "composition broken: backup diverged at {}", self.me);
        }
    }

    fn arm_timers(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.timers_armed {
            self.timers_armed = true;
            ctx.set_timer(self.poll_every, POLL_TAG);
            ctx.set_timer(self.retry_every, RETRY_TAG);
        }
    }
}

/// One poll tick: drive whichever sub-protocols still need progress.
impl FastRobustActor {
    fn on_poll(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.cq.settled() && self.cq.abort().is_none() {
            self.cq.poll(ctx, &mut self.client);
        }
        if self.backup_started {
            self.pp.poll(ctx, &mut self.client);
        }
        self.after_step(ctx);
    }
}

impl Actor<Msg> for FastRobustActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                self.pp.set_leader(ctx, &mut self.client, self.leader);
                self.cq.start(ctx, &mut self.client);
                self.cq.poll(ctx, &mut self.client);
                self.arm_timers(ctx);
                ctx.set_timer(self.timeout, TIMEOUT_TAG);
                self.after_step(ctx);
            }
            EventKind::Timer { tag: POLL_TAG, .. } => {
                if !self.finished() {
                    self.on_poll(ctx);
                    ctx.set_timer(self.poll_every, POLL_TAG);
                } else {
                    self.timers_armed = false;
                }
            }
            EventKind::Timer { tag: RETRY_TAG, .. } => {
                if !self.finished() {
                    if self.backup_started && self.pp.decision().is_none() {
                        self.pp.poke(ctx, &mut self.client);
                        self.after_step(ctx);
                    }
                    ctx.set_timer(self.retry_every, RETRY_TAG);
                }
            }
            EventKind::Timer {
                tag: TIMEOUT_TAG, ..
            } => {
                if self.cq.decision().is_none() && !self.cq.panicked() {
                    self.cq.panic(ctx, &mut self.client);
                    self.after_step(ctx);
                }
            }
            EventKind::Timer { .. } => {}
            EventKind::Msg {
                msg: Msg::Panic { .. },
                ..
            } => {
                if !self.cq.panicked() {
                    self.cq.panic(ctx, &mut self.client);
                }
                self.arm_timers(ctx);
                self.after_step(ctx);
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                if let Some(c) = self.client.on_wire(ctx, from, wire) {
                    if !self.cq.on_completion(ctx, &mut self.client, c.clone()) {
                        self.pp.on_completion(ctx, &mut self.client, c);
                    }
                    self.after_step(ctx);
                }
            }
            EventKind::Msg { .. } => {}
            EventKind::LeaderChange { leader } => {
                self.pp.set_leader(ctx, &mut self.client, leader);
                self.after_step(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigsim::SigAuthority;
    use simnet::Simulation;

    pub(crate) struct Built {
        pub sim: Simulation<Msg>,
        pub procs: Vec<Pid>,
        pub mems: Vec<ActorId>,
    }

    fn build(n: u32, m: u32, seed: u64, timeout: u64) -> Built {
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        let mut auth = SigAuthority::new(seed ^ 0xF00D);
        for i in 0..n {
            let signer = auth.register(ActorId(i));
            sim.add(FastRobustActor::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                ActorId(0),
                Value(100 + i as u64),
                signer,
                auth.verifier(),
                Duration::from_delays(1),
                Duration::from_delays(timeout),
                Duration::from_delays(120),
            ));
        }
        for _ in 0..m {
            sim.add(memory_actor(&procs, ActorId(0)));
        }
        Built { sim, procs, mems }
    }

    fn decisions(sim: &Simulation<Msg>, procs: &[Pid]) -> Vec<Option<Value>> {
        procs
            .iter()
            .map(|&p| sim.actor_as::<FastRobustActor>(p).unwrap().decision())
            .collect()
    }

    #[test]
    fn common_case_two_delays_no_backup() {
        let mut b = build(3, 3, 1, 60);
        b.sim.run_until(Time::from_delays(59), |s| {
            (0..3).all(|i| {
                s.actor_as::<FastRobustActor>(ActorId(i))
                    .unwrap()
                    .decision()
                    .is_some()
            })
        });
        let ds = decisions(&b.sim, &b.procs);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
        assert_eq!(b.sim.metrics().first_decision_delays(), Some(2.0));
        // Everyone decided on the fast path.
        for &p in &b.procs {
            let a = b.sim.actor_as::<FastRobustActor>(p).unwrap();
            assert_eq!(a.via, Some(Via::Fast));
            assert!(!a.panicked());
        }
    }

    #[test]
    fn leader_crash_before_propose_falls_back_to_backup() {
        let mut b = build(3, 3, 2, 20);
        b.sim.crash_at(ActorId(0), Time::ZERO);
        let tail = [ActorId(1), ActorId(2)];
        // Ω converges on a correct process (the standard liveness
        // assumption for the backup's Paxos).
        b.sim
            .announce_leader(Time::from_delays(60), &tail, ActorId(1));
        b.sim.run_until(Time::from_delays(3000), |s| {
            tail.iter().all(|&p| {
                s.actor_as::<FastRobustActor>(p)
                    .unwrap()
                    .decision()
                    .is_some()
            })
        });
        let ds: Vec<_> = tail
            .iter()
            .map(|&p| b.sim.actor_as::<FastRobustActor>(p).unwrap().decision())
            .collect();
        assert!(ds.iter().all(|d| d.is_some()), "{ds:?}");
        assert_eq!(ds[0], ds[1], "agreement across backup deciders");
        for &p in &tail {
            assert_eq!(
                b.sim.actor_as::<FastRobustActor>(p).unwrap().via,
                Some(Via::Backup)
            );
        }
    }

    #[test]
    fn leader_decides_then_crashes_backup_confirms_same_value() {
        // The composition lemma end-to-end: the leader decides v=100 on the
        // fast path and crashes; followers panic (timeout), abort with
        // leader-signed values, and the backup must decide 100.
        let mut b = build(3, 3, 3, 15);
        b.sim.crash_at(ActorId(0), Time::from_delays(3));
        let tail = [ActorId(1), ActorId(2)];
        b.sim
            .announce_leader(Time::from_delays(60), &tail, ActorId(1));
        b.sim.run_until(Time::from_delays(4000), |s| {
            tail.iter().all(|&p| {
                s.actor_as::<FastRobustActor>(p)
                    .unwrap()
                    .decision()
                    .is_some()
            })
        });
        let ds: Vec<_> = tail
            .iter()
            .map(|&p| b.sim.actor_as::<FastRobustActor>(p).unwrap().decision())
            .collect();
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
    }

    #[test]
    fn silent_byzantine_follower_fast_leader_still_decides() {
        // n = 3 = 2f+1, f = 1: one silent Byzantine follower. The leader
        // still 2-decides; correct follower panics (no unanimity) and the
        // backup confirms the leader's value.
        let mut b = build_with_byzantine(4, 17);
        let correct = [ActorId(0), ActorId(1)];
        b.sim.run_until(Time::from_delays(5000), |s| {
            correct.iter().all(|&p| {
                s.actor_as::<FastRobustActor>(p)
                    .unwrap()
                    .decision()
                    .is_some()
            })
        });
        let ds: Vec<_> = correct
            .iter()
            .map(|&p| b.sim.actor_as::<FastRobustActor>(p).unwrap().decision())
            .collect();
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
    }

    /// n=3 with process 2 replaced by a silent Byzantine.
    fn build_with_byzantine(seed: u64, timeout: u64) -> Built {
        let (n, m) = (3u32, 3u32);
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        let mut auth = SigAuthority::new(seed ^ 0xF00D);
        for i in 0..n {
            let signer = auth.register(ActorId(i));
            if i == 2 {
                sim.add(crate::adversary::SilentActor);
                continue;
            }
            sim.add(FastRobustActor::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                ActorId(0),
                Value(100 + i as u64),
                signer,
                auth.verifier(),
                Duration::from_delays(1),
                Duration::from_delays(timeout),
                Duration::from_delays(120),
            ));
        }
        for _ in 0..m {
            sim.add(memory_actor(&procs, ActorId(0)));
        }
        Built { sim, procs, mems }
    }

    #[test]
    fn asynchrony_triggers_abort_but_agreement_holds() {
        for seed in 0..8 {
            let mut b = build(3, 3, seed, 12);
            // Slow, jittery network violates the timeout assumption.
            b.sim.set_default_delay(simnet::DelayModel::Uniform {
                lo: Duration::from_delays(1),
                hi: Duration::from_delays(6),
            });
            b.sim.run_until(Time::from_delays(30_000), |s| {
                (0..3).all(|i| {
                    s.actor_as::<FastRobustActor>(ActorId(i))
                        .unwrap()
                        .decision()
                        .is_some()
                })
            });
            let ds = decisions(&b.sim, &b.procs);
            let got: Vec<Value> = ds.iter().flatten().copied().collect();
            assert_eq!(got.len(), 3, "seed {seed}: {ds:?}");
            assert!(got.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {ds:?}");
            // Validity (weak): some process's input.
            assert!((100..103).contains(&got[0].0), "seed {seed}");
        }
    }

    #[test]
    fn memory_minority_crash_keeps_fast_path() {
        let mut b = build(3, 5, 9, 60);
        let (m0, m3) = (b.mems[0], b.mems[3]);
        b.sim.crash_at(m0, Time::ZERO);
        b.sim.crash_at(m3, Time::ZERO);
        b.sim.run_until(Time::from_delays(59), |s| {
            (0..3).all(|i| {
                s.actor_as::<FastRobustActor>(ActorId(i))
                    .unwrap()
                    .decision()
                    .is_some()
            })
        });
        let ds = decisions(&b.sim, &b.procs);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
        assert_eq!(b.sim.metrics().first_decision_delays(), Some(2.0));
    }
}
