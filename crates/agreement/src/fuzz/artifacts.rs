//! Timeline artifacts for failing fuzz cases.
//!
//! A shrunk repro pins a violation, but *seeing* the violating schedule
//! is what makes it debuggable: which command was duplicated, which
//! group's failover re-submission raced which commit. This module
//! re-runs a (typically shrunk) scenario with observability recording
//! switched on and renders the run's event stream in every export
//! format [`simnet::obs`] offers — JSONL for grep, Chrome trace-event
//! JSON for Perfetto/`chrome://tracing`, and the self-contained HTML
//! timeline viewer.
//!
//! The re-run is safe *because observability is read-only*: enabling
//! recording never draws randomness or perturbs the schedule, so the
//! traced run reproduces the violating execution bit-for-bit — the
//! timeline shows the actual failure, not a lookalike. The `fuzz`
//! binary writes these artifacts next to each failure it reports.

use crate::harness::{run_sharded_with_events, ShardedScenario};
use simnet::obs;

/// Rendered exports of one scenario's observability stream.
#[derive(Clone, Debug)]
pub struct TimelineArtifacts {
    /// One JSON object per event, newline-delimited.
    pub jsonl: String,
    /// Chrome trace-event JSON (load in Perfetto or `chrome://tracing`).
    pub chrome: String,
    /// Self-contained HTML timeline (no external resources).
    pub html: String,
    /// Number of events recorded.
    pub events: usize,
}

/// Re-runs `sc` with event and span recording enabled and renders the
/// run's timeline in all three export formats. `title` labels the HTML
/// viewer (use the case seed and violation).
pub fn render_timeline(sc: &ShardedScenario, title: &str) -> TimelineArtifacts {
    let mut traced = sc.clone();
    traced.record_events = true;
    traced.record_spans = true;
    let (_report, events) = run_sharded_with_events(&traced);
    render_events(&events, title)
}

/// Renders an already-captured observability stream in all three export
/// formats — for callers that produced the events themselves, like the
/// schedule explorer ([`crate::explore`]) replaying a failing choice
/// vector under its kernel hook.
pub fn render_events(events: &[obs::Event], title: &str) -> TimelineArtifacts {
    TimelineArtifacts {
        jsonl: obs::to_jsonl(events),
        chrome: obs::to_chrome_trace(events),
        html: obs::to_html_timeline(title, events),
        events: events.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{check, Violation};
    use crate::sharded::WorkloadSpec;

    /// The oracle-demo schedule: failover re-submission with session
    /// dedup deliberately disabled — the reintroduced duplicate-commit
    /// bug the fuzz corpus pins (`tests/fuzz_regressions.rs`).
    fn dedup_bug_scenario() -> ShardedScenario {
        let mut sc = ShardedScenario::common_case(4, 3, 3, 33);
        sc.total_cmds = 300;
        sc.workload = WorkloadSpec::Zipf {
            keys: 1024,
            s: 0.99,
        };
        sc.window = 6;
        sc.batch = 2;
        sc.crash_leaders = vec![(0, 15), (2, 31)];
        sc.announce = vec![(0, 1, 70), (2, 1, 90)];
        sc.max_delays = 20_000;
        sc.disable_session_dedup = true;
        sc
    }

    #[test]
    fn shrunk_failing_case_renders_a_timeline_showing_the_duplicate() {
        let sc = dedup_bug_scenario();
        check(&sc).expect_err("oracle missed the injected bug");
        // What the fuzz driver exports: the *shrunk* scenario's timeline.
        let (shrunk, shrunk_violation) = crate::fuzz::shrink(&sc);
        let Violation::Duplicated { id, .. } = shrunk_violation else {
            panic!("expected a duplicated command, got: {shrunk_violation}");
        };
        let art = render_timeline(&shrunk, &format!("seed 33: {shrunk_violation}"));
        assert!(art.events > 0);
        // The duplicated command's lifecycle marks are in the stream:
        // its span appears in the JSONL export...
        let span_line = format!("\"kind\":\"mark\",\"span\":{id},");
        assert!(
            art.jsonl.lines().any(|l| l.contains(&span_line)),
            "duplicated command {id} has no span marks in the JSONL export"
        );
        // ...and the duplication itself is visible: some replica settles
        // the same command's span twice (two decide marks from one
        // actor — one per duplicated log slot). A healthy run has
        // exactly one decide mark per (actor, span).
        let decide_actors: Vec<&str> = art
            .jsonl
            .lines()
            .filter(|l| l.contains(&span_line) && l.contains("\"stage\":3,"))
            .filter_map(|l| {
                let at = l.find("\"actor\":")? + "\"actor\":".len();
                let end = l[at..].find(',')? + at;
                Some(&l[at..end])
            })
            .collect();
        let distinct: std::collections::BTreeSet<&str> = decide_actors.iter().copied().collect();
        assert!(
            decide_actors.len() > distinct.len(),
            "no replica decided command {id} twice: actors {decide_actors:?}"
        );
        // The other exports carry the same stream.
        assert!(art.chrome.contains("\"traceEvents\""));
        assert!(art.html.contains("<html"));
        assert!(art.html.contains("seed 33"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut sc = ShardedScenario::common_case(2, 3, 3, 7);
        sc.total_cmds = 40;
        sc.window = 4;
        let a = render_timeline(&sc, "t");
        let b = render_timeline(&sc, "t");
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.chrome, b.chrome);
        assert_eq!(a.html, b.html);
    }
}
