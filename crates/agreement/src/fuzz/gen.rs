//! Seed → scenario: the fuzzer's generator.
//!
//! Every draw comes from one [`SplitMix64`] stream seeded by the case
//! seed, so a seed fully determines its scenario. The generator is
//! *liveness-aware*: it only emits combinations the service is supposed
//! to survive within the (generous) virtual-time budget it also picks —
//! every leader crash is paired with an Ω announcement, adversaries are
//! confined to Byzantine-mode groups at slots the harness accepts, at
//! most one adversary occupies a group, migrated ranges are disjoint
//! slices of their even-table owner, and partitioned-kernel cases always
//! carry the positive-minimum link delay the lookahead needs. A scenario
//! that stalls anyway is therefore a finding, not generator noise.

use simnet::{DelayModel, Duration, RdmaCost};

use super::SplitMix64;
use crate::harness::ShardedScenario;
use crate::sharded::{GroupMode, KeyRange, RebalanceConfig, ScriptedMigration, WorkloadSpec};

/// Keys in every generated workload; kept fixed so migrated ranges and
/// hot keys are easy to reason about across scenarios.
pub const KEY_SPACE: u64 = 1024;

/// Maps `case_seed` to a complete scenario (deterministically).
pub fn generate(case_seed: u64) -> ShardedScenario {
    let mut rng = SplitMix64::new(case_seed);
    let groups = rng.range(1, 4) as usize;
    let n = rng.range(3, 4) as usize;
    let mut sc = ShardedScenario::common_case(groups, n, 3, case_seed);
    sc.total_cmds = rng.range(40, 160) as usize;
    sc.window = rng.range(2, 8) as usize;
    sc.batch = rng.range(1, 3) as usize;
    sc.workload = match rng.below(3) {
        0 => WorkloadSpec::Uniform { keys: KEY_SPACE },
        1 => WorkloadSpec::Zipf {
            keys: KEY_SPACE,
            s: 0.99,
        },
        _ => WorkloadSpec::HotShard {
            keys: KEY_SPACE,
            hot_key: rng.below(KEY_SPACE),
            hot_permille: rng.range(200, 600) as u32,
        },
    };

    // Links: synchronous, uniformly jittered (lo = 1 delay), or an RDMA
    // verb-cost model — every preset keeps min_delay() positive, so the
    // partitioned kernel's lookahead stays legal under all of them.
    if rng.chance(400) {
        sc.delay = DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(rng.range(2, 4)),
        };
    } else if rng.chance(350) {
        sc.delay = DelayModel::Rdma(match rng.below(3) {
            0 => RdmaCost::baseline(),
            1 => RdmaCost::write_optimized(),
            _ => RdmaCost::congested(),
        });
        // Half the RDMA cases also exercise adaptive doorbell batching.
        if rng.chance(500) {
            sc.adaptive_batch = [4, 8, 16][rng.below(3) as usize];
        }
    }
    if groups > 1 && rng.chance(300) {
        sc.partitions = rng.range(2, groups as u64) as usize;
        sc.threads = 1; // the campaign itself runs single-threaded;
                        // the oracle's sweep re-runs at 2 and 4.
        if matches!(sc.delay, DelayModel::Constant(d) if d < Duration::from_delays(1)) {
            sc.delay = DelayModel::synchronous();
        }
    }

    // Per-group failure modes, then mode-respecting fault timelines.
    sc.group_modes = (0..groups)
        .map(|_| {
            if rng.chance(350) {
                GroupMode::Byzantine
            } else {
                GroupMode::CrashPmp
            }
        })
        .collect();
    // Byzantine pipelining knobs (window 1 without the fast path is the
    // classic engine, bit-identical to pre-pipelining runs — kept in the
    // pool so the fuzzer still exercises the pinned configuration).
    if sc.group_modes.contains(&GroupMode::Byzantine) {
        sc.byz_pipeline_window = [1, 2, 4, 8][rng.below(4) as usize];
        sc.byz_fast_path = rng.chance(500);
    }
    for g in 0..groups {
        match sc.group_modes[g] {
            GroupMode::CrashPmp => {
                // A crashing initial leader, paired with the Ω
                // announcement that restores the group's liveness.
                if rng.chance(250) {
                    let at = rng.range(10, 50);
                    sc.crash_leaders.push((g, at));
                    sc.announce.push((g, 1, at + rng.range(30, 70)));
                }
            }
            GroupMode::Byzantine => {
                // At most one adversary per group — two can push a
                // 3-replica group below its correctness threshold,
                // which would be a liveness non-finding.
                match rng.below(100) {
                    0..=24 => sc.byz_silent.push((g, rng.range(1, n as u64 - 1) as usize)),
                    25..=39 => {
                        // Equivocating initial leader; Ω later elects an
                        // honest successor.
                        sc.byz_equivocators.push((g, 0));
                        sc.announce.push((g, 1, rng.range(60, 120)));
                    }
                    40..=54 => {
                        sc.byz_receipt_forgers
                            .push((g, rng.range(1, n as u64 - 1) as usize));
                    }
                    _ => {}
                }
            }
        }
    }

    // Dynamic routing: scripted migrations racing the faults above, or
    // (exclusively) the automatic rebalancer.
    if groups > 1 && rng.chance(300) {
        let count = rng.range(1, 2);
        let mut used: Vec<usize> = Vec::new();
        for _ in 0..count {
            let from = (0..groups).find(|g| !used.contains(g));
            let Some(from) = from else { break };
            used.push(from);
            // A slice strictly inside `from`'s even version-0 range
            // (same span arithmetic as `RoutingTable::even`), so the
            // range has a single owner at trigger time.
            let span = KEY_SPACE.div_ceil(groups as u64);
            let lo = span * from as u64;
            let hi = (span * (from as u64 + 1)).min(KEY_SPACE);
            let cut_lo = rng.range(lo, hi - 1);
            let cut_hi = rng.range(cut_lo + 1, hi);
            let mut to = rng.below(groups as u64) as usize;
            if to == from {
                to = (to + 1) % groups;
            }
            sc.migrations.push(ScriptedMigration {
                at_delays: rng.range(30, 130),
                range: KeyRange {
                    lo: cut_lo,
                    hi: cut_hi,
                },
                to,
            });
        }
    } else if groups > 1 && rng.chance(200) {
        sc.rebalance = Some(RebalanceConfig {
            check_every_delays: rng.range(30, 60),
            cooldown_delays: rng.range(10, 25),
            hot_group_permille: rng.range(250, 400) as u32,
            hot_key_permille: rng.range(30, 100) as u32,
            min_window_commits: 32,
            min_hold_delays: 120,
        });
    }

    // Paced arrivals (open loop at the router, closed loop per group).
    if rng.chance(200) {
        sc.arrival_rate_per_delay = rng.range(5, 25) as f64 / 100.0;
    }

    sc.max_delays = budget(&sc);
    sc
}

/// A generous virtual-time budget for `sc`: enough that any stall within
/// it indicates a liveness defect rather than a tight clock.
pub fn budget(sc: &ShardedScenario) -> u64 {
    let faults = sc.crash_leaders.len()
        + sc.byz_silent.len()
        + sc.byz_equivocators.len()
        + sc.byz_receipt_forgers.len()
        + sc.migrations.len()
        + usize::from(sc.rebalance.is_some());
    let pacing = if sc.arrival_rate_per_delay > 0.0 {
        (sc.total_cmds as f64 / sc.arrival_rate_per_delay) as u64
    } else {
        0
    };
    30_000 + 15_000 * faults as u64 + pacing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        for seed in 0..64 {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn seeds_change_scenarios() {
        let distinct: std::collections::HashSet<String> =
            (0..32).map(|s| format!("{:?}", generate(s))).collect();
        assert!(distinct.len() > 16, "generator barely varies");
    }

    #[test]
    fn generated_scenarios_respect_harness_preconditions() {
        for seed in 0..512 {
            let sc = generate(seed);
            assert!(sc.window > 0, "seed {seed}: open loop generated");
            for &(g, i) in sc
                .byz_silent
                .iter()
                .chain(&sc.byz_equivocators)
                .chain(&sc.byz_receipt_forgers)
            {
                assert_eq!(sc.group_modes[g], GroupMode::Byzantine, "seed {seed}");
                assert!(i < sc.n, "seed {seed}");
            }
            for &(g, i) in &sc.byz_receipt_forgers {
                assert!(i != 0, "seed {seed}: forger at leader slot of {g}");
            }
            assert!(
                [1, 2, 4, 8].contains(&sc.byz_pipeline_window),
                "seed {seed}: bad pipeline window {}",
                sc.byz_pipeline_window
            );
            if !sc.group_modes.contains(&GroupMode::Byzantine) {
                assert_eq!(sc.byz_pipeline_window, 1, "seed {seed}");
                assert!(!sc.byz_fast_path, "seed {seed}");
            }
            for &(g, _) in &sc.crash_leaders {
                assert_eq!(sc.group_modes[g], GroupMode::CrashPmp, "seed {seed}");
                assert!(
                    sc.announce.iter().any(|&(ag, _, _)| ag == g),
                    "seed {seed}: crash without announcement in group {g}"
                );
            }
            if sc.partitions > 1 {
                assert!(
                    sc.delay.min_delay() > Duration::ZERO,
                    "seed {seed}: partitioned case without lookahead"
                );
            }
            if sc.adaptive_batch > 0 {
                assert!(
                    matches!(sc.delay, DelayModel::Rdma(_)),
                    "seed {seed}: adaptive batching drawn without an RDMA cost model"
                );
            }
            assert!(
                sc.migrations.is_empty() || sc.rebalance.is_none(),
                "seed {seed}: scripted migrations and rebalancer together"
            );
            for m in &sc.migrations {
                assert!(m.range.lo < m.range.hi && m.range.hi <= KEY_SPACE);
                assert!(m.to < sc.groups);
            }
        }
    }
}
