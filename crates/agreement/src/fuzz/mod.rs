//! Deterministic scenario fuzzer for the sharded service.
//!
//! The sharded harness composes every feature of the reproduction —
//! multi-group topologies, crash and Byzantine failure modes, adversary
//! actors, jittered links, scripted migrations racing failovers,
//! automatic rebalancing, paced arrivals, the partitioned parallel
//! kernel — and the space of their *combinations* is far larger than any
//! hand-written test matrix. This module walks that space mechanically:
//!
//! 1. [`generate`] maps a case seed to a whole [`ShardedScenario`] —
//!    topology, per-group modes, fault timelines, adversary placements,
//!    workload mix — drawn from a [`SplitMix64`] stream so the same seed
//!    always produces byte-identical scenarios.
//! 2. [`oracle::check`] runs the scenario and audits the report against
//!    the service's safety contract: nothing lost, nothing duplicated,
//!    no per-key reordering, no replica divergence, no cross-group
//!    leakage — plus (sampled) determinism replays and worker-thread
//!    sweeps on the partitioned kernel.
//! 3. On a violation, [`shrink::shrink`] delta-debugs the scenario down
//!    to a minimal still-failing case and [`repro::to_literal`] renders
//!    it as a Rust expression pasteable into a regression test
//!    (`tests/fuzz_regressions.rs` holds the corpus);
//!    [`artifacts::render_timeline`] re-runs the shrunk case with
//!    tracing on and exports its timeline (JSONL / Chrome trace / HTML)
//!    so the violating schedule can be inspected visually.
//!
//! [`run_campaign`] drives the loop over a seed range; the
//! `fuzz` binary in `crates/bench` wraps it for the command line and CI.

pub mod artifacts;
pub mod gen;
pub mod oracle;
pub mod repro;
pub mod shrink;

pub use artifacts::{render_timeline, TimelineArtifacts};
pub use gen::generate;
pub use oracle::{check, check_deep, DeepChecks, Violation};
pub use repro::to_literal;
pub use shrink::{fault_count, shrink};

use crate::harness::ShardedScenario;

/// SplitMix64, the fuzzer's deterministic bit source. Self-contained so
/// generator draws can never be perturbed by changes to the workload
/// module's private stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded by `seed` (every seed is valid, including 0).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed ^ 0x5CE1_4A11_0F0E_57ED,
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, n)`; `n = 0` returns 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// A uniform draw in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `permille / 1000`.
    pub fn chance(&mut self, permille: u64) -> bool {
        self.below(1000) < permille
    }
}

/// Campaign parameters: a contiguous seed range plus sampling cadences
/// for the expensive deep checks.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// First case seed (cases run over `start_seed .. start_seed + cases`).
    pub start_seed: u64,
    /// Number of scenarios to generate and check.
    pub cases: u64,
    /// Shrink failures to minimal scenarios (off = report raw failures;
    /// useful when a campaign is purely a smoke gate).
    pub shrink: bool,
    /// Replay every k-th case a second time and require an identical
    /// report (0 disables the determinism replay).
    pub replay_every: u64,
    /// Re-run every k-th *partitioned* case at 2 and 4 worker threads and
    /// require bit-identical reports (0 disables the sweep).
    pub sweep_every: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            start_seed: 0,
            cases: 256,
            shrink: true,
            replay_every: 16,
            sweep_every: 8,
        }
    }
}

/// One failing case: the raw scenario, its shrunk form, and a pasteable
/// repro.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseFailure {
    /// The case seed that produced the failure ([`generate`] replays it).
    pub case_seed: u64,
    /// The violation the oracle reported on the raw scenario.
    pub violation: Violation,
    /// The generated scenario as checked.
    pub scenario: ShardedScenario,
    /// The minimal still-failing scenario (equals `scenario` when
    /// shrinking is disabled or removed nothing).
    pub shrunk: ShardedScenario,
    /// The violation the *shrunk* scenario exhibits (shrinking accepts
    /// any violation, so it may differ from the original).
    pub shrunk_violation: Violation,
    /// Rust expression rebuilding `shrunk`, for a regression test.
    pub repro: String,
}

/// Aggregate outcome of a campaign: failures plus coverage counters
/// (how often each scenario dimension was actually exercised).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignReport {
    /// Scenarios checked.
    pub cases: u64,
    /// Failing cases, in seed order.
    pub failures: Vec<CaseFailure>,
    /// Scenarios with at least one leader crash.
    pub crash_cases: u64,
    /// Scenarios with at least one Byzantine-mode group.
    pub byz_cases: u64,
    /// Scenarios with at least one injected adversary actor.
    pub adversary_cases: u64,
    /// Scenarios with scripted migrations.
    pub migration_cases: u64,
    /// Scenarios running the automatic rebalancer.
    pub rebalance_cases: u64,
    /// Scenarios with paced (open-arrival) workloads.
    pub paced_cases: u64,
    /// Scenarios on the partitioned parallel kernel.
    pub partitioned_cases: u64,
    /// Scenarios with jittered links.
    pub jittered_cases: u64,
    /// Determinism replays performed.
    pub replays: u64,
    /// Worker-thread sweeps performed.
    pub sweeps: u64,
    /// Total client commands committed across all passing cases.
    pub commands_committed: u64,
}

/// Runs `cfg.cases` generated scenarios through the oracle, shrinking
/// each failure. Fully deterministic: the same config always yields the
/// same report.
pub fn run_campaign(cfg: &FuzzConfig) -> CampaignReport {
    let mut report = CampaignReport::default();
    for case in 0..cfg.cases {
        let case_seed = cfg.start_seed + case;
        let sc = generate(case_seed);
        report.cases += 1;
        report.crash_cases += u64::from(!sc.crash_leaders.is_empty());
        report.byz_cases += u64::from(
            sc.group_modes
                .contains(&crate::sharded::GroupMode::Byzantine),
        );
        report.adversary_cases += u64::from(
            !sc.byz_silent.is_empty()
                || !sc.byz_equivocators.is_empty()
                || !sc.byz_receipt_forgers.is_empty(),
        );
        report.migration_cases += u64::from(!sc.migrations.is_empty());
        report.rebalance_cases += u64::from(sc.rebalance.is_some());
        report.paced_cases += u64::from(sc.arrival_rate_per_delay > 0.0);
        report.partitioned_cases += u64::from(sc.partitions > 1);
        report.jittered_cases += u64::from(!matches!(sc.delay, simnet::DelayModel::Constant(_)));
        let deep = DeepChecks {
            replay: cfg.replay_every > 0 && case % cfg.replay_every == 0,
            thread_sweep: cfg.sweep_every > 0 && case % cfg.sweep_every == 0,
        };
        report.replays += u64::from(deep.replay);
        report.sweeps += u64::from(deep.thread_sweep && sc.partitions > 1);
        match check_deep(&sc, deep) {
            Ok(run) => report.commands_committed += run.committed as u64,
            Err(violation) => {
                let (shrunk, shrunk_violation) = if cfg.shrink {
                    shrink(&sc)
                } else {
                    (sc.clone(), violation.clone())
                };
                let repro = to_literal(&shrunk);
                report.failures.push(CaseFailure {
                    case_seed,
                    violation,
                    scenario: sc,
                    shrunk,
                    shrunk_violation,
                    repro,
                });
            }
        }
    }
    report
}
