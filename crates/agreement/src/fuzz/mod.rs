//! Deterministic scenario fuzzer for the sharded service.
//!
//! The sharded harness composes every feature of the reproduction —
//! multi-group topologies, crash and Byzantine failure modes, adversary
//! actors, jittered links, scripted migrations racing failovers,
//! automatic rebalancing, paced arrivals, the partitioned parallel
//! kernel — and the space of their *combinations* is far larger than any
//! hand-written test matrix. This module walks that space mechanically:
//!
//! 1. [`generate`] maps a case seed to a whole [`ShardedScenario`] —
//!    topology, per-group modes, fault timelines, adversary placements,
//!    workload mix — drawn from a [`SplitMix64`] stream so the same seed
//!    always produces byte-identical scenarios.
//! 2. [`oracle::check`] runs the scenario and audits the report against
//!    the service's safety contract: nothing lost, nothing duplicated,
//!    no per-key reordering, no replica divergence, no cross-group
//!    leakage — plus (sampled) determinism replays and worker-thread
//!    sweeps on the partitioned kernel.
//! 3. On a violation, [`shrink::shrink`] delta-debugs the scenario down
//!    to a minimal still-failing case and [`repro::to_literal`] renders
//!    it as a Rust expression pasteable into a regression test
//!    (`tests/fuzz_regressions.rs` holds the corpus);
//!    [`artifacts::render_timeline`] re-runs the shrunk case with
//!    tracing on and exports its timeline (JSONL / Chrome trace / HTML)
//!    so the violating schedule can be inspected visually.
//!
//! [`run_campaign`] drives the loop over a seed range; the
//! `fuzz` binary in `crates/bench` wraps it for the command line and CI.

pub mod artifacts;
pub mod gen;
pub mod oracle;
pub mod repro;
pub mod shrink;

pub use artifacts::{render_events, render_timeline, TimelineArtifacts};
pub use gen::generate;
pub use oracle::{audit_report, check, check_deep, DeepChecks, Violation};
pub use repro::to_literal;
pub use shrink::{fault_count, shrink, shrink_with_budget, ShrinkOutcome};

use crate::harness::ShardedScenario;

/// SplitMix64, the fuzzer's deterministic bit source. Self-contained so
/// generator draws can never be perturbed by changes to the workload
/// module's private stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded by `seed` (every seed is valid, including 0).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed ^ 0x5CE1_4A11_0F0E_57ED,
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, n)`; `n = 0` returns 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// A uniform draw in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `permille / 1000`.
    pub fn chance(&mut self, permille: u64) -> bool {
        self.below(1000) < permille
    }
}

/// Campaign parameters: a contiguous seed range plus sampling cadences
/// for the expensive deep checks.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// First case seed (cases run over `start_seed .. start_seed + cases`).
    pub start_seed: u64,
    /// Number of scenarios to generate and check.
    pub cases: u64,
    /// Shrink failures to minimal scenarios (off = report raw failures;
    /// useful when a campaign is purely a smoke gate).
    pub shrink: bool,
    /// Replay every k-th case a second time and require an identical
    /// report (0 disables the determinism replay).
    pub replay_every: u64,
    /// Re-run every k-th *partitioned* case at 2 and 4 worker threads and
    /// require bit-identical reports (0 disables the sweep).
    pub sweep_every: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            start_seed: 0,
            cases: 256,
            shrink: true,
            replay_every: 16,
            sweep_every: 8,
        }
    }
}

/// One failing case: the raw scenario, its shrunk form, and a pasteable
/// repro.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseFailure {
    /// The case seed that produced the failure ([`generate`] replays it).
    pub case_seed: u64,
    /// The violation the oracle reported on the raw scenario.
    pub violation: Violation,
    /// The generated scenario as checked.
    pub scenario: ShardedScenario,
    /// The minimal still-failing scenario (equals `scenario` when
    /// shrinking is disabled or removed nothing).
    pub shrunk: ShardedScenario,
    /// The violation the *shrunk* scenario exhibits (shrinking accepts
    /// any violation, so it may differ from the original).
    pub shrunk_violation: Violation,
    /// Rust expression rebuilding `shrunk`, for a regression test.
    pub repro: String,
    /// Whether shrinking this failure ran out of its candidate budget
    /// before reaching a fixed point (`shrunk` may not be minimal).
    pub shrink_budget_exhausted: bool,
}

/// Aggregate outcome of a campaign: failures plus coverage counters
/// (how often each scenario dimension was actually exercised).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignReport {
    /// Scenarios checked.
    pub cases: u64,
    /// Failing cases, in seed order.
    pub failures: Vec<CaseFailure>,
    /// Scenarios with at least one leader crash.
    pub crash_cases: u64,
    /// Scenarios with at least one Byzantine-mode group.
    pub byz_cases: u64,
    /// Scenarios with at least one injected adversary actor.
    pub adversary_cases: u64,
    /// Scenarios with scripted migrations.
    pub migration_cases: u64,
    /// Scenarios running the automatic rebalancer.
    pub rebalance_cases: u64,
    /// Scenarios with paced (open-arrival) workloads.
    pub paced_cases: u64,
    /// Scenarios on the partitioned parallel kernel.
    pub partitioned_cases: u64,
    /// Scenarios with jittered links.
    pub jittered_cases: u64,
    /// Determinism replays performed.
    pub replays: u64,
    /// Worker-thread sweeps performed.
    pub sweeps: u64,
    /// Total client commands committed across all passing cases.
    pub commands_committed: u64,
    /// Failures whose shrink ran out of budget before a fixed point —
    /// an infrastructure failure even in non-strict campaigns (see
    /// [`campaign_exit_code`]).
    pub shrink_budget_exhausted: u64,
}

/// Runs `cfg.cases` generated scenarios through the oracle, shrinking
/// each failure. Fully deterministic: the same config always yields the
/// same report.
pub fn run_campaign(cfg: &FuzzConfig) -> CampaignReport {
    let mut report = CampaignReport::default();
    for case in 0..cfg.cases {
        let case_seed = cfg.start_seed + case;
        let sc = generate(case_seed);
        report.cases += 1;
        report.crash_cases += u64::from(!sc.crash_leaders.is_empty());
        report.byz_cases += u64::from(
            sc.group_modes
                .contains(&crate::sharded::GroupMode::Byzantine),
        );
        report.adversary_cases += u64::from(
            !sc.byz_silent.is_empty()
                || !sc.byz_equivocators.is_empty()
                || !sc.byz_receipt_forgers.is_empty(),
        );
        report.migration_cases += u64::from(!sc.migrations.is_empty());
        report.rebalance_cases += u64::from(sc.rebalance.is_some());
        report.paced_cases += u64::from(sc.arrival_rate_per_delay > 0.0);
        report.partitioned_cases += u64::from(sc.partitions > 1);
        report.jittered_cases += u64::from(!matches!(sc.delay, simnet::DelayModel::Constant(_)));
        let deep = DeepChecks {
            replay: cfg.replay_every > 0 && case % cfg.replay_every == 0,
            thread_sweep: cfg.sweep_every > 0 && case % cfg.sweep_every == 0,
        };
        report.replays += u64::from(deep.replay);
        report.sweeps += u64::from(deep.thread_sweep && sc.partitions > 1);
        match check_deep(&sc, deep) {
            Ok(run) => report.commands_committed += run.committed as u64,
            Err(violation) => {
                let (shrunk, shrunk_violation, budget_exhausted) = if cfg.shrink {
                    let out = shrink_with_budget(&sc, 200);
                    (out.scenario, out.violation, out.budget_exhausted)
                } else {
                    (sc.clone(), violation.clone(), false)
                };
                report.shrink_budget_exhausted += u64::from(budget_exhausted);
                let repro = to_literal(&shrunk);
                report.failures.push(CaseFailure {
                    case_seed,
                    violation,
                    scenario: sc,
                    shrunk,
                    shrunk_violation,
                    repro,
                    shrink_budget_exhausted: budget_exhausted,
                });
            }
        }
    }
    report
}

/// Maps a campaign outcome to the `fuzz` bin's process exit code:
///
/// * `0` — clean, or violations found in a non-strict campaign with
///   every shrink reaching a fixed point;
/// * `1` — violations in a strict campaign;
/// * `2` — shrinking itself failed (a shrink budget expired before a
///   fixed point), in any campaign mode. The shrinker's "minimal
///   scenario" claim is unreliable, so this is an infrastructure
///   failure, not a mere finding — unless strict violations (code 1)
///   already dominate.
pub fn campaign_exit_code(strict: bool, report: &CampaignReport) -> u8 {
    if strict && !report.failures.is_empty() {
        1
    } else if report.shrink_budget_exhausted > 0 {
        2
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exit-code contract pinned (ISSUE 9 satellite): shrink-budget
    /// exhaustion is non-zero even when the campaign is not strict.
    #[test]
    fn exit_codes_are_pinned() {
        let clean = CampaignReport::default();
        assert_eq!(campaign_exit_code(false, &clean), 0);
        assert_eq!(campaign_exit_code(true, &clean), 0);

        let sc = generate(0);
        let failure = CaseFailure {
            case_seed: 0,
            violation: Violation::CrossGroupLeak,
            scenario: sc.clone(),
            shrunk: sc,
            shrunk_violation: Violation::CrossGroupLeak,
            repro: String::new(),
            shrink_budget_exhausted: false,
        };
        let mut failing = CampaignReport::default();
        failing.failures.push(failure.clone());
        assert_eq!(campaign_exit_code(false, &failing), 0);
        assert_eq!(campaign_exit_code(true, &failing), 1);

        let mut exhausted = CampaignReport::default();
        exhausted.failures.push(CaseFailure {
            shrink_budget_exhausted: true,
            ..failure
        });
        exhausted.shrink_budget_exhausted = 1;
        assert_eq!(campaign_exit_code(false, &exhausted), 2);
        // Strict violations dominate the shrink-infrastructure code.
        assert_eq!(campaign_exit_code(true, &exhausted), 1);
    }

    /// A zero shrink budget must flag exhaustion (the scenario is the
    /// historical dedup bug, so candidates are pending when the budget
    /// dies; `tests/fuzz_regressions.rs` covers the fixed-point side).
    #[test]
    fn shrink_budget_exhaustion_is_reported() {
        let mut sc = crate::harness::ShardedScenario::common_case(4, 3, 3, 33);
        sc.total_cmds = 300;
        sc.workload = crate::sharded::WorkloadSpec::Zipf {
            keys: 1024,
            s: 0.99,
        };
        sc.window = 6;
        sc.batch = 2;
        sc.crash_leaders = vec![(0, 15), (2, 31)];
        sc.announce = vec![(0, 1, 70), (2, 1, 90)];
        sc.max_delays = 20_000;
        sc.disable_session_dedup = true;
        let out = shrink_with_budget(&sc, 0);
        assert!(out.budget_exhausted, "zero budget must report exhaustion");
    }
}
