//! The fuzzer's oracle: runs a scenario and audits the report against
//! the service's safety contract.
//!
//! Everything here is stated over the *committed logs* (plus the
//! harness's own invariant flags), so the oracle is independent of how
//! the run was scheduled:
//!
//! - **Nothing lost** — every client command id `1..=total_cmds`
//!   appears in some group's log within the (generous) budget.
//! - **Nothing duplicated** — no client id appears twice across all
//!   logs (exactly-once, the session-dedup contract).
//! - **No per-key reordering** — two same-key commands separated by at
//!   least a full closed-loop window are causally ordered (the earlier
//!   one was confirmed before the later was submitted), so their log
//!   order must match id order. Same-key commands *within* one window
//!   are concurrent — any order linearizes — and are not constrained.
//! - **Replica agreement & partition respect** — the report's
//!   `all_logs_agree` / `no_cross_group_leak` flags hold.
//! - **Determinism** (sampled) — replaying the same scenario yields a
//!   bit-identical report, and on the partitioned kernel the worker
//!   thread count never changes the run.
//!
//! The per-key order check is skipped under dynamic routing: a migration
//! replays held commands at the destination, which re-orders histories
//! across the seal/install boundary by design; exactly-once and the leak
//! check still apply there.

use std::collections::BTreeMap;
use std::fmt;

use crate::harness::{run_sharded, ShardedRunReport, ShardedScenario};
use crate::sharded::{group_of_key, sample_keys, GroupMode};

/// A safety-contract violation found by the oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The run ended inside its budget with commands never committed.
    Stalled {
        /// Unique commands committed.
        committed: usize,
        /// Commands submitted.
        total: usize,
    },
    /// Some replica's log diverged from its group's longest log.
    LogsDiverged {
        /// The offending group.
        group: usize,
    },
    /// A client command id appears more than once across the logs.
    Duplicated {
        /// The duplicated command id.
        id: u64,
        /// The group whose log holds the second occurrence.
        group: usize,
    },
    /// A command id vanished even though the report claims completion.
    Lost {
        /// The missing command id.
        id: u64,
    },
    /// A committed command landed in a group the routing does not map
    /// it to.
    CrossGroupLeak,
    /// Two same-key commands separated by a full window committed in
    /// the wrong order.
    PerKeyReorder {
        /// The shared key.
        key: u64,
        /// The group whose log shows the inversion.
        group: usize,
        /// The earlier (smaller) command id.
        earlier: u64,
        /// The later command id, found ahead of `earlier` in the log.
        later: u64,
    },
    /// Byzantine suppression counters are nonzero in an all-crash run.
    PhantomByzActivity,
    /// Re-running the identical scenario produced a different report.
    NondeterministicReplay,
    /// A partitioned run changed under a different worker-thread count.
    ThreadSweepDiverged {
        /// The thread count whose report diverged from single-threaded.
        threads: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Violation::Stalled { committed, total } => {
                write!(
                    f,
                    "stalled: {committed}/{total} commands committed in budget"
                )
            }
            Violation::LogsDiverged { group } => {
                write!(f, "replica logs diverged in group {group}")
            }
            Violation::Duplicated { id, group } => {
                write!(
                    f,
                    "command {id} committed twice (second copy in group {group})"
                )
            }
            Violation::Lost { id } => write!(f, "command {id} lost"),
            Violation::CrossGroupLeak => write!(f, "command committed in a wrong group"),
            Violation::PerKeyReorder {
                key,
                group,
                earlier,
                later,
            } => write!(
                f,
                "key {key}: command {later} committed before {earlier} in group {group} \
                 despite a full-window separation"
            ),
            Violation::PhantomByzActivity => {
                write!(
                    f,
                    "Byzantine suppression counters nonzero in an all-crash run"
                )
            }
            Violation::NondeterministicReplay => {
                write!(f, "same seed, different run")
            }
            Violation::ThreadSweepDiverged { threads } => {
                write!(f, "partitioned run changed at {threads} worker threads")
            }
        }
    }
}

/// Which sampled (expensive) checks [`check_deep`] performs on top of
/// the single-run audit.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeepChecks {
    /// Re-run the scenario and require a bit-identical report.
    pub replay: bool,
    /// On partitioned scenarios, re-run at 2 and 4 worker threads and
    /// require bit-identical reports.
    pub thread_sweep: bool,
}

/// Runs `sc` once and audits the report. `Ok` carries the report so
/// callers can aggregate statistics.
pub fn check(sc: &ShardedScenario) -> Result<ShardedRunReport, Violation> {
    let r = run_sharded(sc);
    audit_report(sc, &r)?;
    Ok(r)
}

/// [`check`] plus the sampled determinism checks in `deep`.
pub fn check_deep(sc: &ShardedScenario, deep: DeepChecks) -> Result<ShardedRunReport, Violation> {
    let r = check(sc)?;
    if deep.replay && run_sharded(sc) != r {
        return Err(Violation::NondeterministicReplay);
    }
    if deep.thread_sweep && sc.partitions > 1 {
        for threads in [2usize, 4] {
            let mut swept = sc.clone();
            swept.threads = threads;
            if run_sharded(&swept) != r {
                return Err(Violation::ThreadSweepDiverged { threads });
            }
        }
    }
    Ok(r)
}

/// Whether `v` is a client command id of this run (ids are dense from 1;
/// no-op fillers, migration control entries, and Byzantine junk values
/// all live far outside the dense range).
fn is_client_id(v: u64, total: usize) -> bool {
    v >= 1 && v <= total as u64
}

/// Audits one report against the safety contract without re-running
/// anything — the single-run half of [`check`], exposed so callers that
/// already hold a report (the schedule explorer audits every explored
/// interleaving) can reuse the exact same contract.
pub fn audit_report(sc: &ShardedScenario, r: &ShardedRunReport) -> Result<(), Violation> {
    for (g, group) in r.groups.iter().enumerate() {
        if !group.logs_agree {
            return Err(Violation::LogsDiverged { group: g });
        }
    }

    // Exactly-once across the whole service.
    let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
    for (g, group) in r.groups.iter().enumerate() {
        for &v in &group.log {
            if is_client_id(v.0, sc.total_cmds) && seen.insert(v.0, g).is_some() {
                return Err(Violation::Duplicated { id: v.0, group: g });
            }
        }
    }

    if !r.all_committed {
        return Err(Violation::Stalled {
            committed: r.committed,
            total: sc.total_cmds,
        });
    }
    for id in 1..=sc.total_cmds as u64 {
        if !seen.contains_key(&id) {
            return Err(Violation::Lost { id });
        }
    }

    if !r.no_cross_group_leak {
        return Err(Violation::CrossGroupLeak);
    }

    if sc.group_modes.iter().all(|&m| m == GroupMode::CrashPmp)
        && (r.equivocations_blocked != 0
            || r.byz_receipts_rejected != 0
            || r.byz_unconfirmed_claims != 0
            || r.byz_fast_commits != 0
            || r.byz_fast_confirms != 0)
    {
        return Err(Violation::PhantomByzActivity);
    }

    if !sc.dynamic_routing() {
        per_key_order(sc, r)?;
    }
    Ok(())
}

/// The per-key order check (static routing only; see the module doc).
fn per_key_order(sc: &ShardedScenario, r: &ShardedRunReport) -> Result<(), Violation> {
    let keys = sample_keys(&sc.workload, sc.seed, sc.total_cmds);
    // Submission position of each command within its group's backlog
    // (backlogs are cut in global id order under the static key hash, so
    // per-group position is just an occurrence count).
    let mut pos: BTreeMap<u64, usize> = BTreeMap::new();
    let mut next_pos = vec![0usize; sc.groups];
    for id in 1..=sc.total_cmds as u64 {
        let g = group_of_key(keys[id as usize - 1], sc.groups);
        pos.insert(id, next_pos[g]);
        next_pos[g] += 1;
    }
    for (g, group) in r.groups.iter().enumerate() {
        // Per key, the ids committed in log order.
        let mut by_key: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for &v in &group.log {
            if is_client_id(v.0, sc.total_cmds) {
                by_key.entry(keys[v.0 as usize - 1]).or_default().push(v.0);
            }
        }
        for (key, ids) in by_key {
            for (i, &later) in ids.iter().enumerate() {
                for &earlier in &ids[i + 1..] {
                    // `earlier` appears *after* `later` in the log; that
                    // is only legal while they were concurrently in
                    // flight, i.e. within one closed-loop window.
                    if earlier < later && pos[&later].saturating_sub(pos[&earlier]) >= sc.window {
                        return Err(Violation::PerKeyReorder {
                            key,
                            group: g,
                            earlier,
                            later,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}
