//! Repro emission: render a scenario as a Rust expression.
//!
//! A shrunk failing scenario is only useful if it survives the fuzzing
//! session, so [`to_literal`] prints a self-contained block expression
//! that rebuilds it — start from `common_case`, assign every field that
//! differs from the defaults, yield the scenario. Paste the block into
//! `tests/fuzz_regressions.rs`, feed it to `fuzz::check`, and the
//! failure is pinned forever. The expression expects these imports:
//!
//! ```text
//! use agreement::harness::ShardedScenario;
//! use agreement::sharded::{GroupMode, KeyRange, RebalanceConfig,
//!                          ScriptedMigration, WorkloadSpec};
//! use simnet::{DelayModel, Duration, RdmaCost};
//! ```

use std::fmt::Write as _;

use simnet::DelayModel;

use crate::harness::ShardedScenario;
use crate::sharded::WorkloadSpec;

/// The `common_case` baseline `sc` would diff against (same topology and
/// seed, every other field at its default).
pub fn scenario_defaults(sc: &ShardedScenario) -> ShardedScenario {
    ShardedScenario::common_case(sc.groups, sc.n, sc.m, sc.seed)
}

/// Renders `sc` as a block expression rebuilding it (see module doc).
pub fn to_literal(sc: &ShardedScenario) -> String {
    let d = scenario_defaults(sc);
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "    let mut sc = ShardedScenario::common_case({}, {}, {}, {});",
        sc.groups, sc.n, sc.m, sc.seed
    );
    if sc.total_cmds != d.total_cmds {
        let _ = writeln!(s, "    sc.total_cmds = {};", sc.total_cmds);
    }
    if sc.workload != d.workload {
        let _ = writeln!(s, "    sc.workload = {};", workload(&sc.workload));
    }
    if sc.window != d.window {
        let _ = writeln!(s, "    sc.window = {};", sc.window);
    }
    if sc.batch != d.batch {
        let _ = writeln!(s, "    sc.batch = {};", sc.batch);
    }
    if sc.adaptive_batch != d.adaptive_batch {
        let _ = writeln!(s, "    sc.adaptive_batch = {};", sc.adaptive_batch);
    }
    if sc.delay != d.delay {
        let _ = writeln!(s, "    sc.delay = {};", delay(&sc.delay));
    }
    if sc.partitions != d.partitions {
        let _ = writeln!(s, "    sc.partitions = {};", sc.partitions);
    }
    if sc.threads != d.threads {
        let _ = writeln!(s, "    sc.threads = {};", sc.threads);
    }
    if sc.group_modes != d.group_modes {
        let modes: Vec<String> = sc
            .group_modes
            .iter()
            .map(|m| format!("GroupMode::{m:?}"))
            .collect();
        let _ = writeln!(s, "    sc.group_modes = vec![{}];", modes.join(", "));
    }
    if sc.crash_leaders != d.crash_leaders {
        let _ = writeln!(s, "    sc.crash_leaders = vec!{:?};", sc.crash_leaders);
    }
    if sc.announce != d.announce {
        let _ = writeln!(s, "    sc.announce = vec!{:?};", sc.announce);
    }
    if sc.byz_silent != d.byz_silent {
        let _ = writeln!(s, "    sc.byz_silent = vec!{:?};", sc.byz_silent);
    }
    if sc.byz_equivocators != d.byz_equivocators {
        let _ = writeln!(
            s,
            "    sc.byz_equivocators = vec!{:?};",
            sc.byz_equivocators
        );
    }
    if sc.byz_receipt_forgers != d.byz_receipt_forgers {
        let _ = writeln!(
            s,
            "    sc.byz_receipt_forgers = vec!{:?};",
            sc.byz_receipt_forgers
        );
    }
    if sc.byz_pipeline_window != d.byz_pipeline_window {
        let _ = writeln!(
            s,
            "    sc.byz_pipeline_window = {};",
            sc.byz_pipeline_window
        );
    }
    if sc.byz_fast_path != d.byz_fast_path {
        let _ = writeln!(s, "    sc.byz_fast_path = {};", sc.byz_fast_path);
    }
    if sc.migrations != d.migrations {
        let migs: Vec<String> = sc
            .migrations
            .iter()
            .map(|m| {
                format!(
                    "ScriptedMigration {{ at_delays: {}, range: KeyRange {{ lo: {}, hi: {} }}, \
                     to: {} }}",
                    m.at_delays, m.range.lo, m.range.hi, m.to
                )
            })
            .collect();
        let _ = writeln!(s, "    sc.migrations = vec![{}];", migs.join(", "));
    }
    if sc.rebalance != d.rebalance {
        match &sc.rebalance {
            None => {
                let _ = writeln!(s, "    sc.rebalance = None;");
            }
            Some(cfg) => {
                let _ = writeln!(
                    s,
                    "    sc.rebalance = Some(RebalanceConfig {{ check_every_delays: {}, \
                     cooldown_delays: {}, hot_group_permille: {}, hot_key_permille: {}, \
                     min_window_commits: {}, min_hold_delays: {} }});",
                    cfg.check_every_delays,
                    cfg.cooldown_delays,
                    cfg.hot_group_permille,
                    cfg.hot_key_permille,
                    cfg.min_window_commits,
                    cfg.min_hold_delays
                );
            }
        }
    }
    if sc.range_routing != d.range_routing {
        let _ = writeln!(s, "    sc.range_routing = {};", sc.range_routing);
    }
    if sc.arrival_rate_per_delay != d.arrival_rate_per_delay {
        let _ = writeln!(
            s,
            "    sc.arrival_rate_per_delay = {:?};",
            sc.arrival_rate_per_delay
        );
    }
    if sc.disable_session_dedup != d.disable_session_dedup {
        let _ = writeln!(
            s,
            "    sc.disable_session_dedup = {};",
            sc.disable_session_dedup
        );
    }
    if sc.max_delays != d.max_delays {
        let _ = writeln!(s, "    sc.max_delays = {};", sc.max_delays);
    }
    let _ = writeln!(s, "    sc");
    s.push('}');
    s
}

fn workload(w: &WorkloadSpec) -> String {
    match *w {
        WorkloadSpec::Uniform { keys } => format!("WorkloadSpec::Uniform {{ keys: {keys} }}"),
        WorkloadSpec::Zipf { keys, s } => {
            format!("WorkloadSpec::Zipf {{ keys: {keys}, s: {s:?} }}")
        }
        WorkloadSpec::HotShard {
            keys,
            hot_key,
            hot_permille,
        } => format!(
            "WorkloadSpec::HotShard {{ keys: {keys}, hot_key: {hot_key}, \
             hot_permille: {hot_permille} }}"
        ),
        WorkloadSpec::HotSet {
            keys,
            ref hot_keys,
            hot_permille,
        } => format!(
            "WorkloadSpec::HotSet {{ keys: {keys}, hot_keys: vec!{hot_keys:?}, \
             hot_permille: {hot_permille} }}"
        ),
    }
}

/// A `Duration` expression; whole-delay values print via `from_delays`,
/// anything else falls back to raw ticks.
fn dur(d: simnet::Duration) -> String {
    if d.0.is_multiple_of(simnet::TICKS_PER_DELAY) {
        format!("Duration::from_delays({})", d.0 / simnet::TICKS_PER_DELAY)
    } else {
        format!("Duration({})", d.0)
    }
}

fn delay(d: &DelayModel) -> String {
    match d {
        DelayModel::Constant(c) => format!("DelayModel::Constant({})", dur(*c)),
        DelayModel::Uniform { lo, hi } => {
            format!(
                "DelayModel::Uniform {{ lo: {}, hi: {} }}",
                dur(*lo),
                dur(*hi)
            )
        }
        DelayModel::PartialSynchrony { lo, hi, gst, after } => format!(
            "DelayModel::PartialSynchrony {{ lo: {}, hi: {}, gst: Time({}), after: {} }}",
            dur(*lo),
            dur(*hi),
            gst.0,
            dur(*after)
        ),
        DelayModel::Rdma(c) => {
            // The fuzzer only draws the named presets; emit the matching
            // constructor when one fits, a field literal otherwise.
            for (name, preset) in [
                ("baseline", simnet::RdmaCost::baseline()),
                ("write_optimized", simnet::RdmaCost::write_optimized()),
                ("congested", simnet::RdmaCost::congested()),
            ] {
                if *c == preset {
                    return format!("DelayModel::Rdma(RdmaCost::{name}())");
                }
            }
            format!(
                "DelayModel::Rdma(RdmaCost {{ send: {}, write: {}, read: {}, cas: {}, \
                 doorbell: {}, per_wr: {}, per_kb: {}, jitter: {} }})",
                dur(c.send),
                dur(c.write),
                dur(c.read),
                dur(c.cas),
                dur(c.doorbell),
                dur(c.per_wr),
                dur(c.per_kb),
                dur(c.jitter)
            )
        }
    }
}
