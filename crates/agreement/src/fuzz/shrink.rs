//! Automatic shrinking: delta-debug a failing scenario down to a
//! minimal still-failing one.
//!
//! The shrinker repeatedly proposes simplifications — delete a fault
//! (crash, adversary, migration, the rebalancer), drop a complexity
//! dimension (jitter, pacing, partitioning, batching, workload skew),
//! halve the command stream — and keeps any candidate on which the deep
//! oracle still reports *a* violation (not necessarily the original
//! one; chasing a fixed violation through a shrink is a rabbit hole the
//! literature avoids too). Greedy first-improvement with a bounded run
//! budget: wholly deterministic, so the same failing scenario always
//! shrinks to the same minimal scenario.

use simnet::DelayModel;

use super::oracle::{check_deep, DeepChecks, Violation};
use super::repro::scenario_defaults;
use crate::harness::ShardedScenario;
use crate::sharded::WorkloadSpec;

/// How many faults a scenario injects — the number the shrinker drives
/// down, and the headline "minimal failing scenario has k faults".
/// Counts crashes, adversaries, migrations, the rebalancer, and the
/// dedup-disable switch; the paired Ω announcements ride along free.
pub fn fault_count(sc: &ShardedScenario) -> usize {
    sc.crash_leaders.len()
        + sc.byz_silent.len()
        + sc.byz_equivocators.len()
        + sc.byz_receipt_forgers.len()
        + sc.migrations.len()
        + usize::from(sc.rebalance.is_some())
        + usize::from(sc.disable_session_dedup)
}

/// What [`shrink_with_budget`] produced.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimal still-failing scenario reached.
    pub scenario: ShardedScenario,
    /// The violation the minimal scenario exhibits.
    pub violation: Violation,
    /// Whether the run budget expired with candidate simplifications
    /// still untried — the result may not be a local minimum. Callers
    /// surface this as an infrastructure failure (the `fuzz` bin exits
    /// non-zero on it): a fixed-point claim was never reached.
    pub budget_exhausted: bool,
}

/// Shrinks `sc` (which must fail the deep oracle) to a minimal
/// still-failing scenario; returns it with its violation.
///
/// # Panics
///
/// Panics if `sc` passes the oracle — shrinking a passing scenario is a
/// caller bug, not a recoverable condition.
pub fn shrink(sc: &ShardedScenario) -> (ShardedScenario, Violation) {
    let out = shrink_with_budget(sc, 200);
    (out.scenario, out.violation)
}

/// [`shrink`] with an explicit candidate-run budget, reporting whether
/// the budget expired before the greedy descent reached a fixed point.
///
/// # Panics
///
/// Panics if `sc` passes the oracle, like [`shrink`].
pub fn shrink_with_budget(sc: &ShardedScenario, mut runs: usize) -> ShrinkOutcome {
    let deep = DeepChecks {
        replay: true,
        thread_sweep: true,
    };
    let mut current = sc.clone();
    let mut violation = check_deep(&current, deep)
        .expect_err("shrink() called on a scenario that passes the oracle");
    // Each candidate costs up to four runs (replay + sweep); the budget
    // bounds total shrink cost on pathological scenarios.
    loop {
        let mut improved = false;
        for cand in candidates(&current) {
            if runs == 0 {
                // A candidate was still pending: no fixed-point claim.
                return ShrinkOutcome {
                    scenario: current,
                    violation,
                    budget_exhausted: true,
                };
            }
            runs -= 1;
            if let Err(v) = check_deep(&cand, deep) {
                current = cand;
                violation = v;
                improved = true;
                break;
            }
        }
        if !improved {
            return ShrinkOutcome {
                scenario: current,
                violation,
                budget_exhausted: false,
            };
        }
    }
}

/// All one-step simplifications of `sc`, most aggressive first (fault
/// deletions before knob resets, so the fault count falls fastest).
fn candidates(sc: &ShardedScenario) -> Vec<ShardedScenario> {
    let mut out = Vec::new();
    for i in 0..sc.migrations.len() {
        let mut c = sc.clone();
        c.migrations.remove(i);
        out.push(c);
    }
    if sc.rebalance.is_some() {
        let mut c = sc.clone();
        c.rebalance = None;
        out.push(c);
    }
    for i in 0..sc.byz_silent.len() {
        let mut c = sc.clone();
        c.byz_silent.remove(i);
        out.push(c);
    }
    for i in 0..sc.byz_receipt_forgers.len() {
        let mut c = sc.clone();
        c.byz_receipt_forgers.remove(i);
        out.push(c);
    }
    for i in 0..sc.byz_equivocators.len() {
        // The equivocator's recovery announcement goes with it.
        let mut c = sc.clone();
        let (g, _) = c.byz_equivocators.remove(i);
        c.announce.retain(|&(ag, _, _)| ag != g);
        out.push(c);
    }
    for i in 0..sc.crash_leaders.len() {
        let mut c = sc.clone();
        let (g, _) = c.crash_leaders.remove(i);
        // Drop the paired announcement unless another fault in the
        // group still needs it.
        if !c.crash_leaders.iter().any(|&(cg, _)| cg == g)
            && !c.byz_equivocators.iter().any(|&(eg, _)| eg == g)
        {
            c.announce.retain(|&(ag, _, _)| ag != g);
        }
        out.push(c);
    }
    if sc.disable_session_dedup {
        let mut c = sc.clone();
        c.disable_session_dedup = false;
        out.push(c);
    }
    // Complexity dimensions, cheapest-to-understand scenario first.
    if sc.byz_fast_path {
        let mut c = sc.clone();
        c.byz_fast_path = false;
        out.push(c);
    }
    if sc.byz_pipeline_window > 1 {
        let mut c = sc.clone();
        c.byz_pipeline_window = 1;
        out.push(c);
    }
    if sc.partitions > 1 {
        let mut c = sc.clone();
        c.partitions = 1;
        c.threads = 1;
        out.push(c);
    }
    if !matches!(sc.delay, DelayModel::Constant(_)) {
        let mut c = sc.clone();
        c.delay = DelayModel::synchronous();
        out.push(c);
    }
    if sc.arrival_rate_per_delay > 0.0 {
        let mut c = sc.clone();
        c.arrival_rate_per_delay = 0.0;
        out.push(c);
    }
    let defaults = scenario_defaults(sc);
    if sc.workload != defaults.workload {
        let mut c = sc.clone();
        c.workload = WorkloadSpec::Uniform {
            keys: sc.workload.key_space(),
        };
        if c.workload != sc.workload {
            out.push(c);
        }
    }
    if sc.batch > 1 {
        let mut c = sc.clone();
        c.batch = 1;
        out.push(c);
    }
    if sc.total_cmds > 20 {
        let mut c = sc.clone();
        c.total_cmds = (sc.total_cmds / 2).max(20);
        out.push(c);
    }
    out
}
