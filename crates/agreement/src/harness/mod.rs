//! One-call experiment builders: assemble a cluster, run a protocol under a
//! scripted failure scenario, and report the paper's metrics.
//!
//! Every benchmark, example and integration test goes through this module,
//! so experiment definitions stay in one place (DESIGN.md's per-experiment
//! index points here).

use std::collections::BTreeMap;

use sigsim::SigAuthority;
use simnet::{ActorId, DelayModel, Duration, Metrics, ParSimulation, Simulation, Time};

use crate::adversary::LogEquivocator;
use crate::aligned::{self, AlignedPaxosActor, MemoryMode};
use crate::cheap_quorum::{self, CheapQuorumActor};
use crate::disk_paxos::{self, DiskPaxosActor};
use crate::fast_paxos::FastPaxosActor;
use crate::fast_robust::{self, FastRobustActor};
use crate::nebcast;
use crate::paxos::PaxosActor;
use crate::protected::{self, ProtectedPaxosActor};
use crate::robust_backup::RobustPaxosActor;
use crate::sharded::{
    self, GroupMode, GroupTopology, RebalanceConfig, RebalancePolicy, RouterActor, RoutingTable,
    ScriptedMigration, WorkloadSpec,
};
use crate::smr::{byz_memory_actor, ByzSmrNode, SmrNode};
use crate::types::{Instance, Msg, Pid, Value};

/// A scripted run: cluster shape, failures, leadership and timing.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Number of processes.
    pub n: usize,
    /// Number of memories (ignored by the message-passing baselines).
    pub m: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Link behaviour.
    pub delay: DelayModel,
    /// `(process index, crash time in delays)`.
    pub crash_procs: Vec<(usize, u64)>,
    /// `(memory index, crash time in delays)`.
    pub crash_mems: Vec<(usize, u64)>,
    /// Process indices replaced by silent Byzantine actors (Byzantine
    /// protocols only; crash protocols treat them as crashed-from-start).
    pub byz_silent: Vec<usize>,
    /// Scripted Ω announcements: `(time in delays, leader index)`.
    pub announce: Vec<(u64, usize)>,
    /// Virtual-time budget, in delays.
    pub max_delays: u64,
    /// SMR write batching: log entries per replicated write
    /// ([`run_smr`] only; single-decree protocols ignore it). `1` is the
    /// paper's unbatched protocol.
    pub batch: usize,
    /// Adaptive doorbell-batch cap for the SMR leader (`0` = off,
    /// fixed `batch` applies). See [`SmrNode::with_adaptive_batch`];
    /// meaningful under [`DelayModel::Rdma`].
    pub adaptive_batch: usize,
}

impl Scenario {
    /// The synchronous failure-free common case.
    pub fn common_case(n: usize, m: usize, seed: u64) -> Scenario {
        Scenario {
            n,
            m,
            seed,
            delay: DelayModel::synchronous(),
            crash_procs: Vec::new(),
            crash_mems: Vec::new(),
            byz_silent: Vec::new(),
            announce: Vec::new(),
            max_delays: 5_000,
            batch: 1,
            adaptive_batch: 0,
        }
    }

    /// Builds the simulation this scenario runs on.
    fn simulation(&self) -> Simulation<Msg> {
        let mut sim = Simulation::new(self.seed);
        sim.set_default_delay(self.delay.clone());
        sim
    }

    /// Process ids `0..n`.
    pub fn procs(&self) -> Vec<Pid> {
        (0..self.n as u32).map(ActorId).collect()
    }

    /// Memory ids `n..n+m`.
    pub fn mems(&self) -> Vec<ActorId> {
        (self.n as u32..(self.n + self.m) as u32)
            .map(ActorId)
            .collect()
    }

    /// Indices of processes expected to decide (correct, never-crashed).
    pub fn correct_procs(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|i| {
                !self.byz_silent.contains(i) && !self.crash_procs.iter().any(|(c, _)| c == i)
            })
            .collect()
    }

    /// The input value of process `i` (fixed convention: `100 + i`).
    pub fn input(i: usize) -> Value {
        Value(100 + i as u64)
    }

    fn apply_failures(&self, sim: &mut Simulation<Msg>) {
        for &(i, t) in &self.crash_procs {
            sim.crash_at(ActorId(i as u32), Time::from_delays(t));
        }
        for &(j, t) in &self.crash_mems {
            let mem = self.mems()[j];
            sim.crash_at(mem, Time::from_delays(t));
        }
        let procs = self.procs();
        for &(t, l) in &self.announce {
            sim.announce_leader(Time::from_delays(t), &procs, ActorId(l as u32));
        }
    }
}

/// Metrics extracted from one run — the quantities the paper reports.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Decisions of the processes expected to decide.
    pub decisions: BTreeMap<Pid, Value>,
    /// Whether every expected process decided within the budget.
    pub all_decided: bool,
    /// Whether all reached decisions are equal.
    pub agreement: bool,
    /// Whether the decision is some process's input (validity; meaningful
    /// in runs without Byzantine processes).
    pub validity: bool,
    /// Delay of the earliest decision, in network delays (the k in
    /// "k-deciding").
    pub first_decision_delays: Option<f64>,
    /// Messages put on the network (includes memory-operation legs).
    pub messages: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// Signatures created / verified (0 for unsigned protocols).
    pub signatures: (u64, u64),
    /// Virtual time when the run stopped, in delays.
    pub elapsed_delays: f64,
}

fn finish<A: 'static>(
    mut sim: Simulation<Msg>,
    scenario: &Scenario,
    auth: Option<&SigAuthority>,
    decision_of: impl Fn(&A) -> Option<Value>,
) -> RunReport {
    let expected: Vec<Pid> = scenario
        .correct_procs()
        .iter()
        .map(|&i| ActorId(i as u32))
        .collect();
    let deadline = Time::from_delays(scenario.max_delays);
    sim.run_until(deadline, |s| {
        expected
            .iter()
            .all(|&p| s.actor_as::<A>(p).is_some_and(|a| decision_of(a).is_some()))
    });
    let mut decisions = BTreeMap::new();
    for &p in &expected {
        if let Some(v) = sim.actor_as::<A>(p).and_then(&decision_of) {
            decisions.insert(p, v);
        }
    }
    let vals: Vec<Value> = decisions.values().copied().collect();
    let valid_inputs: Vec<Value> = (0..scenario.n).map(Scenario::input).collect();
    RunReport {
        all_decided: decisions.len() == expected.len(),
        agreement: vals.windows(2).all(|w| w[0] == w[1]),
        validity: vals.iter().all(|v| valid_inputs.contains(v)),
        first_decision_delays: sim.metrics().first_decision_delays(),
        messages: sim.metrics().messages_sent,
        mem_ops: sim.metrics().mem_ops(),
        signatures: auth.map_or((0, 0), |a| (a.signatures_created(), a.verifications())),
        elapsed_delays: sim.now().as_delays(),
        decisions,
    }
}

/// Runs message-passing Paxos (baseline; memories unused).
pub fn run_mp_paxos(scenario: &Scenario) -> RunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    for i in 0..scenario.n {
        sim.add(PaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            Scenario::input(i),
            Some(ActorId(0)),
            Duration::from_delays(25),
        ));
    }
    scenario.apply_failures(&mut sim);
    finish::<PaxosActor>(sim, scenario, None, |a| a.decision())
}

/// Runs Fast Paxos (baseline; `proposer` proposes at start).
pub fn run_fast_paxos(scenario: &Scenario, proposer: usize) -> RunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    for i in 0..scenario.n {
        sim.add(FastPaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            Scenario::input(i),
            i == proposer,
            ActorId(0),
            Duration::from_delays(30),
        ));
    }
    scenario.apply_failures(&mut sim);
    finish::<FastPaxosActor>(sim, scenario, None, |a| a.decision())
}

/// Runs Disk Paxos (baseline).
pub fn run_disk_paxos(scenario: &Scenario) -> RunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    for i in 0..scenario.n {
        sim.add(DiskPaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            Instance(0),
            Scenario::input(i),
            Some(ActorId(0)),
            Duration::from_delays(25),
        ));
    }
    for _ in 0..scenario.m {
        sim.add(disk_paxos::disk_actor(&procs));
    }
    scenario.apply_failures(&mut sim);
    finish::<DiskPaxosActor>(sim, scenario, None, |a| a.decision())
}

/// Runs Protected Memory Paxos (Theorem 5.1).
pub fn run_protected(scenario: &Scenario) -> RunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    let f_m = (scenario.m.max(1) - 1) / 2;
    for i in 0..scenario.n {
        sim.add(ProtectedPaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            Instance(0),
            Scenario::input(i),
            ActorId(0),
            f_m,
            Duration::from_delays(25),
        ));
    }
    for _ in 0..scenario.m {
        sim.add(protected::memory_actor(ActorId(0)));
    }
    scenario.apply_failures(&mut sim);
    finish::<ProtectedPaxosActor>(sim, scenario, None, |a| a.decision())
}

/// Runs Aligned Paxos (§5.2) in the given memory mode.
pub fn run_aligned(scenario: &Scenario, mode: MemoryMode) -> RunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    for i in 0..scenario.n {
        sim.add(AlignedPaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            Instance(0),
            Scenario::input(i),
            ActorId(0),
            mode,
            Duration::from_delays(30),
        ));
    }
    for _ in 0..scenario.m {
        sim.add(aligned::memory_actor(mode, &procs, ActorId(0)));
    }
    scenario.apply_failures(&mut sim);
    finish::<AlignedPaxosActor>(sim, scenario, None, |a| a.decision())
}

/// Runs standalone Cheap Quorum with the given timeout (in delays). Note:
/// Cheap Quorum may abort; `all_decided` then reports false and callers
/// inspect aborts through their own builds — the composed protocol is
/// [`run_fast_robust`].
pub fn run_cheap_quorum(scenario: &Scenario, timeout: u64) -> (RunReport, SigAuthority) {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    let mut auth = SigAuthority::new(scenario.seed ^ 0xCAFE);
    for i in 0..scenario.n {
        let signer = auth.register(ActorId(i as u32));
        if scenario.byz_silent.contains(&i) {
            sim.add(crate::adversary::SilentActor);
            continue;
        }
        sim.add(CheapQuorumActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            ActorId(0),
            Scenario::input(i),
            signer,
            auth.verifier(),
            Duration::from_delays(1),
            Duration::from_delays(timeout),
        ));
    }
    for _ in 0..scenario.m {
        sim.add(cheap_quorum::memory_actor(&procs, ActorId(0)));
    }
    scenario.apply_failures(&mut sim);
    let report = finish::<CheapQuorumActor>(sim, scenario, Some(&auth), |a| a.decision());
    (report, auth)
}

/// Runs the composed Fast & Robust protocol (Theorem 4.9).
pub fn run_fast_robust(scenario: &Scenario, timeout: u64) -> (RunReport, SigAuthority) {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    let mut auth = SigAuthority::new(scenario.seed ^ 0xBEEF);
    for i in 0..scenario.n {
        let signer = auth.register(ActorId(i as u32));
        if scenario.byz_silent.contains(&i) {
            sim.add(crate::adversary::SilentActor);
            continue;
        }
        sim.add(FastRobustActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            ActorId(0),
            Scenario::input(i),
            signer,
            auth.verifier(),
            Duration::from_delays(1),
            Duration::from_delays(timeout),
            Duration::from_delays(120),
        ));
    }
    for _ in 0..scenario.m {
        sim.add(fast_robust::memory_actor(&procs, ActorId(0)));
    }
    scenario.apply_failures(&mut sim);
    let report = finish::<FastRobustActor>(sim, scenario, Some(&auth), |a| a.decision());
    (report, auth)
}

/// Runs the slow path alone: Robust Backup over trusted channels
/// (Theorem 4.4).
pub fn run_robust_backup(scenario: &Scenario) -> (RunReport, SigAuthority) {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    let mut auth = SigAuthority::new(scenario.seed ^ 0xD00D);
    for i in 0..scenario.n {
        let signer = auth.register(ActorId(i as u32));
        if scenario.byz_silent.contains(&i) {
            sim.add(crate::adversary::SilentActor);
            continue;
        }
        sim.add(RobustPaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            Scenario::input(i),
            Some(ActorId(0)),
            signer,
            auth.verifier(),
            Duration::from_delays(1),
            Duration::from_delays(80),
        ));
    }
    for _ in 0..scenario.m {
        let mut mem = rdma_sim::MemoryActor::new(rdma_sim::LegalChange::Static);
        nebcast::configure_memory(&mut mem, &procs);
        sim.add(mem);
    }
    scenario.apply_failures(&mut sim);
    let report = finish::<RobustPaxosActor>(sim, scenario, Some(&auth), |a| a.decision());
    (report, auth)
}

/// What a replicated-log run produced (the E10b quantities).
#[derive(Clone, Debug)]
pub struct SmrRunReport {
    /// Length of the leader's contiguous decided prefix.
    pub entries: usize,
    /// The leader's log.
    pub log: Vec<Value>,
    /// Whether every correct replica's log is a prefix-consistent match.
    pub logs_agree: bool,
    /// Virtual time when the run stopped, in delays.
    pub elapsed_delays: f64,
    /// Virtual-time cost per committed entry, in delays.
    pub delays_per_entry: f64,
    /// Kernel events dispatched over the run (wall-clock denominator).
    pub events_dispatched: u64,
    /// Messages put on the network.
    pub messages: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// When the leader decided each slot, in delays.
    pub decided_at_delays: Vec<f64>,
}

/// Runs the replicated log (SMR over Protected Memory Paxos): every node
/// wants `cmds_per_node` commands committed; process 0 leads. Honours
/// [`Scenario::batch`].
pub fn run_smr(scenario: &Scenario, cmds_per_node: usize) -> SmrRunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    let f_m = (scenario.m.max(1) - 1) / 2;
    for i in 0..scenario.n {
        let workload: Vec<Value> = (0..cmds_per_node)
            .map(|c| Value(1000 * (i as u64 + 1) + c as u64))
            .collect();
        let mut node = SmrNode::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            ActorId(0),
            workload,
            f_m,
            Duration::from_delays(20),
        )
        .with_batch(scenario.batch);
        if scenario.adaptive_batch > 0 {
            node = node.with_adaptive_batch(scenario.adaptive_batch);
        }
        sim.add(node);
    }
    for _ in 0..scenario.m {
        sim.add(protected::memory_actor(ActorId(0)));
    }
    scenario.apply_failures(&mut sim);
    sim.run_to_quiescence(Time::from_delays(scenario.max_delays));

    let leader = sim.actor_as::<SmrNode>(ActorId(0)).expect("leader exists");
    let log = leader.log();
    let mut decided = leader.decided_at().to_vec();
    decided.sort_by_key(|&(instance, _)| instance);
    let decided_at_delays: Vec<f64> = decided.iter().map(|&(_, t)| t.as_delays()).collect();
    let logs_agree = scenario.correct_procs().iter().all(|&i| {
        let other = sim
            .actor_as::<SmrNode>(ActorId(i as u32))
            .expect("replica exists")
            .log();
        let common = log.len().min(other.len());
        log[..common] == other[..common]
    });
    let entries = log.len();
    SmrRunReport {
        entries,
        logs_agree,
        elapsed_delays: sim.now().as_delays(),
        delays_per_entry: sim.now().as_delays() / entries.max(1) as f64,
        events_dispatched: sim.metrics().events_dispatched,
        messages: sim.metrics().messages_sent,
        mem_ops: sim.metrics().mem_ops(),
        decided_at_delays,
        log,
    }
}

/// A scripted sharded-service run: `groups` independent SMR groups over a
/// hash-partitioned key space, fronted by one router
/// (see [`crate::sharded`] for the architecture). Mirrors [`Scenario`]:
/// build one, tweak fields, hand it to [`run_sharded`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedScenario {
    /// Number of groups (shards).
    pub groups: usize,
    /// Replicas per group.
    pub n: usize,
    /// Memories per group.
    pub m: usize,
    /// Simulation seed (also seeds the workload's key stream).
    pub seed: u64,
    /// Link behaviour.
    pub delay: DelayModel,
    /// Total client commands across all groups.
    pub total_cmds: usize,
    /// Key distribution of the command stream.
    pub workload: WorkloadSpec,
    /// Per-group closed-loop window (commands in flight). `0` switches to
    /// open loop: every backlog is preloaded into its group's initial
    /// leader and the router only observes — the max-throughput
    /// configuration, wire-identical per group to [`run_smr`].
    pub window: usize,
    /// Log entries per replicated write (as [`Scenario::batch`]).
    pub batch: usize,
    /// Adaptive doorbell-batch cap for crash-mode group leaders (`0` =
    /// off, fixed `batch` applies). Each round packs the pending backlog
    /// up to this many work requests into one doorbell-batched WRITE
    /// burst; meaningful under [`DelayModel::Rdma`]. See
    /// [`SmrNode::with_adaptive_batch`].
    pub adaptive_batch: usize,
    /// `(group, crash time in delays)`: crash that group's initial leader.
    pub crash_leaders: Vec<(usize, u64)>,
    /// `(group, replica index, time in delays)`: Ω announces that replica
    /// as the group's leader, to the group and the router.
    pub announce: Vec<(usize, usize, u64)>,
    /// Virtual-time budget, in delays.
    pub max_delays: u64,
    /// Kernel partitions the deployment is split into. `1` (the default)
    /// runs the monolithic kernel exactly as before. `> 1` runs the
    /// partitioned parallel kernel ([`simnet::ParSimulation`]): groups are
    /// placed in contiguous blocks via
    /// [`GroupTopology::partition_of_group`] (each group's replicas and
    /// memories co-located), the router on partition 0. The partition
    /// count is part of the determinism contract — `(seed, partitions)`
    /// pins the run bit-for-bit; `threads` never affects results.
    pub partitions: usize,
    /// Worker threads executing the partitioned kernel (ignored when
    /// `partitions == 1`). Changes wall-clock time only, never the run.
    pub threads: usize,
    /// Route by the versioned key-range table
    /// ([`sharded::RoutingTable::even`]) instead of the static key hash.
    /// Implied by `migrations` / `rebalance`; set it alone to measure
    /// static range routing (the rebalancer's baseline). Requires a
    /// closed-loop `window`.
    pub range_routing: bool,
    /// Scripted one-shot key-range migrations (each fires at its virtual
    /// time; implies `range_routing`).
    pub migrations: Vec<ScriptedMigration>,
    /// Automatic rebalancing policy: watch per-group/per-key load and
    /// migrate hot ranges (implies `range_routing`).
    pub rebalance: Option<RebalanceConfig>,
    /// Offered load, in commands per delay. `0.0` (the default) is the
    /// classic drain-the-backlog run: every command is eligible at time
    /// zero and latency starts at submission. `> 0.0` paces arrivals:
    /// command `i` arrives at `i / rate` and its latency clock starts at
    /// *arrival* — router-queue wait counts, so a hot shard's growing
    /// backlog shows up in the latency tail, as it would for real
    /// clients. Requires a closed-loop `window`.
    pub arrival_rate_per_delay: f64,
    /// Per-group failure mode (index = group; missing entries default to
    /// [`GroupMode::CrashPmp`]). Empty — the default — is the all-crash
    /// service, bit-identical to the pre-Byzantine harness. A
    /// [`GroupMode::Byzantine`] group replicates through signed
    /// non-equivocating broadcast and the router confirms its commits at
    /// `f + 1` distinct replica reports.
    pub group_modes: Vec<GroupMode>,
    /// Adversary injection: `(group, replica index)` slots replaced by a
    /// silent Byzantine replica ([`crate::adversary::SilentActor`]).
    /// Placements must land in Byzantine-mode groups.
    pub byz_silent: Vec<(usize, usize)>,
    /// Adversary injection: `(group, replica index)` slots replaced by an
    /// equivocating Byzantine leader
    /// ([`crate::adversary::LogEquivocator`] — rewrite-equivocates its
    /// broadcast slot and fabricates commit claims). Install it at a
    /// group's initial-leader slot (index 0) and script an Ω announcement
    /// to a correct replica to restore the group's liveness. Placements
    /// must land in Byzantine-mode groups.
    pub byz_equivocators: Vec<(usize, usize)>,
    /// Adversary injection: `(group, replica index)` slots replaced by a
    /// receipt-forging Byzantine follower
    /// ([`crate::adversary::ReceiptForger`] — writes a delivery receipt
    /// for a value its group's initial leader never broadcast, colluding
    /// with that leader for the signature). Blocked by the takeover
    /// scan's receipt-provenance check and counted in
    /// [`ShardedRunReport::byz_receipts_rejected`]. Placements must land
    /// in Byzantine-mode groups, not at the initial-leader slot.
    pub byz_receipt_forgers: Vec<(usize, usize)>,
    /// Record typed observability events ([`simnet::obs::Event`]) during
    /// the run: [`run_sharded_with_events`] returns the merged,
    /// deterministically ordered stream (ready for the exporters in
    /// [`simnet::obs`]). Off — the default — records nothing and is
    /// bit-identical to the pre-observability harness. Recording is
    /// strictly read-only: enabling it never changes a run's schedule,
    /// metrics or report.
    pub record_events: bool,
    /// Aggregate command-lifecycle spans
    /// ([`crate::spans::aggregate_spans`]) into
    /// [`ShardedRunReport::span_stats`]: per-group, per-stage latency
    /// histograms (submit → route → propose → decide → confirm). Implies
    /// event recording for the duration of the run. Off by default.
    pub record_spans: bool,
    /// Byzantine pipeline window: how many signed broadcasts each
    /// Byzantine-mode leader keeps in flight before stalling on
    /// self-delivery ([`ByzSmrNode::with_pipeline_window`]). `1` — the
    /// default — is the classic one-slot protocol, bit-identical to the
    /// pre-pipeline harness. Ignored by crash-mode groups.
    pub byz_pipeline_window: usize,
    /// Speculative fast path for Byzantine-mode leaders: settle own
    /// batches at the broadcast write ack instead of self-delivery
    /// ([`ByzSmrNode::with_fast_path`]); the router counts the commits
    /// whose confirmation quorum the early report completed
    /// ([`ShardedRunReport::byz_fast_confirms`]). Off by default.
    pub byz_fast_path: bool,
    /// **Fault-injection switch for the fuzzer's oracle demo**: when set,
    /// replicas are built *without* client-session dedup, reintroducing
    /// the pre-dedup bug where the router's at-least-once re-submission
    /// after a failover duplicates committed commands in the log. Never
    /// set outside tests — it exists so the checker can prove it catches
    /// (and the shrinker minimizes) a real safety violation.
    pub disable_session_dedup: bool,
}

impl ShardedScenario {
    /// A failure-free closed-loop run with synchronous links and a window
    /// sized to keep batched pipelines full.
    pub fn common_case(groups: usize, n: usize, m: usize, seed: u64) -> ShardedScenario {
        ShardedScenario {
            groups,
            n,
            m,
            seed,
            delay: DelayModel::synchronous(),
            total_cmds: 1_000,
            workload: WorkloadSpec::uniform(),
            window: 16,
            batch: 1,
            adaptive_batch: 0,
            crash_leaders: Vec::new(),
            announce: Vec::new(),
            max_delays: 50_000,
            partitions: 1,
            threads: 1,
            range_routing: false,
            migrations: Vec::new(),
            rebalance: None,
            arrival_rate_per_delay: 0.0,
            group_modes: Vec::new(),
            byz_silent: Vec::new(),
            byz_equivocators: Vec::new(),
            byz_receipt_forgers: Vec::new(),
            byz_pipeline_window: 1,
            byz_fast_path: false,
            record_events: false,
            record_spans: false,
            disable_session_dedup: false,
        }
    }

    /// Whether this scenario records typed observability events (either
    /// flag turns the recorder on; span aggregation needs the events).
    pub fn obs_enabled(&self) -> bool {
        self.record_events || self.record_spans
    }

    /// Group `g`'s failure mode (missing entries are crash-mode).
    pub fn mode_of(&self, g: usize) -> GroupMode {
        self.group_modes.get(g).copied().unwrap_or_default()
    }

    /// Whether any group runs in Byzantine mode.
    pub fn has_byzantine(&self) -> bool {
        self.group_modes.contains(&GroupMode::Byzantine)
    }

    /// The deployment's actor-id layout.
    pub fn topology(&self) -> GroupTopology {
        GroupTopology {
            groups: self.groups,
            n: self.n,
            m: self.m,
        }
    }

    /// Whether this scenario routes by the versioned range table (and may
    /// therefore migrate ranges at run time).
    pub fn dynamic_routing(&self) -> bool {
        self.range_routing || !self.migrations.is_empty() || self.rebalance.is_some()
    }
}

/// What one group of a sharded run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardGroupReport {
    /// Log length of the group's longest replica log (no-op fillers and
    /// at-least-once duplicates included).
    pub entries: usize,
    /// Unique client commands observed committed by this group.
    pub committed: usize,
    /// Median decision latency (submission → first observed commit), in
    /// ticks.
    pub p50_latency_ticks: u64,
    /// 99th-percentile decision latency, in ticks.
    pub p99_latency_ticks: u64,
    /// Longest gap between consecutive observed commits, in ticks — a
    /// failover's stall window lands here.
    pub max_commit_gap_ticks: u64,
    /// Whether every replica's log is a prefix of the group's longest log.
    pub logs_agree: bool,
    /// The failure mode this group ran under.
    pub mode: GroupMode,
    /// The group's longest replica log.
    pub log: Vec<Value>,
}

/// Aggregate metrics of a sharded run.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedRunReport {
    /// Per-group outcomes, indexed by group.
    pub groups: Vec<ShardGroupReport>,
    /// Sum of group log lengths (includes no-ops and duplicates).
    pub total_entries: usize,
    /// Unique client commands observed committed, across all groups.
    pub committed: usize,
    /// Whether every client command was observed committed in budget.
    pub all_committed: bool,
    /// Whether every group's replica logs agree.
    pub all_logs_agree: bool,
    /// Whether every committed command landed in the group the routing
    /// (key hash, or the range table's final assignment) maps it to — no
    /// cross-group leakage. Runs with `cross_epoch_commits > 0` tolerate
    /// that many mismatches: a commit notification racing an epoch flip
    /// legitimately leaves one entry under the pre-flip assignment.
    pub no_cross_group_leak: bool,
    /// Virtual time when the run stopped, in delays.
    pub elapsed_delays: f64,
    /// Aggregate virtual-time throughput: unique committed commands per
    /// delay — the quantity that scales with `groups`.
    pub committed_per_delay: f64,
    /// Throughput over the run's last virtual-time quartile. For a
    /// rebalancing run this is the *post-convergence* rate — what the
    /// service sustains once the hot range has split — where the whole-run
    /// average still carries the skewed transient.
    pub tail_committed_per_delay: f64,
    /// Kernel events dispatched (wall-clock denominator).
    pub events_dispatched: u64,
    /// Messages put on the network.
    pub messages: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// Deepest any kernel event queue got during the run (on the
    /// partitioned kernel: the max across partitions — there is no single
    /// global queue; see `partition_peak_queue_lens` for the breakdown).
    pub peak_queue_len: u64,
    /// Per-partition peak event-queue depths, indexed by partition (a
    /// single entry on the monolithic kernel).
    pub partition_peak_queue_lens: Vec<u64>,
    /// Duplicate proposals suppressed by client-session dedup across all
    /// replicas (the at-least-once failover re-submissions that did *not*
    /// become duplicate log entries; 0 in failure-free runs).
    pub duplicates_suppressed: u64,
    /// Service-level median decision latency, in ticks (all groups' raw
    /// latencies pooled — the hot group weighs in by its command count).
    pub service_p50_latency_ticks: u64,
    /// Service-level 99th-percentile decision latency, in ticks. The
    /// headline number rebalancing is judged by: per-group p99s can look
    /// healthy while the hot group drags the service tail.
    pub service_p99_latency_ticks: u64,
    /// Key-range migrations completed (0 without rebalancing).
    pub migrations_completed: usize,
    /// Trigger → epoch-flip duration of each completed migration, in
    /// ticks (the window during which the migrating range was held).
    pub migration_windows_ticks: Vec<u64>,
    /// Final routing-table version (0: the static partition never flips).
    pub routing_table_version: u64,
    /// Commands re-routed across epoch flips (straddling in-flight
    /// commands replayed at the destination + held/backlog moves).
    pub rerouted_commands: u64,
    /// Commits observed in a group the command was no longer assigned to
    /// (late notifications racing an epoch flip; 0 on FIFO schedules).
    pub cross_epoch_commits: u64,
    /// Byzantine suppression: senders caught equivocating and blocked by
    /// the broadcast audit, summed over every Byzantine-mode replica
    /// (0 in all-crash deployments).
    pub equivocations_blocked: u64,
    /// Byzantine suppression: delivery receipts whose provenance check
    /// failed during takeover scans — a receipt credited to a broadcast
    /// the claimed broadcaster's unforgeable self-slot never made,
    /// summed over every Byzantine-mode replica (0 without a
    /// receipt-forging adversary).
    pub byz_receipts_rejected: u64,
    /// Byzantine suppression: commit claims from Byzantine-mode groups
    /// that *never* reached the router's `f + 1` confirmation quorum by
    /// the end of the run — a lying leader's wholly invented commands
    /// land here (0 in all-crash deployments).
    pub byz_unconfirmed_claims: u64,
    /// Byzantine suppression: reports from Byzantine-mode groups
    /// withheld from the commit path pending their confirmation quorum,
    /// cumulative — the work the `f + 1` rule did, fabricated claims
    /// included (0 in all-crash deployments).
    pub byz_withheld_reports: u64,
    /// Byzantine pipeline: batches leaders settled at the broadcast
    /// write ack instead of self-delivery, summed over every
    /// Byzantine-mode replica (0 unless
    /// [`ShardedScenario::byz_fast_path`] is set).
    pub byz_fast_commits: u64,
    /// Byzantine pipeline: confirmations whose `f + 1` quorum the
    /// fast-path leader's speculative write-ack report completed (0
    /// unless [`ShardedScenario::byz_fast_path`] is set).
    pub byz_fast_confirms: u64,
    /// Per-group command-lifecycle span statistics (empty unless the
    /// scenario set [`ShardedScenario::record_spans`]). Deterministic
    /// like everything else here: a run's span stats are identical
    /// across replays and worker-thread counts.
    pub span_stats: Vec<crate::spans::GroupSpanStats>,
}

/// Runs the sharded multi-group replicated-log service.
///
/// Builds `groups` disjoint SMR groups plus the router (actor ids per
/// [`ShardedScenario::topology`]), injects the scripted per-group leader
/// crashes and Ω announcements, runs until every command is observed
/// committed (or the budget ends), and reduces the router's observations
/// to a [`ShardedRunReport`].
pub fn run_sharded(scenario: &ShardedScenario) -> ShardedRunReport {
    run_sharded_with_events(scenario).0
}

/// [`run_sharded`], also returning the run's typed observability events
/// (empty unless the scenario set [`ShardedScenario::record_events`] or
/// [`ShardedScenario::record_spans`]). The stream is merged across
/// kernel partitions in deterministic `(time, partition, seq)` order,
/// ready for [`simnet::obs::to_jsonl`], [`simnet::obs::to_chrome_trace`]
/// or [`simnet::obs::to_html_timeline`].
pub fn run_sharded_with_events(
    scenario: &ShardedScenario,
) -> (ShardedRunReport, Vec<simnet::obs::Event>) {
    let topo = scenario.topology();
    let workload = validated_workload(scenario);
    let (mut report, events) = if scenario.partitions > 1 {
        run_sharded_partitioned(scenario, &topo, workload)
    } else {
        run_sharded_monolithic(scenario, &topo, workload, None::<fn(&mut Simulation<Msg>)>)
    };
    if scenario.record_spans {
        report.span_stats =
            crate::spans::aggregate_spans(&events, scenario.groups, scenario.total_cmds);
    }
    (report, events)
}

/// [`run_sharded_with_events`] on the monolithic kernel, with pre-run
/// access to the built [`Simulation`] — how the schedule explorer
/// ([`crate::explore`]) installs its [`simnet::ChoiceHook`] before the
/// first dispatch. Panics on partitioned scenarios (`partitions > 1`):
/// the choice hook is a monolithic-kernel instrument.
pub fn run_sharded_instrumented(
    scenario: &ShardedScenario,
    setup: impl FnOnce(&mut Simulation<Msg>),
) -> (ShardedRunReport, Vec<simnet::obs::Event>) {
    assert!(
        scenario.partitions <= 1,
        "instrumented runs use the monolithic kernel (partitions must be 1)"
    );
    let topo = scenario.topology();
    let workload = validated_workload(scenario);
    let (mut report, events) = run_sharded_monolithic(scenario, &topo, workload, Some(setup));
    if scenario.record_spans {
        report.span_stats =
            crate::spans::aggregate_spans(&events, scenario.groups, scenario.total_cmds);
    }
    (report, events)
}

/// Validates a scenario's adversary placements and builds its per-group
/// workload partition (shared by every run entry point).
fn validated_workload(scenario: &ShardedScenario) -> sharded::PartitionedWorkload {
    for &(g, i) in scenario
        .byz_silent
        .iter()
        .chain(&scenario.byz_equivocators)
        .chain(&scenario.byz_receipt_forgers)
    {
        assert_eq!(
            scenario.mode_of(g),
            GroupMode::Byzantine,
            "adversary placement (group {g}, replica {i}) outside a Byzantine-mode group"
        );
        assert!(i < scenario.n, "adversary replica index {i} out of range");
        // Open loop preloads each backlog into the initial-leader slot;
        // an adversary there would silently discard the group's whole
        // workload and the run would just burn its budget.
        assert!(
            scenario.window > 0 || i != 0,
            "adversary at the initial-leader slot of group {g} needs a closed-loop \
             window (open loop would preload the backlog into the adversary)"
        );
    }
    for &(g, i) in &scenario.byz_receipt_forgers {
        // The forger colludes with the initial leader (holds its signer);
        // it cannot *be* that leader.
        assert!(
            i != 0,
            "receipt forger cannot occupy group {g}'s initial-leader slot"
        );
    }
    assert!(
        scenario.byz_pipeline_window >= 1,
        "the Byzantine pipeline window is 1-based (1 = the classic one-slot protocol)"
    );
    if scenario.dynamic_routing() {
        let table = RoutingTable::even(scenario.workload.key_space(), scenario.groups);
        sharded::partition_with_table(
            &scenario.workload,
            scenario.seed,
            scenario.total_cmds,
            &table,
            scenario.groups,
        )
    } else {
        sharded::partition(
            &scenario.workload,
            scenario.seed,
            scenario.total_cmds,
            scenario.groups,
        )
    }
}

/// Builds the router for a sharded run, wiring in dynamic routing when
/// the scenario migrates (scripted or policy-driven).
fn build_router(
    scenario: &ShardedScenario,
    topo: &GroupTopology,
    workload: sharded::PartitionedWorkload,
) -> RouterActor {
    let paced = scenario.arrival_rate_per_delay > 0.0;
    if paced {
        assert!(
            scenario.window > 0,
            "paced arrivals need a closed-loop window (router-mediated submission)"
        );
    }
    let interval_ticks = (simnet::TICKS_PER_DELAY as f64
        / scenario.arrival_rate_per_delay.max(f64::MIN_POSITIVE))
    .round()
    .max(1.0) as u64;
    if !scenario.dynamic_routing() {
        let mut router = RouterActor::new(*topo, workload, scenario.window);
        if scenario.has_byzantine() {
            router = router.with_group_modes(scenario.group_modes.clone(), scenario.n);
            if scenario.byz_fast_path {
                router = router.with_byz_fast_path();
            }
        }
        if paced {
            router = router.with_paced_arrivals(interval_ticks);
        }
        return router;
    }
    assert!(
        scenario.window > 0,
        "rebalancing needs a closed-loop window (router-mediated submission)"
    );
    let table = RoutingTable::even(scenario.workload.key_space(), scenario.groups);
    let keys = workload.keys.clone();
    let policy = scenario
        .rebalance
        .map(|cfg| RebalancePolicy::new(cfg, scenario.groups));
    let mut router = RouterActor::new(*topo, workload, scenario.window).with_rebalance(
        table,
        keys,
        policy,
        scenario.migrations.clone(),
    );
    if scenario.has_byzantine() {
        router = router.with_group_modes(scenario.group_modes.clone(), scenario.n);
        if scenario.byz_fast_path {
            router = router.with_byz_fast_path();
        }
    }
    if paced {
        router = router.with_paced_arrivals(interval_ticks);
    }
    router
}

/// The signing infrastructure of a deployment with Byzantine-mode
/// groups: one authority per run, every Byzantine-group replica
/// registered in id order (adversaries receive their own signer — they
/// can lie as themselves, never as a correct replica).
struct ByzAuth {
    auth: SigAuthority,
    signers: BTreeMap<Pid, sigsim::Signer>,
}

/// Builds the signing authority for a scenario, registering every
/// replica of every Byzantine-mode group. `None` for all-crash
/// deployments (whose schedules must stay bit-identical to the
/// pre-Byzantine harness).
fn byz_auth(scenario: &ShardedScenario, topo: &GroupTopology) -> Option<ByzAuth> {
    if !scenario.has_byzantine() {
        return None;
    }
    let mut auth = SigAuthority::new(scenario.seed ^ 0xB12A);
    let mut signers = BTreeMap::new();
    for g in 0..scenario.groups {
        if scenario.mode_of(g) != GroupMode::Byzantine {
            continue;
        }
        for p in topo.procs(g) {
            signers.insert(p, auth.register(p));
        }
    }
    Some(ByzAuth { auth, signers })
}

/// One replica slot of a sharded deployment, ready to add to either
/// kernel: the group's protocol node, or an injected adversary.
enum ReplicaBuild {
    Crash(Box<SmrNode>),
    Byz(Box<ByzSmrNode>),
    Silent,
    Equivocator(Box<LogEquivocator>),
    Forger(Box<crate::adversary::ReceiptForger>),
}

/// Builds one replica of group `g` for a sharded run (both kernel
/// paths): the scenario's adversary placements first, then the group's
/// [`GroupMode`] protocol node.
fn sharded_replica(
    scenario: &ShardedScenario,
    topo: &GroupTopology,
    byz: Option<&ByzAuth>,
    backlog: &[Value],
    g: usize,
    i: usize,
) -> ReplicaBuild {
    let procs = topo.procs(g);
    let mems = topo.mems(g);
    let leader = topo.initial_leader(g);
    if scenario.byz_silent.contains(&(g, i)) {
        return ReplicaBuild::Silent;
    }
    if scenario.byz_receipt_forgers.contains(&(g, i)) {
        let byz = byz.expect("receipt forger outside a Byzantine deployment");
        // Forged value: junk id above any client command id, distinct
        // from the equivocator band so a leaked forgery is attributable.
        let junk = 1u64 << 41 | (g as u64) << 8;
        return ReplicaBuild::Forger(Box::new(crate::adversary::ReceiptForger::new(
            procs[i],
            mems,
            Value(junk | 1),
            Duration::from_delays(3),
            byz.signers[&leader].clone(),
            leader,
        )));
    }
    if scenario.byz_equivocators.contains(&(g, i)) {
        let byz = byz.expect("equivocator outside a Byzantine deployment");
        // Junk ids far above any client command id (and below the
        // control-entry bit): visibly not a client command, so a group
        // that settles one corrupts nobody's accounting.
        let junk = 1u64 << 40 | (g as u64) << 8;
        return ReplicaBuild::Equivocator(Box::new(LogEquivocator::new(
            procs[i],
            mems,
            topo.router(),
            Value(junk | 1),
            Value(junk | 2),
            Duration::from_delays(4),
            byz.signers[&procs[i]].clone(),
        )));
    }
    // Open loop preloads the whole backlog into the initial leader;
    // closed loop starts everyone empty and the router submits.
    let preload = if scenario.window == 0 && i == 0 {
        backlog.to_vec()
    } else {
        Vec::new()
    };
    match scenario.mode_of(g) {
        GroupMode::CrashPmp => {
            let f_m = (scenario.m.max(1) - 1) / 2;
            let mut node = SmrNode::new(
                procs[i],
                procs.clone(),
                mems,
                leader,
                preload,
                f_m,
                Duration::from_delays(20),
            )
            .with_batch(scenario.batch)
            .with_observer(topo.router());
            if scenario.adaptive_batch > 0 {
                node = node.with_adaptive_batch(scenario.adaptive_batch);
            }
            if !scenario.disable_session_dedup {
                node = node.with_session_dedup();
            }
            ReplicaBuild::Crash(Box::new(node))
        }
        GroupMode::Byzantine => {
            let byz = byz.expect("Byzantine group without an authority");
            let mut node = ByzSmrNode::new(
                procs[i],
                procs.clone(),
                mems,
                leader,
                preload,
                byz.signers[&procs[i]].clone(),
                byz.auth.verifier(),
                Duration::from_delays(1),
            )
            .with_batch(scenario.batch)
            .with_pipeline_window(scenario.byz_pipeline_window)
            .with_fast_path(scenario.byz_fast_path)
            .with_observer(topo.router());
            if !scenario.disable_session_dedup {
                node = node.with_session_dedup();
            }
            ReplicaBuild::Byz(Box::new(node))
        }
    }
}

/// Builds group `g`'s memory actor for its failure mode: the PMP
/// permission-protected region (crash) or the non-equivocating broadcast
/// rows (Byzantine).
fn sharded_memory(
    scenario: &ShardedScenario,
    topo: &GroupTopology,
    g: usize,
) -> rdma_sim::MemoryActor<crate::types::RegVal, Msg> {
    match scenario.mode_of(g) {
        GroupMode::CrashPmp => protected::memory_actor(topo.initial_leader(g)),
        GroupMode::Byzantine => byz_memory_actor(&topo.procs(g)),
    }
}

/// Collects every replica's post-run state for the report reduction:
/// per-group replica logs plus the total dedup-suppression and
/// equivocation-block counts. One implementation for both kernel paths —
/// `node` resolves a `(replica id, group mode)` on whichever view
/// (monolithic `Simulation` or partitioned `ParActors`) the run finished
/// on, so a new report field only needs wiring once. Adversary-occupied
/// slots report an empty log and zero counters.
fn collect_replica_state(
    scenario: &ShardedScenario,
    topo: &GroupTopology,
    node: impl Fn(Pid, GroupMode) -> (Vec<Value>, u64, u64, u64, u64),
) -> (Vec<Vec<Vec<Value>>>, u64, u64, u64, u64) {
    let mut duplicates_suppressed = 0u64;
    let mut equivocations_blocked = 0u64;
    let mut receipts_rejected = 0u64;
    let mut fast_commits = 0u64;
    let logs = (0..scenario.groups)
        .map(|g| {
            topo.procs(g)
                .iter()
                .map(|&p| {
                    let (log, dups, equivs, forged, fast) = node(p, scenario.mode_of(g));
                    duplicates_suppressed += dups;
                    equivocations_blocked += equivs;
                    receipts_rejected += forged;
                    fast_commits += fast;
                    log
                })
                .collect()
        })
        .collect();
    (
        logs,
        duplicates_suppressed,
        equivocations_blocked,
        receipts_rejected,
        fast_commits,
    )
}

/// Resolves one replica's post-run state by downcasting to its mode's
/// node type on any actor view. Adversary slots (and crashed actors the
/// view no longer exposes) read as empty.
fn replica_state_of(
    log_dups: Option<(Vec<Value>, u64, u64, u64, u64)>,
) -> (Vec<Value>, u64, u64, u64, u64) {
    log_dups.unwrap_or((Vec::new(), 0, 0, 0, 0))
}

/// The classic single-kernel path (`partitions == 1`). `setup`, when
/// present, runs on the fully-built kernel after the scripted crashes and
/// announcements but before the first dispatch (see
/// [`run_sharded_instrumented`]).
fn run_sharded_monolithic(
    scenario: &ShardedScenario,
    topo: &GroupTopology,
    workload: sharded::PartitionedWorkload,
    setup: Option<impl FnOnce(&mut Simulation<Msg>)>,
) -> (ShardedRunReport, Vec<simnet::obs::Event>) {
    let mut sim: Simulation<Msg> = Simulation::new(scenario.seed);
    sim.set_default_delay(scenario.delay.clone());
    if scenario.obs_enabled() {
        sim.enable_obs();
    }
    let byz = byz_auth(scenario, topo);
    for g in 0..scenario.groups {
        for i in 0..scenario.n {
            let expect = topo.procs(g)[i];
            let id =
                match sharded_replica(scenario, topo, byz.as_ref(), &workload.backlogs[g], g, i) {
                    ReplicaBuild::Crash(node) => sim.add(*node),
                    ReplicaBuild::Byz(node) => sim.add(*node),
                    ReplicaBuild::Silent => sim.add(crate::adversary::SilentActor),
                    ReplicaBuild::Equivocator(adv) => sim.add(*adv),
                    ReplicaBuild::Forger(adv) => sim.add(*adv),
                };
            debug_assert_eq!(id, expect);
        }
        for &mem in &topo.mems(g) {
            let id = sim.add(sharded_memory(scenario, topo, g));
            debug_assert_eq!(id, mem);
        }
    }
    let router_id = sim.add(build_router(scenario, topo, workload));
    assert_eq!(router_id, topo.router(), "router must be the last actor");

    for &(g, t) in &scenario.crash_leaders {
        sim.crash_at(topo.initial_leader(g), Time::from_delays(t));
    }
    for &(g, i, t) in &scenario.announce {
        let mut targets = topo.procs(g);
        targets.push(topo.router());
        sim.announce_leader(Time::from_delays(t), &targets, topo.procs(g)[i]);
    }
    if let Some(setup) = setup {
        setup(&mut sim);
    }

    let deadline = Time::from_delays(scenario.max_delays);
    sim.run_until(deadline, |s| {
        s.actor_as::<RouterActor>(router_id)
            .is_some_and(RouterActor::done)
    });

    let events = sim.take_obs_events();
    let (logs, duplicates_suppressed, equivocations_blocked, receipts_rejected, fast_commits) =
        collect_replica_state(scenario, topo, |p, mode| {
            replica_state_of(match mode {
                GroupMode::CrashPmp => sim
                    .actor_as::<SmrNode>(p)
                    .map(|n| (n.log(), n.duplicates_suppressed(), 0, 0, 0)),
                GroupMode::Byzantine => sim.actor_as::<ByzSmrNode>(p).map(|n| {
                    (
                        n.log(),
                        n.duplicates_suppressed(),
                        n.equivocations_blocked(),
                        n.receipts_rejected(),
                        n.fast_commits(),
                    )
                }),
            })
        });
    let router = sim
        .actor_as::<RouterActor>(router_id)
        .expect("router exists");
    let peak = sim.metrics().peak_queue_len;
    let report = reduce_sharded(
        scenario,
        router,
        &logs,
        duplicates_suppressed,
        equivocations_blocked,
        receipts_rejected,
        fast_commits,
        sim.now(),
        sim.metrics(),
        vec![peak],
    );
    (report, events)
}

/// The partitioned parallel path (`partitions > 1`): groups in contiguous
/// partition blocks, router on partition 0, conservative-window execution
/// on [`ShardedScenario::threads`] worker threads. Same seed + partition
/// count ⇒ bit-identical reports for any thread count.
fn run_sharded_partitioned(
    scenario: &ShardedScenario,
    topo: &GroupTopology,
    workload: sharded::PartitionedWorkload,
) -> (ShardedRunReport, Vec<simnet::obs::Event>) {
    let lookahead = scenario.delay.min_delay();
    assert!(
        lookahead > Duration::ZERO,
        "partitioned execution needs links with a positive minimum delay"
    );
    let parts = scenario.partitions.clamp(1, scenario.groups.max(1));
    let mut sim: ParSimulation<Msg> = ParSimulation::new(scenario.seed, parts, lookahead);
    sim.set_threads(scenario.threads);
    sim.set_default_delay(scenario.delay.clone());
    if scenario.obs_enabled() {
        sim.enable_obs();
    }
    let byz = byz_auth(scenario, topo);
    for g in 0..scenario.groups {
        let part = topo.partition_of_group(g, parts);
        for i in 0..scenario.n {
            let expect = topo.procs(g)[i];
            let id =
                match sharded_replica(scenario, topo, byz.as_ref(), &workload.backlogs[g], g, i) {
                    ReplicaBuild::Crash(node) => sim.add_to(part, *node),
                    ReplicaBuild::Byz(node) => sim.add_to(part, *node),
                    ReplicaBuild::Silent => sim.add_to(part, crate::adversary::SilentActor),
                    ReplicaBuild::Equivocator(adv) => sim.add_to(part, *adv),
                    ReplicaBuild::Forger(adv) => sim.add_to(part, *adv),
                };
            debug_assert_eq!(id, expect);
        }
        for &mem in &topo.mems(g) {
            let id = sim.add_to(part, sharded_memory(scenario, topo, g));
            debug_assert_eq!(id, mem);
        }
    }
    let router_id = sim.add_to(0, build_router(scenario, topo, workload));
    assert_eq!(router_id, topo.router(), "router must be the last actor");

    for &(g, t) in &scenario.crash_leaders {
        sim.crash_at(topo.initial_leader(g), Time::from_delays(t));
    }
    for &(g, i, t) in &scenario.announce {
        let mut targets = topo.procs(g);
        targets.push(topo.router());
        sim.announce_leader(Time::from_delays(t), &targets, topo.procs(g)[i]);
    }

    let deadline = Time::from_delays(scenario.max_delays);
    sim.run_until(deadline, |view| {
        view.actor_as::<RouterActor>(router_id)
            .is_some_and(RouterActor::done)
    });

    let elapsed = sim.now();
    let metrics = sim.merged_metrics();
    let partition_peaks = sim.partition_peak_queue_lens();
    let events = sim.take_obs_events();
    let report = sim.with_actors(|view| {
        let (logs, duplicates_suppressed, equivocations_blocked, receipts_rejected, fast_commits) =
            collect_replica_state(scenario, topo, |p, mode| {
                replica_state_of(match mode {
                    GroupMode::CrashPmp => view
                        .actor_as::<SmrNode>(p)
                        .map(|n| (n.log(), n.duplicates_suppressed(), 0, 0, 0)),
                    GroupMode::Byzantine => view.actor_as::<ByzSmrNode>(p).map(|n| {
                        (
                            n.log(),
                            n.duplicates_suppressed(),
                            n.equivocations_blocked(),
                            n.receipts_rejected(),
                            n.fast_commits(),
                        )
                    }),
                })
            });
        let router = view
            .actor_as::<RouterActor>(router_id)
            .expect("router exists");
        reduce_sharded(
            scenario,
            router,
            &logs,
            duplicates_suppressed,
            equivocations_blocked,
            receipts_rejected,
            fast_commits,
            elapsed,
            &metrics,
            partition_peaks,
        )
    });
    (report, events)
}

/// Reduces one sharded run's raw outcome (per-replica logs + the router's
/// observations + merged kernel metrics) to a [`ShardedRunReport`]; shared
/// by the monolithic and partitioned kernel paths.
#[allow(clippy::too_many_arguments)]
fn reduce_sharded(
    scenario: &ShardedScenario,
    router: &RouterActor,
    replica_logs: &[Vec<Vec<Value>>],
    duplicates_suppressed: u64,
    equivocations_blocked: u64,
    byz_receipts_rejected: u64,
    byz_fast_commits: u64,
    elapsed: Time,
    metrics: &Metrics,
    partition_peak_queue_lens: Vec<u64>,
) -> ShardedRunReport {
    // The router's *final* assignment: migrated ids point at their
    // destination group, everything else at its workload partition. A
    // migrated id may legitimately sit in its old source log too — if it
    // committed there pre-flip the router usually never re-assigned it,
    // but a commit notification racing the flip (counted as
    // `cross_epoch_commits`) re-assigns an id whose source commit was
    // legitimate. Each such race explains at most one mismatched log
    // entry, so the leak verdict tolerates exactly that many.
    let group_of = router.group_assignment();
    let mut groups = Vec::with_capacity(scenario.groups);
    let mut assignment_mismatches = 0u64;
    let mut all_latencies: Vec<Vec<u64>> = Vec::with_capacity(scenario.groups);
    for (g, logs) in replica_logs.iter().enumerate() {
        let longest = logs
            .iter()
            .max_by_key(|l| l.len())
            .cloned()
            .unwrap_or_default();
        let logs_agree = logs.iter().all(|l| longest[..l.len()] == l[..]);
        for v in &longest {
            let id = v.0 as usize;
            if sharded::rebalance::decode_ctrl(*v).is_some() {
                continue; // migration seal/install entries live off-partition
            }
            if id != 0 && id < group_of.len() && group_of[id] as usize != g {
                assignment_mismatches += 1;
            }
        }
        let mut lat = router.group_latencies_ticks(g).to_vec();
        lat.sort_unstable();
        groups.push(ShardGroupReport {
            entries: longest.len(),
            committed: router.group_committed(g),
            p50_latency_ticks: sharded::metrics::percentile_sorted_ticks(&lat, 50.0),
            p99_latency_ticks: sharded::metrics::percentile_sorted_ticks(&lat, 99.0),
            max_commit_gap_ticks: sharded::metrics::max_gap_ticks(router.group_commit_times(g)),
            logs_agree,
            mode: scenario.mode_of(g),
            log: longest,
        });
        all_latencies.push(lat);
    }
    let service = sharded::metrics::merged_sorted_ticks(&all_latencies);
    let committed = router.committed_total();
    let elapsed_delays = elapsed.as_delays();
    // Last-quartile throughput: commits observed after 3/4 of the run's
    // virtual time, over the remaining quarter.
    let tail_start = Time(elapsed.0 - elapsed.0 / 4);
    let tail_commits: usize = (0..scenario.groups)
        .map(|g| {
            let times = router.group_commit_times(g);
            times.len() - times.partition_point(|&t| t < tail_start)
        })
        .sum();
    let tail_committed_per_delay =
        tail_commits as f64 / (elapsed_delays / 4.0).max(f64::MIN_POSITIVE);
    ShardedRunReport {
        total_entries: groups.iter().map(|g| g.entries).sum(),
        committed,
        all_committed: committed >= scenario.total_cmds,
        all_logs_agree: groups.iter().all(|g| g.logs_agree),
        no_cross_group_leak: assignment_mismatches <= router.cross_epoch_commits(),
        elapsed_delays,
        committed_per_delay: committed as f64 / elapsed_delays.max(f64::MIN_POSITIVE),
        tail_committed_per_delay,
        events_dispatched: metrics.events_dispatched,
        messages: metrics.messages_sent,
        mem_ops: metrics.mem_ops(),
        peak_queue_len: partition_peak_queue_lens.iter().copied().max().unwrap_or(0),
        partition_peak_queue_lens,
        duplicates_suppressed,
        service_p50_latency_ticks: sharded::metrics::percentile_sorted_ticks(&service, 50.0),
        service_p99_latency_ticks: sharded::metrics::percentile_sorted_ticks(&service, 99.0),
        migrations_completed: router.migrations_completed(),
        migration_windows_ticks: router.migration_windows_ticks(),
        routing_table_version: router.routing_version(),
        rerouted_commands: router.rerouted_commands(),
        cross_epoch_commits: router.cross_epoch_commits(),
        equivocations_blocked,
        byz_receipts_rejected,
        byz_unconfirmed_claims: router.byz_unconfirmed_claims(),
        byz_withheld_reports: router.byz_withheld_reports(),
        byz_fast_commits,
        byz_fast_confirms: router.byz_fast_confirms(),
        // Filled by `run_sharded_with_events` when the scenario records
        // spans (aggregation needs the merged event stream).
        span_stats: Vec::new(),
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_delay_numbers() {
        // The E2 table in one test: who is k-deciding for which k.
        let s = Scenario::common_case(3, 3, 42);
        assert_eq!(run_mp_paxos(&s).first_decision_delays, Some(2.0));
        assert_eq!(run_fast_paxos(&s, 1).first_decision_delays, Some(2.0));
        assert_eq!(run_disk_paxos(&s).first_decision_delays, Some(4.0));
        assert_eq!(run_protected(&s).first_decision_delays, Some(2.0));
        assert_eq!(run_fast_robust(&s, 60).0.first_decision_delays, Some(2.0));
        assert!(run_robust_backup(&s).0.first_decision_delays.unwrap() > 6.0);
    }

    #[test]
    fn reports_flag_agreement_and_validity() {
        let s = Scenario::common_case(3, 3, 7);
        for report in [
            run_mp_paxos(&s),
            run_disk_paxos(&s),
            run_protected(&s),
            run_aligned(&s, MemoryMode::DiskStyle),
            run_fast_robust(&s, 60).0,
        ] {
            assert!(report.all_decided, "{report:?}");
            assert!(report.agreement, "{report:?}");
            assert!(report.validity, "{report:?}");
        }
    }

    #[test]
    fn smr_harness_batching_preserves_log_and_speeds_commit() {
        let mut s = Scenario::common_case(3, 3, 5);
        s.max_delays = 400;
        let unbatched = run_smr(&s, 40);
        assert_eq!(unbatched.entries, 40);
        assert!(unbatched.logs_agree);

        s.batch = 8;
        let batched = run_smr(&s, 40);
        assert_eq!(batched.entries, 40);
        assert!(batched.logs_agree);
        // Identical committed history; only the commit cadence changes.
        assert_eq!(batched.log, unbatched.log);
        let t_batched = batched.decided_at_delays.last().copied().unwrap();
        let t_unbatched = unbatched.decided_at_delays.last().copied().unwrap();
        assert_eq!(t_unbatched, 80.0); // 2 delays per entry
        assert_eq!(t_batched, 10.0); // 2 delays per batch of 8
        assert!(batched.mem_ops < unbatched.mem_ops / 4);
    }

    #[test]
    fn sharded_open_loop_g1_keeps_the_single_group_pipeline() {
        let mut sc = ShardedScenario::common_case(1, 3, 3, 5);
        sc.total_cmds = 40;
        sc.window = 0; // open loop: preloaded leader, router observes
        sc.max_delays = 400;
        let r = run_sharded(&sc);
        assert!(r.all_committed, "{r:?}");
        assert!(r.all_logs_agree && r.no_cross_group_leak);
        assert_eq!(r.groups[0].entries, 40);
        assert_eq!(r.groups[0].committed, 40);
        // The group keeps run_smr's cadence: one entry per replicated
        // write, two delays each; the router observes one delay later.
        assert_eq!(
            r.groups[0].max_commit_gap_ticks,
            2 * simnet::TICKS_PER_DELAY
        );
        assert_eq!(r.elapsed_delays, 81.0);
    }

    #[test]
    fn sharded_closed_loop_commits_everything_across_groups() {
        let mut sc = ShardedScenario::common_case(4, 3, 3, 11);
        sc.total_cmds = 200;
        sc.batch = 4;
        sc.window = 8;
        let r = run_sharded(&sc);
        assert!(r.all_committed, "{r:?}");
        assert!(r.all_logs_agree && r.no_cross_group_leak);
        assert_eq!(r.committed, 200);
        assert_eq!(r.groups.iter().map(|g| g.committed).sum::<usize>(), 200);
        for (g, report) in r.groups.iter().enumerate() {
            assert!(report.committed > 0, "group {g} starved: {report:?}");
            assert!(report.p50_latency_ticks > 0);
            assert!(report.p99_latency_ticks >= report.p50_latency_ticks);
        }
    }

    #[test]
    fn sharded_failover_stalls_one_group_and_spares_the_rest() {
        let mut sc = ShardedScenario::common_case(3, 3, 3, 13);
        sc.total_cmds = 150;
        sc.window = 4;
        sc.max_delays = 5_000;
        sc.crash_leaders = vec![(1, 9)];
        sc.announce = vec![(1, 1, 60)];
        let r = run_sharded(&sc);
        assert!(r.all_committed, "{r:?}");
        assert!(r.all_logs_agree && r.no_cross_group_leak);
        // The crashed group's failover window dominates its commit gaps;
        // untouched groups never stall anywhere near it.
        let stalled = r.groups[1].max_commit_gap_ticks;
        assert!(
            stalled >= 50 * simnet::TICKS_PER_DELAY,
            "no failover stall visible: {stalled}"
        );
        for g in [0, 2] {
            assert!(
                r.groups[g].max_commit_gap_ticks < stalled / 2,
                "group {g} stalled too: {:?}",
                r.groups[g].max_commit_gap_ticks
            );
        }
    }

    #[test]
    fn span_stats_cover_the_lifecycle_and_leave_the_run_untouched() {
        let mut sc = ShardedScenario::common_case(2, 3, 3, 21);
        sc.total_cmds = 60;
        sc.window = 8;
        sc.group_modes = vec![GroupMode::CrashPmp, GroupMode::Byzantine];
        let base = run_sharded(&sc);
        assert!(base.all_committed, "{base:?}");
        assert!(base.span_stats.is_empty(), "spans off by default");

        let mut traced = sc.clone();
        traced.record_spans = true;
        let (r, events) = run_sharded_with_events(&traced);
        assert!(!events.is_empty(), "recording produced events");
        // Observation is read-only: the traced run's report matches the
        // untraced one field-for-field (span_stats aside).
        let mut stripped = r.clone();
        stripped.span_stats = Vec::new();
        assert_eq!(stripped, base);
        // Both groups' commands traversed every stage.
        assert_eq!(r.span_stats.len(), 2);
        for (g, stats) in r.span_stats.iter().enumerate() {
            assert_eq!(stats.group, g);
            assert_eq!(
                stats.spans as usize, r.groups[g].committed,
                "group {g}: every committed command spans submit→confirm"
            );
            let total = stats.stage("total").unwrap();
            assert_eq!(total.count(), stats.spans);
            assert!(total.p99() >= total.p50());
            for name in ["route", "propose", "decide", "confirm"] {
                assert!(
                    stats.stage(name).unwrap().count() > 0,
                    "group {g}: no {name} transitions"
                );
            }
        }
        // The Byzantine group's confirm stage carries the f + 1 quorum
        // wait; the crash group's confirm is one observer notification.
        let byz_confirm = r.span_stats[1].stage("confirm").unwrap().p50();
        let crash_confirm = r.span_stats[0].stage("confirm").unwrap().p50();
        assert!(
            byz_confirm >= crash_confirm,
            "byz confirm {byz_confirm} < crash confirm {crash_confirm}"
        );
    }

    #[test]
    fn scenario_accounting() {
        let mut s = Scenario::common_case(5, 3, 1);
        s.crash_procs.push((4, 0));
        s.byz_silent.push(3);
        assert_eq!(s.correct_procs(), vec![0, 1, 2]);
        assert_eq!(s.procs().len(), 5);
        assert_eq!(s.mems().len(), 3);
        assert_eq!(s.mems()[0], ActorId(5));
    }
}
