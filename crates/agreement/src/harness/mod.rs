//! One-call experiment builders: assemble a cluster, run a protocol under a
//! scripted failure scenario, and report the paper's metrics.
//!
//! Every benchmark, example and integration test goes through this module,
//! so experiment definitions stay in one place (DESIGN.md's per-experiment
//! index points here).

use std::collections::BTreeMap;

use sigsim::SigAuthority;
use simnet::{ActorId, DelayModel, Duration, KernelProfile, Simulation, Time};

use crate::aligned::{self, AlignedPaxosActor, MemoryMode};
use crate::cheap_quorum::{self, CheapQuorumActor};
use crate::disk_paxos::{self, DiskPaxosActor};
use crate::fast_paxos::FastPaxosActor;
use crate::fast_robust::{self, FastRobustActor};
use crate::nebcast;
use crate::paxos::PaxosActor;
use crate::protected::{self, ProtectedPaxosActor};
use crate::robust_backup::RobustPaxosActor;
use crate::smr::SmrNode;
use crate::types::{Instance, Msg, Pid, Value};

/// A scripted run: cluster shape, failures, leadership and timing.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Number of processes.
    pub n: usize,
    /// Number of memories (ignored by the message-passing baselines).
    pub m: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Link behaviour.
    pub delay: DelayModel,
    /// `(process index, crash time in delays)`.
    pub crash_procs: Vec<(usize, u64)>,
    /// `(memory index, crash time in delays)`.
    pub crash_mems: Vec<(usize, u64)>,
    /// Process indices replaced by silent Byzantine actors (Byzantine
    /// protocols only; crash protocols treat them as crashed-from-start).
    pub byz_silent: Vec<usize>,
    /// Scripted Ω announcements: `(time in delays, leader index)`.
    pub announce: Vec<(u64, usize)>,
    /// Virtual-time budget, in delays.
    pub max_delays: u64,
    /// SMR write batching: log entries per replicated write
    /// ([`run_smr`] only; single-decree protocols ignore it). `1` is the
    /// paper's unbatched protocol.
    pub batch: usize,
    /// Which kernel implementation to simulate on. Identical virtual-time
    /// results either way; [`KernelProfile::Legacy`] exists for baseline
    /// wall-clock measurement and differential testing.
    pub kernel: KernelProfile,
}

impl Scenario {
    /// The synchronous failure-free common case.
    pub fn common_case(n: usize, m: usize, seed: u64) -> Scenario {
        Scenario {
            n,
            m,
            seed,
            delay: DelayModel::synchronous(),
            crash_procs: Vec::new(),
            crash_mems: Vec::new(),
            byz_silent: Vec::new(),
            announce: Vec::new(),
            max_delays: 5_000,
            batch: 1,
            kernel: KernelProfile::Optimized,
        }
    }

    /// Builds the simulation this scenario runs on.
    fn simulation(&self) -> Simulation<Msg> {
        let mut sim = Simulation::with_profile(self.seed, self.kernel);
        sim.set_default_delay(self.delay.clone());
        sim
    }

    /// Process ids `0..n`.
    pub fn procs(&self) -> Vec<Pid> {
        (0..self.n as u32).map(ActorId).collect()
    }

    /// Memory ids `n..n+m`.
    pub fn mems(&self) -> Vec<ActorId> {
        (self.n as u32..(self.n + self.m) as u32)
            .map(ActorId)
            .collect()
    }

    /// Indices of processes expected to decide (correct, never-crashed).
    pub fn correct_procs(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|i| {
                !self.byz_silent.contains(i) && !self.crash_procs.iter().any(|(c, _)| c == i)
            })
            .collect()
    }

    /// The input value of process `i` (fixed convention: `100 + i`).
    pub fn input(i: usize) -> Value {
        Value(100 + i as u64)
    }

    fn apply_failures(&self, sim: &mut Simulation<Msg>) {
        for &(i, t) in &self.crash_procs {
            sim.crash_at(ActorId(i as u32), Time::from_delays(t));
        }
        for &(j, t) in &self.crash_mems {
            let mem = self.mems()[j];
            sim.crash_at(mem, Time::from_delays(t));
        }
        let procs = self.procs();
        for &(t, l) in &self.announce {
            sim.announce_leader(Time::from_delays(t), &procs, ActorId(l as u32));
        }
    }
}

/// Metrics extracted from one run — the quantities the paper reports.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Decisions of the processes expected to decide.
    pub decisions: BTreeMap<Pid, Value>,
    /// Whether every expected process decided within the budget.
    pub all_decided: bool,
    /// Whether all reached decisions are equal.
    pub agreement: bool,
    /// Whether the decision is some process's input (validity; meaningful
    /// in runs without Byzantine processes).
    pub validity: bool,
    /// Delay of the earliest decision, in network delays (the k in
    /// "k-deciding").
    pub first_decision_delays: Option<f64>,
    /// Messages put on the network (includes memory-operation legs).
    pub messages: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// Signatures created / verified (0 for unsigned protocols).
    pub signatures: (u64, u64),
    /// Virtual time when the run stopped, in delays.
    pub elapsed_delays: f64,
}

fn finish<A: 'static>(
    mut sim: Simulation<Msg>,
    scenario: &Scenario,
    auth: Option<&SigAuthority>,
    decision_of: impl Fn(&A) -> Option<Value>,
) -> RunReport {
    let expected: Vec<Pid> = scenario
        .correct_procs()
        .iter()
        .map(|&i| ActorId(i as u32))
        .collect();
    let deadline = Time::from_delays(scenario.max_delays);
    sim.run_until(deadline, |s| {
        expected
            .iter()
            .all(|&p| s.actor_as::<A>(p).is_some_and(|a| decision_of(a).is_some()))
    });
    let mut decisions = BTreeMap::new();
    for &p in &expected {
        if let Some(v) = sim.actor_as::<A>(p).and_then(&decision_of) {
            decisions.insert(p, v);
        }
    }
    let vals: Vec<Value> = decisions.values().copied().collect();
    let valid_inputs: Vec<Value> = (0..scenario.n).map(Scenario::input).collect();
    RunReport {
        all_decided: decisions.len() == expected.len(),
        agreement: vals.windows(2).all(|w| w[0] == w[1]),
        validity: vals.iter().all(|v| valid_inputs.contains(v)),
        first_decision_delays: sim.metrics().first_decision_delays(),
        messages: sim.metrics().messages_sent,
        mem_ops: sim.metrics().mem_ops(),
        signatures: auth.map_or((0, 0), |a| (a.signatures_created(), a.verifications())),
        elapsed_delays: sim.now().as_delays(),
        decisions,
    }
}

/// Runs message-passing Paxos (baseline; memories unused).
pub fn run_mp_paxos(scenario: &Scenario) -> RunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    for i in 0..scenario.n {
        sim.add(PaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            Scenario::input(i),
            Some(ActorId(0)),
            Duration::from_delays(25),
        ));
    }
    scenario.apply_failures(&mut sim);
    finish::<PaxosActor>(sim, scenario, None, |a| a.decision())
}

/// Runs Fast Paxos (baseline; `proposer` proposes at start).
pub fn run_fast_paxos(scenario: &Scenario, proposer: usize) -> RunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    for i in 0..scenario.n {
        sim.add(FastPaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            Scenario::input(i),
            i == proposer,
            ActorId(0),
            Duration::from_delays(30),
        ));
    }
    scenario.apply_failures(&mut sim);
    finish::<FastPaxosActor>(sim, scenario, None, |a| a.decision())
}

/// Runs Disk Paxos (baseline).
pub fn run_disk_paxos(scenario: &Scenario) -> RunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    for i in 0..scenario.n {
        sim.add(DiskPaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            Instance(0),
            Scenario::input(i),
            Some(ActorId(0)),
            Duration::from_delays(25),
        ));
    }
    for _ in 0..scenario.m {
        sim.add(disk_paxos::disk_actor(&procs));
    }
    scenario.apply_failures(&mut sim);
    finish::<DiskPaxosActor>(sim, scenario, None, |a| a.decision())
}

/// Runs Protected Memory Paxos (Theorem 5.1).
pub fn run_protected(scenario: &Scenario) -> RunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    let f_m = (scenario.m.max(1) - 1) / 2;
    for i in 0..scenario.n {
        sim.add(ProtectedPaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            Instance(0),
            Scenario::input(i),
            ActorId(0),
            f_m,
            Duration::from_delays(25),
        ));
    }
    for _ in 0..scenario.m {
        sim.add(protected::memory_actor(ActorId(0)));
    }
    scenario.apply_failures(&mut sim);
    finish::<ProtectedPaxosActor>(sim, scenario, None, |a| a.decision())
}

/// Runs Aligned Paxos (§5.2) in the given memory mode.
pub fn run_aligned(scenario: &Scenario, mode: MemoryMode) -> RunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    for i in 0..scenario.n {
        sim.add(AlignedPaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            Instance(0),
            Scenario::input(i),
            ActorId(0),
            mode,
            Duration::from_delays(30),
        ));
    }
    for _ in 0..scenario.m {
        sim.add(aligned::memory_actor(mode, &procs, ActorId(0)));
    }
    scenario.apply_failures(&mut sim);
    finish::<AlignedPaxosActor>(sim, scenario, None, |a| a.decision())
}

/// Runs standalone Cheap Quorum with the given timeout (in delays). Note:
/// Cheap Quorum may abort; `all_decided` then reports false and callers
/// inspect aborts through their own builds — the composed protocol is
/// [`run_fast_robust`].
pub fn run_cheap_quorum(scenario: &Scenario, timeout: u64) -> (RunReport, SigAuthority) {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    let mut auth = SigAuthority::new(scenario.seed ^ 0xCAFE);
    for i in 0..scenario.n {
        let signer = auth.register(ActorId(i as u32));
        if scenario.byz_silent.contains(&i) {
            sim.add(crate::adversary::SilentActor);
            continue;
        }
        sim.add(CheapQuorumActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            ActorId(0),
            Scenario::input(i),
            signer,
            auth.verifier(),
            Duration::from_delays(1),
            Duration::from_delays(timeout),
        ));
    }
    for _ in 0..scenario.m {
        sim.add(cheap_quorum::memory_actor(&procs, ActorId(0)));
    }
    scenario.apply_failures(&mut sim);
    let report = finish::<CheapQuorumActor>(sim, scenario, Some(&auth), |a| a.decision());
    (report, auth)
}

/// Runs the composed Fast & Robust protocol (Theorem 4.9).
pub fn run_fast_robust(scenario: &Scenario, timeout: u64) -> (RunReport, SigAuthority) {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    let mut auth = SigAuthority::new(scenario.seed ^ 0xBEEF);
    for i in 0..scenario.n {
        let signer = auth.register(ActorId(i as u32));
        if scenario.byz_silent.contains(&i) {
            sim.add(crate::adversary::SilentActor);
            continue;
        }
        sim.add(FastRobustActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            ActorId(0),
            Scenario::input(i),
            signer,
            auth.verifier(),
            Duration::from_delays(1),
            Duration::from_delays(timeout),
            Duration::from_delays(120),
        ));
    }
    for _ in 0..scenario.m {
        sim.add(fast_robust::memory_actor(&procs, ActorId(0)));
    }
    scenario.apply_failures(&mut sim);
    let report = finish::<FastRobustActor>(sim, scenario, Some(&auth), |a| a.decision());
    (report, auth)
}

/// Runs the slow path alone: Robust Backup over trusted channels
/// (Theorem 4.4).
pub fn run_robust_backup(scenario: &Scenario) -> (RunReport, SigAuthority) {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    let mut auth = SigAuthority::new(scenario.seed ^ 0xD00D);
    for i in 0..scenario.n {
        let signer = auth.register(ActorId(i as u32));
        if scenario.byz_silent.contains(&i) {
            sim.add(crate::adversary::SilentActor);
            continue;
        }
        sim.add(RobustPaxosActor::new(
            ActorId(i as u32),
            procs.clone(),
            mems.clone(),
            Scenario::input(i),
            Some(ActorId(0)),
            signer,
            auth.verifier(),
            Duration::from_delays(1),
            Duration::from_delays(80),
        ));
    }
    for _ in 0..scenario.m {
        let mut mem = rdma_sim::MemoryActor::new(rdma_sim::LegalChange::Static);
        nebcast::configure_memory(&mut mem, &procs);
        sim.add(mem);
    }
    scenario.apply_failures(&mut sim);
    let report = finish::<RobustPaxosActor>(sim, scenario, Some(&auth), |a| a.decision());
    (report, auth)
}

/// What a replicated-log run produced (the E10b quantities).
#[derive(Clone, Debug)]
pub struct SmrRunReport {
    /// Length of the leader's contiguous decided prefix.
    pub entries: usize,
    /// The leader's log.
    pub log: Vec<Value>,
    /// Whether every correct replica's log is a prefix-consistent match.
    pub logs_agree: bool,
    /// Virtual time when the run stopped, in delays.
    pub elapsed_delays: f64,
    /// Virtual-time cost per committed entry, in delays.
    pub delays_per_entry: f64,
    /// Kernel events dispatched over the run (wall-clock denominator).
    pub events_dispatched: u64,
    /// Messages put on the network.
    pub messages: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// When the leader decided each slot, in delays.
    pub decided_at_delays: Vec<f64>,
}

/// Runs the replicated log (SMR over Protected Memory Paxos): every node
/// wants `cmds_per_node` commands committed; process 0 leads. Honours
/// [`Scenario::batch`] and [`Scenario::kernel`].
pub fn run_smr(scenario: &Scenario, cmds_per_node: usize) -> SmrRunReport {
    let mut sim = scenario.simulation();
    let procs = scenario.procs();
    let mems = scenario.mems();
    let f_m = (scenario.m.max(1) - 1) / 2;
    for i in 0..scenario.n {
        let workload: Vec<Value> = (0..cmds_per_node)
            .map(|c| Value(1000 * (i as u64 + 1) + c as u64))
            .collect();
        sim.add(
            SmrNode::new(
                ActorId(i as u32),
                procs.clone(),
                mems.clone(),
                ActorId(0),
                workload,
                f_m,
                Duration::from_delays(20),
            )
            .with_batch(scenario.batch),
        );
    }
    for _ in 0..scenario.m {
        sim.add(protected::memory_actor(ActorId(0)));
    }
    scenario.apply_failures(&mut sim);
    sim.run_to_quiescence(Time::from_delays(scenario.max_delays));

    let leader = sim.actor_as::<SmrNode>(ActorId(0)).expect("leader exists");
    let log = leader.log();
    let mut decided = leader.decided_at.clone();
    decided.sort_by_key(|&(instance, _)| instance);
    let decided_at_delays: Vec<f64> = decided.iter().map(|&(_, t)| t.as_delays()).collect();
    let logs_agree = scenario.correct_procs().iter().all(|&i| {
        let other = sim
            .actor_as::<SmrNode>(ActorId(i as u32))
            .expect("replica exists")
            .log();
        let common = log.len().min(other.len());
        log[..common] == other[..common]
    });
    let entries = log.len();
    SmrRunReport {
        entries,
        logs_agree,
        elapsed_delays: sim.now().as_delays(),
        delays_per_entry: sim.now().as_delays() / entries.max(1) as f64,
        events_dispatched: sim.metrics().events_dispatched,
        messages: sim.metrics().messages_sent,
        mem_ops: sim.metrics().mem_ops(),
        decided_at_delays,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_delay_numbers() {
        // The E2 table in one test: who is k-deciding for which k.
        let s = Scenario::common_case(3, 3, 42);
        assert_eq!(run_mp_paxos(&s).first_decision_delays, Some(2.0));
        assert_eq!(run_fast_paxos(&s, 1).first_decision_delays, Some(2.0));
        assert_eq!(run_disk_paxos(&s).first_decision_delays, Some(4.0));
        assert_eq!(run_protected(&s).first_decision_delays, Some(2.0));
        assert_eq!(run_fast_robust(&s, 60).0.first_decision_delays, Some(2.0));
        assert!(run_robust_backup(&s).0.first_decision_delays.unwrap() > 6.0);
    }

    #[test]
    fn reports_flag_agreement_and_validity() {
        let s = Scenario::common_case(3, 3, 7);
        for report in [
            run_mp_paxos(&s),
            run_disk_paxos(&s),
            run_protected(&s),
            run_aligned(&s, MemoryMode::DiskStyle),
            run_fast_robust(&s, 60).0,
        ] {
            assert!(report.all_decided, "{report:?}");
            assert!(report.agreement, "{report:?}");
            assert!(report.validity, "{report:?}");
        }
    }

    #[test]
    fn smr_harness_batching_preserves_log_and_speeds_commit() {
        let mut s = Scenario::common_case(3, 3, 5);
        s.max_delays = 400;
        let unbatched = run_smr(&s, 40);
        assert_eq!(unbatched.entries, 40);
        assert!(unbatched.logs_agree);

        s.batch = 8;
        let batched = run_smr(&s, 40);
        assert_eq!(batched.entries, 40);
        assert!(batched.logs_agree);
        // Identical committed history; only the commit cadence changes.
        assert_eq!(batched.log, unbatched.log);
        let t_batched = batched.decided_at_delays.last().copied().unwrap();
        let t_unbatched = unbatched.decided_at_delays.last().copied().unwrap();
        assert_eq!(t_unbatched, 80.0); // 2 delays per entry
        assert_eq!(t_batched, 10.0); // 2 delays per batch of 8
        assert!(batched.mem_ops < unbatched.mem_ops / 4);
    }

    #[test]
    fn legacy_kernel_scenario_matches_optimized() {
        let s = Scenario::common_case(3, 3, 42);
        let mut legacy = s.clone();
        legacy.kernel = KernelProfile::Legacy;
        let a = run_protected(&s);
        let b = run_protected(&legacy);
        assert_eq!(a.first_decision_delays, b.first_decision_delays);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.mem_ops, b.mem_ops);
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn scenario_accounting() {
        let mut s = Scenario::common_case(5, 3, 1);
        s.crash_procs.push((4, 0));
        s.byz_silent.push(3);
        assert_eq!(s.correct_procs(), vec![0, 1, 2]);
        assert_eq!(s.procs().len(), 5);
        assert_eq!(s.mems().len(), 3);
        assert_eq!(s.mems()[0], ActorId(5));
    }
}
