//! # agreement — the algorithms of *The Impact of RDMA on Agreement*
//!
//! A from-scratch reproduction of Aguilera, Ben-David, Guerraoui, Marathe
//! and Zablotchi (PODC 2019) on a simulated message-and-memory substrate:
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Non-equivocating broadcast (Alg. 2, Lemma 4.1) | [`nebcast`] |
//! | T-send/T-receive + history checking (Alg. 3) | [`trusted`] |
//! | Robust Backup (Def. 2, Thm 4.2/4.4) | [`robust_backup`] |
//! | Cheap Quorum (Alg. 4/5, Lemmas 4.5/4.6, B.6) | [`cheap_quorum`] |
//! | Preferential Paxos (Alg. 8, Lemma 4.7) | [`pref_paxos`] |
//! | Fast & Robust composition (§4.3, Thm 4.9) | [`fast_robust`] |
//! | Protected Memory Paxos (Alg. 7, Thm 5.1) | [`protected`] |
//! | Aligned Paxos (§5.2, Algs. 9–15) | [`aligned`] |
//! | Lower bound (Thm 6.1) | [`lower_bound`] |
//! | Replicated log on PMP (multi-instance) | [`smr`] |
//! | Sharded multi-group log service (router + groups) | [`sharded`] |
//! | Baselines: Paxos, Disk Paxos, Fast Paxos | [`paxos`], [`disk_paxos`], [`fast_paxos`] |
//! | Byzantine adversaries | [`adversary`] |
//! | One-call experiment builders | [`harness`] |
//! | Scenario fuzzer + safety oracle + shrinker | [`fuzz`] |
//! | Systematic schedule exploration (DPOR-lite) | [`explore`] |
//! | Command-lifecycle spans + latency histograms | [`spans`] |
//!
//! # Example
//!
//! Run the headline Byzantine protocol in its common case and observe the
//! paper's 2-delay decision:
//!
//! ```
//! use agreement::harness::{run_fast_robust, Scenario};
//!
//! let scenario = Scenario::common_case(3, 3, 42); // n=3 procs, m=3 mems
//! let (report, _signatures) = run_fast_robust(&scenario, 60);
//! assert!(report.all_decided && report.agreement && report.validity);
//! assert_eq!(report.first_decision_delays, Some(2.0)); // Theorem 4.9
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod aligned;
pub mod cheap_quorum;
pub mod disk_paxos;
pub mod explore;
pub mod fast_paxos;
pub mod fast_robust;
pub mod fuzz;
pub mod harness;
pub mod lower_bound;
pub mod nebcast;
pub mod paxos;
pub mod pref_paxos;
pub mod protected;
pub mod robust_backup;
pub mod sharded;
pub mod smr;
pub mod spans;
pub mod trusted;
pub mod types;

pub use types::{Ballot, Instance, Msg, Pid, PriorityClass, RegVal, Value};
