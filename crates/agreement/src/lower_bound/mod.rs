//! Theorem 6.1, executable: **no 2-deciding consensus exists in shared
//! memory with static permissions** — dynamic permissions are necessary,
//! not just convenient.
//!
//! The proof constructs an adversarial (but legal, asynchronous) schedule
//! against *any* algorithm whose process `p` decides after two delays. Two
//! delays buy exactly one parallel batch of memory operations, issued
//! without awaiting any response; let `W` be the registers `p` writes and
//! `R` those it reads (`W ∩ R = ∅`). The adversary:
//!
//! 1. lets `p`'s *reads* complete but delays its *writes* indefinitely
//!    (legal: asynchronous operations may take arbitrarily long);
//! 2. `p` sees only initial values, and — being 2-deciding — decides its
//!    own value `v`;
//! 3. now runs `p′` alone: with static permissions nothing distinguishes
//!    this from a solo execution, so `p′` eventually decides its own
//!    `v′ ≠ v`;
//! 4. finally delivers `p`'s stale writes. Agreement is violated.
//!
//! [`StrawmanActor`] is the canonical 2-deciding shape (write own flag,
//! read the others, decide if all ⊥); [`run_strawman_demo`] executes the
//! schedule above and reports the violation. The companion
//! [`run_protected_contrast`] replays the *same* adversarial delay against
//! Protected Memory Paxos: the late write arrives **after** the new
//! leader's `changePermission`, gets nak'd by the memory, and agreement
//! survives — the paper's §5.1 mechanism, demonstrated on the §6 schedule.

use std::collections::BTreeMap;

use rdma_sim::{
    LegalChange, MemRequest, MemResponse, MemWire, MemoryActor, MemoryClient, Permission, RegId,
    RegionId, RegionSpec,
};
use simnet::{Actor, ActorId, Context, Duration, EventKind, Simulation, Time};

use crate::protected::{self, ProtectedPaxosActor};
use crate::types::{spaces, Instance, Msg, Pid, RegVal, Value};

/// Region of process `p`'s flag (SWMR, static).
pub fn flag_region(p: Pid) -> RegionId {
    RegionId(0x7000 + p.0)
}

/// The flag register of process `p`.
pub fn flag_reg(p: Pid) -> RegId {
    RegId::one(spaces::LB, p.0 as u64)
}

/// Builds the static-permission memory hosting one process's flag.
pub fn flag_memory(procs: &[Pid]) -> MemoryActor<RegVal, Msg> {
    let mut mem = MemoryActor::new(LegalChange::Static);
    for &p in procs {
        mem.add_region(
            flag_region(p),
            RegionSpec::Pattern {
                space: spaces::LB,
                a: Some(p.0 as u64),
                b: None,
                c: None,
            },
            Permission::exclusive_writer(p),
        );
    }
    mem
}

/// A 2-deciding protocol shape in static-permission shared memory: at its
/// start time it issues, in one step, a write of its own flag and reads of
/// everyone else's; if every read returns ⊥ it decides its own value.
///
/// (Each flag lives on its own memory so the batch respects the
/// one-outstanding-op-per-memory rule and completes in two delays.)
#[derive(Debug)]
pub struct StrawmanActor {
    me: Pid,
    peers: Vec<Pid>,
    /// flag\[q\] is hosted on `memory_of[q]`.
    memory_of: BTreeMap<Pid, ActorId>,
    input: Value,
    start_after: Duration,
    client: MemoryClient<RegVal, Msg>,
    reads_pending: usize,
    saw_nonbot: bool,
    /// The decision, if reached.
    pub decided: Option<Value>,
    /// When the decision happened.
    pub decided_at: Option<Time>,
}

impl StrawmanActor {
    /// Creates the actor; it proposes `start_after` its Start event.
    pub fn new(
        me: Pid,
        peers: Vec<Pid>,
        memory_of: BTreeMap<Pid, ActorId>,
        input: Value,
        start_after: Duration,
    ) -> StrawmanActor {
        StrawmanActor {
            me,
            peers,
            memory_of,
            input,
            start_after,
            client: MemoryClient::new(),
            reads_pending: 0,
            saw_nonbot: false,
            decided: None,
            decided_at: None,
        }
    }
}

impl Actor<Msg> for StrawmanActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                ctx.set_timer(self.start_after, 0);
            }
            EventKind::Timer { .. } => {
                // One step: write own flag and read all others, no waiting.
                let own_mem = self.memory_of[&self.me];
                self.client.write(
                    ctx,
                    own_mem,
                    flag_region(self.me),
                    flag_reg(self.me),
                    RegVal::LbFlag(self.input),
                );
                for q in self.peers.clone() {
                    if q == self.me {
                        continue;
                    }
                    self.reads_pending += 1;
                    self.client
                        .read(ctx, self.memory_of[&q], flag_region(q), flag_reg(q));
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let Some(c) = self.client.on_wire(ctx, from, wire) else {
                    return;
                };
                // Non-Value responses are the write ack (or a nak —
                // impossible here).
                if let MemResponse::Value(v) = c.resp {
                    self.reads_pending -= 1;
                    if v.is_some() {
                        self.saw_nonbot = true;
                    }
                    if self.reads_pending == 0 && !self.saw_nonbot {
                        // All ⊥: uncontended, decide own value — the
                        // only way any algorithm can be 2-deciding.
                        self.decided = Some(self.input);
                        self.decided_at = Some(ctx.now());
                        ctx.mark_decided();
                    }
                }
            }
            EventKind::Msg { .. } => {}
            EventKind::LeaderChange { .. } => {}
        }
    }
}

/// Result of one lower-bound schedule run.
#[derive(Clone, Debug)]
pub struct DemoReport {
    /// Per-process decisions.
    pub decisions: Vec<(Pid, Option<Value>)>,
    /// Whether two processes decided different values.
    pub agreement_violated: bool,
    /// Delay (in network delays) after which the first process decided.
    pub first_decision_delays: Option<f64>,
}

fn delayed_writes_hook(victim: Pid, delay: Duration) -> simnet::DelayHook<Msg> {
    Box::new(move |_, from, _, m| {
        if from != victim {
            return None;
        }
        match m {
            Msg::Mem(MemWire::Req {
                req: MemRequest::Write { .. },
                ..
            }) => Some(delay),
            _ => None,
        }
    })
}

/// Executes the Theorem 6.1 schedule against the strawman: returns a report
/// in which **agreement is violated** — as it must be for any 2-deciding
/// static-permission algorithm.
pub fn run_strawman_demo(seed: u64) -> DemoReport {
    let mut sim: Simulation<Msg> = Simulation::new(seed);
    let p0 = ActorId(0);
    let p1 = ActorId(1);
    let procs = vec![p0, p1];
    let memory_of: BTreeMap<Pid, ActorId> = [(p0, ActorId(2)), (p1, ActorId(3))].into();
    sim.add(StrawmanActor::new(
        p0,
        procs.clone(),
        memory_of.clone(),
        Value(0),
        Duration::ZERO,
    ));
    sim.add(StrawmanActor::new(
        p1,
        procs.clone(),
        memory_of.clone(),
        Value(1),
        Duration::from_delays(10), // p′ starts after p has decided
    ));
    sim.add(flag_memory(&procs));
    sim.add(flag_memory(&procs));
    // The adversary: p0's writes hang in the network for a long time.
    sim.set_delay_hook(delayed_writes_hook(p0, Duration::from_delays(100)));
    sim.run_to_quiescence(Time::from_delays(300));
    let decisions: Vec<(Pid, Option<Value>)> = [p0, p1]
        .iter()
        .map(|&p| (p, sim.actor_as::<StrawmanActor>(p).unwrap().decided))
        .collect();
    let reached: Vec<Value> = decisions.iter().filter_map(|(_, d)| *d).collect();
    DemoReport {
        agreement_violated: reached.len() == 2 && reached[0] != reached[1],
        first_decision_delays: sim.metrics().first_decision_delays(),
        decisions,
    }
}

/// Replays the same adversarial write-delay against Protected Memory Paxos:
/// the delayed write arrives after the takeover's `changePermission` and is
/// nak'd, so agreement holds — dynamic permissions close the Theorem 6.1
/// gap exactly as §5.1 claims.
pub fn run_protected_contrast(seed: u64) -> DemoReport {
    let mut sim: Simulation<Msg> = Simulation::new(seed);
    let procs: Vec<Pid> = vec![ActorId(0), ActorId(1)];
    let mems: Vec<ActorId> = vec![ActorId(2), ActorId(3), ActorId(4)];
    for i in 0..2u32 {
        sim.add(ProtectedPaxosActor::new(
            ActorId(i),
            procs.clone(),
            mems.clone(),
            Instance(0),
            Value(i as u64),
            ActorId(0),
            1,
            Duration::from_delays(25),
        ));
    }
    for _ in 0..3 {
        sim.add(protected::memory_actor(ActorId(0)));
    }
    sim.set_delay_hook(delayed_writes_hook(ActorId(0), Duration::from_delays(100)));
    // p1 takes over while p0's (delayed) fast-path write is in flight.
    sim.announce_leader(Time::from_delays(5), &procs, ActorId(1));
    sim.run_to_quiescence(Time::from_delays(1000));
    let decisions: Vec<(Pid, Option<Value>)> = procs
        .iter()
        .map(|&p| {
            (
                p,
                sim.actor_as::<ProtectedPaxosActor>(p).unwrap().decision(),
            )
        })
        .collect();
    let reached: Vec<Value> = decisions.iter().filter_map(|(_, d)| *d).collect();
    DemoReport {
        agreement_violated: reached.windows(2).any(|w| w[0] != w[1]),
        first_decision_delays: sim.metrics().first_decision_delays(),
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strawman_violates_agreement_under_theorem_schedule() {
        let report = run_strawman_demo(7);
        assert!(report.agreement_violated, "{report:?}");
        // And it really was 2-deciding, which is what makes it vulnerable.
        assert_eq!(report.first_decision_delays, Some(2.0));
    }

    #[test]
    fn strawman_decides_correctly_without_adversary() {
        // Sanity: solo proposer, no delay hook → decides own value in 2.
        let mut sim: Simulation<Msg> = Simulation::new(1);
        let p0 = ActorId(0);
        let p1 = ActorId(1);
        let procs = vec![p0, p1];
        let memory_of: BTreeMap<Pid, ActorId> = [(p0, ActorId(2)), (p1, ActorId(3))].into();
        sim.add(StrawmanActor::new(
            p0,
            procs.clone(),
            memory_of.clone(),
            Value(0),
            Duration::ZERO,
        ));
        sim.add(crate::adversary::SilentActor);
        sim.add(flag_memory(&procs));
        sim.add(flag_memory(&procs));
        sim.run_to_quiescence(Time::from_delays(50));
        let a = sim.actor_as::<StrawmanActor>(p0).unwrap();
        assert_eq!(a.decided, Some(Value(0)));
        assert_eq!(a.decided_at, Some(Time::from_delays(2)));
    }

    #[test]
    fn protected_paxos_survives_the_same_schedule() {
        let report = run_protected_contrast(7);
        assert!(!report.agreement_violated, "{report:?}");
        // Someone still decides (liveness after takeover).
        assert!(
            report.decisions.iter().any(|(_, d)| d.is_some()),
            "{report:?}"
        );
    }

    #[test]
    fn contrast_is_deterministic_per_seed() {
        let a = run_strawman_demo(3);
        let b = run_strawman_demo(3);
        assert_eq!(a.agreement_violated, b.agreement_violated);
        assert_eq!(a.first_decision_delays, b.first_decision_delays);
    }
}
