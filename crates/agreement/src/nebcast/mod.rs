//! Non-equivocating broadcast (Algorithm 2 of the paper).
//!
//! The primitive that lets RDMA beat the `3·f_P + 1` Byzantine bound: a
//! Byzantine process cannot deliver *different* values for the same sequence
//! number to different correct processes.
//!
//! Layout: a 3-dimensional array of SWMR registers, `slots[p, k, q]`, all
//! replicated over the `m` memories (see `swmr`). Per §7, each memory
//! registers the whole array read-only for everyone (region [`ALL_REGION`])
//! plus each process's row write-exclusive for that process (overlapping
//! regions, exactly as RDMA protection domains allow).
//!
//! * `broadcast(k, m)`: `p` writes `sign((k, m))` into `slots[p, k, p]`.
//! * `try_deliver(q)`: `p` (1) reads `slots[q, k, q]` — retrying later if
//!   ⊥, badly signed, or mis-keyed; (2) copies the signed value into its own
//!   audit slot `slots[p, k, q]`; (3) reads the whole `(k, q)` column (one
//!   strided range read). If any *validly signed, same-key, different-value*
//!   copy exists, `q` equivocated and delivery is withheld forever;
//!   otherwise `p` delivers and advances `Last[q]`.
//!
//! Cost: the broadcast write is 2 delays; a delivery is read + copy + audit
//! = **6 delays** — the footnote-2 figure that explains why Robust Backup
//! alone cannot be 2-deciding, and why Cheap Quorum exists.
//!
//! The engine below is a sub-state-machine (like [`swmr::RepEngine`]):
//! actors call [`NebEngine::poll`] periodically, feed every replication
//! event through `NebEngine::on_rep_event`, and drain deliveries.

use std::collections::{BTreeMap, VecDeque};

use rdma_sim::{MemoryClient, Permission, RegId, RegionId, RegionSpec};
use sigsim::{SigVerifier, Signature, Signer};
use simnet::Context;
use swmr::{RepEngine, RepEvent, RepId, RepResult};

use crate::trusted::TWire;
use crate::types::{spaces, Msg, Pid, RegVal};

/// Region id of process `p`'s writable row on each memory.
pub fn row_region(p: Pid) -> RegionId {
    RegionId(0x1000 + p.0)
}

/// Region id of the read-only whole-array region on each memory.
pub const ALL_REGION: RegionId = RegionId(0x1FFF);

/// The register `slots[i, k, q]`.
pub fn slot_reg(i: Pid, k: u64, q: Pid) -> RegId {
    RegId::new(spaces::NEB, i.0 as u64, k, q.0 as u64)
}

/// Marks a *delivery receipt* register: the `k` coordinate of
/// [`receipt_reg`] carries this bit so receipts never collide with (or
/// match audit reads of) the broadcast slots themselves.
pub const RECEIPT_BIT: u64 = 1 << 63;

/// The register holding `i`'s delivery receipt for `(q, k)` — written
/// via [`NebEngine::acknowledge`] after `i` delivers *and accepts* `q`'s
/// `k`-th broadcast, holding the delivered slot verbatim. Receipts live in
/// the deliverer's own writable row, so a Byzantine broadcaster cannot
/// forge a receipt for a correct process; a takeover scan
/// ([`crate::smr::ByzSmrNode`]) uses them to prefer values some correct
/// process actually settled over values that were merely written.
pub fn receipt_reg(i: Pid, k: u64, q: Pid) -> RegId {
    RegId::new(spaces::NEB, i.0 as u64, k | RECEIPT_BIT, q.0 as u64)
}

/// Declares the broadcast regions on a memory actor (row regions overlap
/// the all-region, as §7's protection-domain construction does).
pub fn configure_memory(mem: &mut rdma_sim::MemoryActor<RegVal, Msg>, procs: &[Pid]) {
    for &p in procs {
        mem.add_region(
            row_region(p),
            RegionSpec::row(spaces::NEB, p.0 as u64),
            Permission::exclusive_writer(p),
        );
    }
    mem.add_region(
        ALL_REGION,
        RegionSpec::Space(spaces::NEB),
        Permission::read_only(),
    );
}

/// A slot value: the signed `(k, wire)` pair written by a broadcaster (and
/// copied verbatim by auditors).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NebSlot {
    /// The sequence number.
    pub k: u64,
    /// The broadcast content.
    pub wire: TWire,
    /// The broadcaster's signature over [`TWire::sign_view`] at `k`.
    pub sig: Signature,
}

/// A delivered broadcast.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The broadcaster.
    pub from: Pid,
    /// Its sequence number.
    pub k: u64,
    /// The content.
    pub wire: TWire,
    /// The broadcaster's signature (evidence for trusted histories).
    pub sig: Signature,
}

enum Attempt {
    ReadSlot(RepId),
    Copy { slot: NebSlot, rep: RepId },
    Audit { slot: NebSlot, rep: RepId },
}

/// The non-equivocating broadcast state machine for one process.
pub struct NebEngine {
    me: Pid,
    procs: Vec<Pid>,
    signer: Signer,
    verifier: SigVerifier,
    rep: RepEngine<RegVal, Msg>,
    next_k: u64,
    last: BTreeMap<Pid, u64>,
    attempts: BTreeMap<Pid, Attempt>,
    /// Senders caught equivocating; no further deliveries are attempted.
    blocked: BTreeMap<Pid, u64>,
    deliveries: VecDeque<Delivery>,
}

impl std::fmt::Debug for NebEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NebEngine")
            .field("me", &self.me)
            .field("next_k", &self.next_k)
            .field("last", &self.last)
            .field("blocked", &self.blocked)
            .finish()
    }
}

impl NebEngine {
    /// Creates the engine for process `me` over the given memories.
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        memories: Vec<simnet::ActorId>,
        signer: Signer,
        verifier: SigVerifier,
    ) -> NebEngine {
        let last = procs.iter().map(|&q| (q, 1)).collect();
        NebEngine {
            me,
            procs,
            signer,
            verifier,
            rep: RepEngine::new(memories),
            next_k: 1,
            last,
            attempts: BTreeMap::new(),
            blocked: BTreeMap::new(),
            deliveries: VecDeque::new(),
        }
    }

    /// Writes this process's delivery receipt for `d` (a fire-and-forget
    /// replicated write of the delivered slot into [`receipt_reg`]).
    ///
    /// Deliberately *not* automatic: a receipt asserts "a correct process
    /// accepted this broadcast", so the application must acknowledge only
    /// deliveries it actually acts on — [`crate::smr::ByzSmrNode`] calls
    /// this for batches it settles, never for parked wires from senders
    /// Ω has not designated leader (an engine-level delivery alone proves
    /// ordering, not acceptance).
    pub fn acknowledge(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        d: &Delivery,
    ) {
        self.rep.write(
            ctx,
            client,
            row_region(self.me),
            receipt_reg(self.me, d.k, d.from),
            RegVal::Neb(NebSlot {
                k: d.k,
                wire: d.wire.clone(),
                sig: d.sig,
            }),
        );
    }

    /// The next sequence number this process will broadcast with.
    pub fn next_k(&self) -> u64 {
        self.next_k
    }

    /// Broadcasts `wire`, returning the sequence number used.
    pub fn broadcast(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        wire: TWire,
    ) -> u64 {
        let k = self.next_k;
        self.next_k += 1;
        let sig = self.signer.sign(&wire.sign_view(k));
        let slot = NebSlot { k, wire, sig };
        self.rep.write(
            ctx,
            client,
            row_region(self.me),
            slot_reg(self.me, k, self.me),
            RegVal::Neb(slot),
        );
        k
    }

    /// Starts a delivery attempt for every sender without one in flight.
    /// Call periodically (this is Algorithm 2's outer `while true` loop,
    /// paced by the caller's timer).
    pub fn poll(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        for q in self.procs.clone() {
            if self.attempts.contains_key(&q) || self.blocked.contains_key(&q) {
                continue;
            }
            let k = self.last[&q];
            let rep = self.rep.read(ctx, client, ALL_REGION, slot_reg(q, k, q));
            self.attempts.insert(q, Attempt::ReadSlot(rep));
        }
    }

    /// Whether `q` has been caught equivocating (at which sequence number).
    pub fn blocked_at(&self, q: Pid) -> Option<u64> {
        self.blocked.get(&q).copied()
    }

    /// Feeds a memory completion through the replication layer. Returns
    /// true if the completion belonged to this engine (deliveries, if any,
    /// are queued — drain with [`NebEngine::take_deliveries`]).
    pub fn on_completion(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        completion: rdma_sim::Completion<RegVal>,
    ) -> bool {
        let Some(ev) = self.rep.on_completion(completion) else {
            return false;
        };
        self.on_rep_event(ctx, client, ev);
        true
    }

    fn on_rep_event(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        ev: RepEvent<RegVal>,
    ) {
        // Find which sender's attempt this event advances.
        let Some((&q, _)) = self.attempts.iter().find(|(_, a)| match a {
            Attempt::ReadSlot(r) | Attempt::Copy { rep: r, .. } | Attempt::Audit { rep: r, .. } => {
                *r == ev.id
            }
        }) else {
            return;
        };
        let attempt = self.attempts.remove(&q).expect("found above");
        let k = self.last[&q];
        match (attempt, ev.result) {
            (Attempt::ReadSlot(_), RepResult::ReadOk(Some(RegVal::Neb(slot)))) => {
                // Step 1 checks: signed by q, keyed k.
                if slot.k != k
                    || !self
                        .verifier
                        .valid(q, &slot.wire.sign_view(slot.k), &slot.sig)
                {
                    return; // pretend we saw nothing; retry next poll
                }
                let rep = self.rep.write(
                    ctx,
                    client,
                    row_region(self.me),
                    slot_reg(self.me, k, q),
                    RegVal::Neb(slot.clone()),
                );
                self.attempts.insert(q, Attempt::Copy { slot, rep });
            }
            (Attempt::ReadSlot(_), _) => {} // ⊥ / junk / failed: retry later
            (Attempt::Copy { slot, .. }, RepResult::WriteOk) => {
                let rep = self.rep.read_range(
                    ctx,
                    client,
                    ALL_REGION,
                    Some(RegionSpec::Pattern {
                        space: spaces::NEB,
                        a: None,
                        b: Some(k),
                        c: Some(q.0 as u64),
                    }),
                );
                self.attempts.insert(q, Attempt::Audit { slot, rep });
            }
            (Attempt::Copy { .. }, _) => {} // copy failed: retry later
            (Attempt::Audit { slot, .. }, RepResult::RangeOk(column)) => {
                for (_, other) in column {
                    let RegVal::Neb(other) = other else { continue };
                    if other.k == k
                        && other.wire != slot.wire
                        && self
                            .verifier
                            .valid(q, &other.wire.sign_view(other.k), &other.sig)
                    {
                        // q signed two different messages for k: equivocation.
                        ctx.note_with(|| format!("nebcast: {q} equivocated at k={k}"));
                        self.blocked.insert(q, k);
                        return;
                    }
                }
                self.deliveries.push_back(Delivery {
                    from: q,
                    k,
                    wire: slot.wire,
                    sig: slot.sig,
                });
                *self.last.get_mut(&q).expect("known sender") += 1;
            }
            (Attempt::Audit { .. }, _) => {} // audit failed: retry later
        }
    }

    /// Drains queued deliveries (in per-sender sequence order).
    pub fn take_deliveries(&mut self) -> Vec<Delivery> {
        self.deliveries.drain(..).collect()
    }
}
