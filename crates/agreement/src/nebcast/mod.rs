//! Non-equivocating broadcast (Algorithm 2 of the paper).
//!
//! The primitive that lets RDMA beat the `3·f_P + 1` Byzantine bound: a
//! Byzantine process cannot deliver *different* values for the same sequence
//! number to different correct processes.
//!
//! Layout: a 3-dimensional array of SWMR registers, `slots[p, k, q]`, all
//! replicated over the `m` memories (see `swmr`). Per §7, each memory
//! registers the whole array read-only for everyone (region [`ALL_REGION`])
//! plus each process's row write-exclusive for that process (overlapping
//! regions, exactly as RDMA protection domains allow).
//!
//! * `broadcast(k, m)`: `p` writes `sign((k, m))` into `slots[p, k, p]`.
//! * `try_deliver(q)`: `p` (1) reads `slots[q, k, q]` — retrying later if
//!   ⊥, badly signed, or mis-keyed; (2) copies the signed value into its own
//!   audit slot `slots[p, k, q]`; (3) reads the whole `(k, q)` column (one
//!   strided range read). If any *validly signed, same-key, different-value*
//!   copy exists, `q` equivocated and delivery is withheld forever;
//!   otherwise `p` delivers and advances `Last[q]`.
//!
//! Cost: the broadcast write is 2 delays; a delivery is read + copy + audit
//! = **6 delays** — the footnote-2 figure that explains why Robust Backup
//! alone cannot be 2-deciding, and why Cheap Quorum exists.
//!
//! The engine below is a sub-state-machine (like [`swmr::RepEngine`]):
//! actors call [`NebEngine::poll`] periodically, feed every replication
//! event through `NebEngine::on_rep_event`, and drain deliveries.
//!
//! Delivery attempts are keyed `(sender, k)`, so the engine can probe a
//! *window* of a sender's upcoming slots concurrently
//! ([`NebEngine::set_pipeline_depth`] / [`NebEngine::set_focus`]) while
//! still releasing deliveries strictly in per-sender sequence order —
//! audited slots that complete out of order wait in a ready buffer until
//! `Last[q]` reaches them. At the default depth 1 the engine is
//! move-for-move identical to the classic head-of-line loop.
//!
//! Pipelining must respect the model's scarcest resource: a process may
//! have **one outstanding operation per memory** (§3), and replicated
//! operations go to *all* memories, so every logical op — useful or not —
//! serializes through the same per-memory FIFO at a full round-trip each.
//! Naive depth-`W` probing (`W` speculative reads per poll) floods that
//! FIFO with ⊥-reads and makes deeper windows *slower*. In pipelined mode
//! (`depth > 1`) the engine therefore spends ops only where they pay:
//!
//! * **Row-probe discovery** — the focused sender's row is scanned with a
//!   single strided range read (one op discovers every written slot, and
//!   the returned values skip the per-slot read entirely, going straight
//!   to the copy step).
//! * **Shared column audit** — one range read over all the sender's
//!   columns audits every pending copy at once, amortizing the audit
//!   across the window (the copy-before-audit order each slot needs is
//!   preserved: a slot is only covered by an audit read issued after its
//!   copy completed).
//! * **Idle-row backoff** — rows that read ⊥ are re-probed with
//!   exponential backoff (capped), so rows that are idle in steady state
//!   (followers never broadcast) stop consuming FIFO slots.

use std::collections::{BTreeMap, VecDeque};

use rdma_sim::{MemoryClient, Permission, RegId, RegionId, RegionSpec};
use sigsim::{SigVerifier, Signature, Signer};
use simnet::Context;
use swmr::{RepEngine, RepEvent, RepId, RepResult};

use crate::trusted::TWire;
use crate::types::{spaces, Msg, Pid, RegVal};

/// Region id of process `p`'s writable row on each memory.
pub fn row_region(p: Pid) -> RegionId {
    RegionId(0x1000 + p.0)
}

/// Region id of the read-only whole-array region on each memory.
pub const ALL_REGION: RegionId = RegionId(0x1FFF);

/// The register `slots[i, k, q]`.
pub fn slot_reg(i: Pid, k: u64, q: Pid) -> RegId {
    RegId::new(spaces::NEB, i.0 as u64, k, q.0 as u64)
}

/// Marks a *delivery receipt* register: the `k` coordinate of
/// [`receipt_reg`] carries this bit so receipts never collide with (or
/// match audit reads of) the broadcast slots themselves.
pub const RECEIPT_BIT: u64 = 1 << 63;

/// The register holding `i`'s delivery receipt for `(q, k)` — written
/// via [`NebEngine::acknowledge`] after `i` delivers *and accepts* `q`'s
/// `k`-th broadcast, holding the delivered slot verbatim. Receipts live in
/// the deliverer's own writable row, so a Byzantine broadcaster cannot
/// forge a receipt for a correct process; a takeover scan
/// ([`crate::smr::ByzSmrNode`]) uses them to prefer values some correct
/// process actually settled over values that were merely written.
pub fn receipt_reg(i: Pid, k: u64, q: Pid) -> RegId {
    RegId::new(spaces::NEB, i.0 as u64, k | RECEIPT_BIT, q.0 as u64)
}

/// Declares the broadcast regions on a memory actor (row regions overlap
/// the all-region, as §7's protection-domain construction does).
pub fn configure_memory(mem: &mut rdma_sim::MemoryActor<RegVal, Msg>, procs: &[Pid]) {
    for &p in procs {
        mem.add_region(
            row_region(p),
            RegionSpec::row(spaces::NEB, p.0 as u64),
            Permission::exclusive_writer(p),
        );
    }
    mem.add_region(
        ALL_REGION,
        RegionSpec::Space(spaces::NEB),
        Permission::read_only(),
    );
}

/// A slot value: the signed `(k, wire)` pair written by a broadcaster (and
/// copied verbatim by auditors).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NebSlot {
    /// The sequence number.
    pub k: u64,
    /// The broadcast content.
    pub wire: TWire,
    /// The broadcaster's signature over [`TWire::sign_view`] at `k`.
    pub sig: Signature,
}

/// A delivered broadcast.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The broadcaster.
    pub from: Pid,
    /// Its sequence number.
    pub k: u64,
    /// The content.
    pub wire: TWire,
    /// The broadcaster's signature (evidence for trusted histories).
    pub sig: Signature,
}

enum Attempt {
    ReadSlot(RepId),
    Copy { slot: NebSlot, rep: RepId },
    Audit { slot: NebSlot, rep: RepId },
}

/// The non-equivocating broadcast state machine for one process.
pub struct NebEngine {
    me: Pid,
    procs: Vec<Pid>,
    signer: Signer,
    verifier: SigVerifier,
    rep: RepEngine<RegVal, Msg>,
    next_k: u64,
    last: BTreeMap<Pid, u64>,
    /// In-flight delivery attempts, keyed `(sender, k)` — up to
    /// `depth` concurrent slots for the focused sender, one for the rest.
    attempts: BTreeMap<(Pid, u64), Attempt>,
    /// Senders caught equivocating; no further deliveries are attempted.
    blocked: BTreeMap<Pid, u64>,
    deliveries: VecDeque<Delivery>,
    /// How many of the focused sender's slots to probe concurrently
    /// (1 = the classic head-of-line loop).
    depth: usize,
    /// The one sender probed `depth` slots ahead (the group's leader —
    /// followers' rows stay at depth 1 to avoid read amplification on
    /// rows that are idle in steady state).
    focus: Option<Pid>,
    /// Whether this process runs delivery attempts on its *own* row.
    /// On (the default) is Algorithm 2 verbatim. A fast-path leader
    /// turns it off: it settles own broadcasts at the write ack instead
    /// ([`NebEngine::take_broadcast_written`]), and its self-audit is
    /// vacuous — the copy target `slots[p, k, p]` *is* the broadcast
    /// register, and a correct process never equivocates against itself.
    self_delivery: bool,
    /// Whether [`NebEngine::broadcast`] write acks are tracked and
    /// surfaced through [`NebEngine::take_broadcast_written`].
    observe_writes: bool,
    /// Outstanding broadcast writes being tracked: completion id → k.
    bcast_writes: BTreeMap<RepId, u64>,
    /// Sequence numbers whose broadcast write has been acknowledged by a
    /// replication quorum, not yet drained by the owner.
    written: Vec<u64>,
    /// Audited-but-unreleased deliveries: slots that passed their audit
    /// out of order, waiting for `Last[q]` to reach them.
    ready: BTreeMap<(Pid, u64), Delivery>,
    /// Poll ticks seen (the idle-row backoff clock).
    polls: u64,
    /// Pipelined discovery: at most one in-flight whole-row range read
    /// per focused sender, replacing per-slot probes.
    row_probe: BTreeMap<Pid, RepId>,
    /// Completed copies awaiting the next shared column audit.
    await_audit: BTreeMap<(Pid, u64), NebSlot>,
    /// At most one in-flight shared column audit per sender: the read id
    /// and the slots it covers (each covered slot's copy completed before
    /// the read was issued, preserving Algorithm 2's copy-then-audit
    /// order).
    col_audit: BTreeMap<Pid, (RepId, Vec<(u64, NebSlot)>)>,
    /// Idle-row backoff (pipelined mode only): earliest poll tick at
    /// which a sender's row may be probed again, and the current backoff.
    idle_until: BTreeMap<Pid, u64>,
    idle_backoff: BTreeMap<Pid, u64>,
}

/// Longest the idle-row backoff may defer a probe, in poll ticks. Bounds
/// the extra discovery latency on a cold row (e.g. a brand-new leader's
/// first broadcast) while keeping steady-state waste negligible.
const IDLE_BACKOFF_CAP: u64 = 16;

impl std::fmt::Debug for NebEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NebEngine")
            .field("me", &self.me)
            .field("next_k", &self.next_k)
            .field("last", &self.last)
            .field("blocked", &self.blocked)
            .finish()
    }
}

impl NebEngine {
    /// Creates the engine for process `me` over the given memories.
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        memories: Vec<simnet::ActorId>,
        signer: Signer,
        verifier: SigVerifier,
    ) -> NebEngine {
        let last = procs.iter().map(|&q| (q, 1)).collect();
        NebEngine {
            me,
            procs,
            signer,
            verifier,
            rep: RepEngine::new(memories),
            next_k: 1,
            last,
            attempts: BTreeMap::new(),
            blocked: BTreeMap::new(),
            deliveries: VecDeque::new(),
            depth: 1,
            focus: None,
            self_delivery: true,
            observe_writes: false,
            bcast_writes: BTreeMap::new(),
            written: Vec::new(),
            ready: BTreeMap::new(),
            polls: 0,
            row_probe: BTreeMap::new(),
            await_audit: BTreeMap::new(),
            col_audit: BTreeMap::new(),
            idle_until: BTreeMap::new(),
            idle_backoff: BTreeMap::new(),
        }
    }

    /// Sets how many of the focused sender's slots are probed
    /// concurrently (clamped to at least 1; 1 is the classic loop).
    pub fn set_pipeline_depth(&mut self, depth: usize) {
        self.depth = depth.max(1);
    }

    /// Sets the one sender probed `depth` slots ahead (the group's
    /// current leader; everyone else stays at depth 1).
    pub fn set_focus(&mut self, focus: Option<Pid>) {
        self.focus = focus;
    }

    /// Enables or disables delivery attempts on this process's own row
    /// (see the `self_delivery` field; a fast-path leader disables it).
    pub fn set_self_delivery(&mut self, on: bool) {
        self.self_delivery = on;
    }

    /// Enables or disables broadcast write-ack tracking
    /// ([`NebEngine::take_broadcast_written`]).
    pub fn set_observe_writes(&mut self, on: bool) {
        self.observe_writes = on;
    }

    /// Drains the sequence numbers whose broadcast write has completed
    /// since the last call (empty unless write observation is on).
    pub fn take_broadcast_written(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.written)
    }

    /// Writes this process's delivery receipt for `d` (a fire-and-forget
    /// replicated write of the delivered slot into [`receipt_reg`]).
    ///
    /// Deliberately *not* automatic: a receipt asserts "a correct process
    /// accepted this broadcast", so the application must acknowledge only
    /// deliveries it actually acts on — [`crate::smr::ByzSmrNode`] calls
    /// this for batches it settles, never for parked wires from senders
    /// Ω has not designated leader (an engine-level delivery alone proves
    /// ordering, not acceptance).
    pub fn acknowledge(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        d: &Delivery,
    ) {
        self.rep.write(
            ctx,
            client,
            row_region(self.me),
            receipt_reg(self.me, d.k, d.from),
            RegVal::Neb(NebSlot {
                k: d.k,
                wire: d.wire.clone(),
                sig: d.sig,
            }),
        );
    }

    /// The next sequence number this process will broadcast with.
    pub fn next_k(&self) -> u64 {
        self.next_k
    }

    /// Broadcasts `wire`, returning the sequence number used.
    pub fn broadcast(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        wire: TWire,
    ) -> u64 {
        let k = self.next_k;
        self.next_k += 1;
        let sig = self.signer.sign(&wire.sign_view(k));
        let slot = NebSlot { k, wire, sig };
        let rep = self.rep.write(
            ctx,
            client,
            row_region(self.me),
            slot_reg(self.me, k, self.me),
            RegVal::Neb(slot),
        );
        if self.observe_writes {
            self.bcast_writes.insert(rep, k);
        }
        k
    }

    /// Starts delivery attempts for every sender slot in window without
    /// one in flight. Call periodically (this is Algorithm 2's outer
    /// `while true` loop, paced by the caller's timer).
    pub fn poll(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        self.polls += 1;
        for q in self.procs.clone() {
            self.launch_attempts(ctx, client, q);
        }
    }

    /// Launches missing delivery attempts on `q`'s row. In pipelined mode
    /// the focused sender's row is discovered by a single range read (see
    /// the module docs); everyone else gets the classic head-slot probe,
    /// deferred by the idle backoff when the row keeps reading ⊥.
    fn launch_attempts(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        q: Pid,
    ) {
        if self.blocked.contains_key(&q) || (!self.self_delivery && q == self.me) {
            return;
        }
        if self.depth > 1 && self.focus == Some(q) {
            // The shared column audit's range read also returns q's own
            // row, so it doubles as discovery; the dedicated row probe
            // only runs when q's pipeline is completely dry (nothing in
            // flight whose completion would discover new slots).
            let busy = self.col_audit.contains_key(&q)
                || self.attempts.range((q, 0)..=(q, u64::MAX)).next().is_some()
                || self
                    .await_audit
                    .range((q, 0)..=(q, u64::MAX))
                    .next()
                    .is_some();
            if !busy && !self.row_probe.contains_key(&q) {
                let rep = self.rep.read_range(
                    ctx,
                    client,
                    ALL_REGION,
                    Some(RegionSpec::Pattern {
                        space: spaces::NEB,
                        a: Some(q.0 as u64),
                        b: None,
                        c: Some(q.0 as u64),
                    }),
                );
                self.row_probe.insert(q, rep);
            }
            self.maybe_launch_audit(ctx, client, q);
            return;
        }
        if self.depth > 1 {
            // Copies orphaned by a focus change still need their audit.
            if self.await_audit.keys().any(|&(aq, _)| aq == q) {
                self.maybe_launch_audit(ctx, client, q);
            }
            if self.polls < self.idle_until.get(&q).copied().unwrap_or(0) {
                return;
            }
        }
        let head = self.last[&q];
        if self.attempts.contains_key(&(q, head))
            || self.ready.contains_key(&(q, head))
            || self.await_audit.contains_key(&(q, head))
        {
            return;
        }
        let rep = self.rep.read(ctx, client, ALL_REGION, slot_reg(q, head, q));
        self.attempts.insert((q, head), Attempt::ReadSlot(rep));
    }

    /// Adopts the slots returned by a row probe of `q`: every validly
    /// signed, in-window, not-yet-attempted slot goes straight to the
    /// copy step (the probe already read its value).
    fn adopt_row(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        q: Pid,
        rows: BTreeMap<RegId, RegVal>,
    ) {
        if self.blocked.contains_key(&q) {
            return;
        }
        let depth = if self.depth > 1 && self.focus == Some(q) {
            self.depth as u64
        } else {
            1
        };
        let head = self.last[&q];
        let covered = |s: &Self, k: u64| {
            s.col_audit
                .get(&q)
                .is_some_and(|(_, cov)| cov.iter().any(|&(ck, _)| ck == k))
        };
        for (reg, val) in rows {
            if reg.b & RECEIPT_BIT != 0 {
                continue; // q's self-receipts share the row; not slots
            }
            let k = reg.b;
            if k < head
                || k >= head + depth
                || self.attempts.contains_key(&(q, k))
                || self.ready.contains_key(&(q, k))
                || self.await_audit.contains_key(&(q, k))
                || covered(self, k)
            {
                continue;
            }
            let RegVal::Neb(slot) = val else { continue };
            if slot.k != k
                || !self
                    .verifier
                    .valid(q, &slot.wire.sign_view(slot.k), &slot.sig)
            {
                continue;
            }
            let rep = self.rep.write(
                ctx,
                client,
                row_region(self.me),
                slot_reg(self.me, k, q),
                RegVal::Neb(slot.clone()),
            );
            self.attempts.insert((q, k), Attempt::Copy { slot, rep });
        }
    }

    /// Issues the shared column audit for `q` if none is in flight and
    /// copies are waiting: one range read over all of `q`'s columns covers
    /// every pending slot at once.
    fn maybe_launch_audit(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        q: Pid,
    ) {
        if self.col_audit.contains_key(&q) {
            return;
        }
        let keys: Vec<u64> = self
            .await_audit
            .range((q, 0)..=(q, u64::MAX))
            .map(|(&(_, k), _)| k)
            .collect();
        if keys.is_empty() {
            return;
        }
        let covered: Vec<(u64, NebSlot)> = keys
            .into_iter()
            .map(|k| (k, self.await_audit.remove(&(q, k)).expect("listed above")))
            .collect();
        let rep = self.rep.read_range(
            ctx,
            client,
            ALL_REGION,
            Some(RegionSpec::Pattern {
                space: spaces::NEB,
                a: None,
                b: None,
                c: Some(q.0 as u64),
            }),
        );
        self.col_audit.insert(q, (rep, covered));
    }

    /// Drops every in-flight structure for `q` after it was caught
    /// equivocating — nothing from an equivocator is ever delivered.
    fn purge(&mut self, q: Pid) {
        self.attempts.retain(|&(aq, _), _| aq != q);
        self.ready.retain(|&(rq, _), _| rq != q);
        self.await_audit.retain(|&(aq, _), _| aq != q);
        self.row_probe.remove(&q);
        self.col_audit.remove(&q);
    }

    /// Moves `ready` slots at the head of `q`'s sequence into the delivery
    /// queue; returns whether anything was released.
    fn release_ready(&mut self, q: Pid) -> bool {
        let mut released = false;
        loop {
            let head = self.last[&q];
            let Some(d) = self.ready.remove(&(q, head)) else {
                break;
            };
            self.deliveries.push_back(d);
            *self.last.get_mut(&q).expect("known sender") += 1;
            released = true;
        }
        released
    }

    /// Whether `q` has been caught equivocating (at which sequence number).
    pub fn blocked_at(&self, q: Pid) -> Option<u64> {
        self.blocked.get(&q).copied()
    }

    /// Feeds a memory completion through the replication layer. Returns
    /// true if the completion belonged to this engine (deliveries, if any,
    /// are queued — drain with [`NebEngine::take_deliveries`]).
    pub fn on_completion(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        completion: rdma_sim::Completion<RegVal>,
    ) -> bool {
        let Some(ev) = self.rep.on_completion(completion) else {
            return false;
        };
        self.on_rep_event(ctx, client, ev);
        true
    }

    fn on_rep_event(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        ev: RepEvent<RegVal>,
    ) {
        // Tracked broadcast write acks surface to the owner (empty map —
        // the default — makes this a no-op).
        if let Some(k) = self.bcast_writes.remove(&ev.id) {
            if matches!(ev.result, RepResult::WriteOk) {
                self.written.push(k);
            }
            return;
        }
        // Row-probe completions (pipelined discovery).
        if let Some((&q, _)) = self.row_probe.iter().find(|(_, &r)| r == ev.id) {
            self.row_probe.remove(&q);
            if let RepResult::RangeOk(rows) = ev.result {
                self.adopt_row(ctx, client, q, rows);
            }
            return; // the next poll tick relaunches the probe
        }
        // Shared column-audit completions.
        if let Some((&q, _)) = self.col_audit.iter().find(|(_, (r, _))| *r == ev.id) {
            let (_, covered) = self.col_audit.remove(&q).expect("found above");
            self.on_col_audit(ctx, client, q, covered, ev.result);
            return;
        }
        // Find which delivery attempt this event advances.
        let Some((&(q, k), _)) = self.attempts.iter().find(|(_, a)| match a {
            Attempt::ReadSlot(r) | Attempt::Copy { rep: r, .. } | Attempt::Audit { rep: r, .. } => {
                *r == ev.id
            }
        }) else {
            return;
        };
        let attempt = self.attempts.remove(&(q, k)).expect("found above");
        match (attempt, ev.result) {
            (Attempt::ReadSlot(_), RepResult::ReadOk(Some(RegVal::Neb(slot)))) => {
                // Step 1 checks: signed by q, keyed k.
                if slot.k != k
                    || !self
                        .verifier
                        .valid(q, &slot.wire.sign_view(slot.k), &slot.sig)
                {
                    return; // pretend we saw nothing; retry next poll
                }
                if self.depth > 1 {
                    self.idle_backoff.insert(q, 1); // the row woke up
                }
                let rep = self.rep.write(
                    ctx,
                    client,
                    row_region(self.me),
                    slot_reg(self.me, k, q),
                    RegVal::Neb(slot.clone()),
                );
                self.attempts.insert((q, k), Attempt::Copy { slot, rep });
            }
            (Attempt::ReadSlot(_), _) => {
                // ⊥ / junk / failed: retry later. In pipelined mode an
                // idle row backs off exponentially — speculative reads
                // compete with useful ops for the per-memory FIFO slots.
                if self.depth > 1 && self.focus != Some(q) {
                    let b = self.idle_backoff.entry(q).or_insert(1);
                    self.idle_until.insert(q, self.polls + *b);
                    *b = (*b * 2).min(IDLE_BACKOFF_CAP);
                }
            }
            (Attempt::Copy { slot, .. }, RepResult::WriteOk) => {
                if self.depth > 1 && self.focus == Some(q) {
                    // Pipelined: join the next shared column audit.
                    self.await_audit.insert((q, k), slot);
                    self.maybe_launch_audit(ctx, client, q);
                    return;
                }
                let rep = self.rep.read_range(
                    ctx,
                    client,
                    ALL_REGION,
                    Some(RegionSpec::Pattern {
                        space: spaces::NEB,
                        a: None,
                        b: Some(k),
                        c: Some(q.0 as u64),
                    }),
                );
                self.attempts.insert((q, k), Attempt::Audit { slot, rep });
            }
            (Attempt::Copy { .. }, _) => {} // copy failed: retry later
            (Attempt::Audit { slot, .. }, RepResult::RangeOk(column)) => {
                for (_, other) in column {
                    let RegVal::Neb(other) = other else { continue };
                    if other.k == k
                        && other.wire != slot.wire
                        && self
                            .verifier
                            .valid(q, &other.wire.sign_view(other.k), &other.sig)
                    {
                        // q signed two different messages for k: equivocation.
                        ctx.note_with(|| format!("nebcast: {q} equivocated at k={k}"));
                        self.blocked.insert(q, k);
                        // Abandon the rest of q's window: nothing from an
                        // equivocator is ever delivered (no-ops at depth 1).
                        self.purge(q);
                        return;
                    }
                }
                // Audited out-of-order slots wait in the ready buffer;
                // deliveries are released strictly in sequence order.
                self.ready.insert(
                    (q, k),
                    Delivery {
                        from: q,
                        k,
                        wire: slot.wire,
                        sig: slot.sig,
                    },
                );
                let released = self.release_ready(q);
                // Per-slot completion chaining: a released head frees
                // window room — probe q's next slots now instead of
                // waiting for the timer (classic depth keeps the timer
                // cadence, bit-identical to the head-of-line loop).
                if released && self.depth > 1 {
                    self.launch_attempts(ctx, client, q);
                }
            }
            (Attempt::Audit { .. }, _) => {} // audit failed: retry later
        }
    }

    /// Resolves a completed shared column audit: checks every covered
    /// slot's column for a validly signed conflicting copy, then releases
    /// the survivors in sequence order.
    fn on_col_audit(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        q: Pid,
        covered: Vec<(u64, NebSlot)>,
        result: RepResult<RegVal>,
    ) {
        let RepResult::RangeOk(all) = result else {
            // Audit read failed: the covered slots rejoin the queue and
            // the next poll retries.
            for (k, slot) in covered {
                self.await_audit.insert((q, k), slot);
            }
            return;
        };
        if self.blocked.contains_key(&q) {
            return;
        }
        for (k, slot) in covered {
            for (reg, other) in &all {
                if reg.b != k {
                    continue; // other columns and receipts (RECEIPT_BIT)
                }
                let RegVal::Neb(other) = other else { continue };
                if other.k == k
                    && other.wire != slot.wire
                    && self
                        .verifier
                        .valid(q, &other.wire.sign_view(other.k), &other.sig)
                {
                    ctx.note_with(|| format!("nebcast: {q} equivocated at k={k}"));
                    self.blocked.insert(q, k);
                    self.purge(q);
                    return;
                }
            }
            self.ready.insert(
                (q, k),
                Delivery {
                    from: q,
                    k,
                    wire: slot.wire,
                    sig: slot.sig,
                },
            );
        }
        self.release_ready(q);
        // The audit read covered q's whole column space, including q's
        // own row — adopt any newly written in-window slots from it
        // directly (audit doubles as discovery).
        let fresh: BTreeMap<RegId, RegVal> = all
            .into_iter()
            .filter(|(reg, _)| reg.a == q.0 as u64 && reg.c == q.0 as u64)
            .collect();
        self.adopt_row(ctx, client, q, fresh);
        // Chain the next round of work for q (the row probe if the
        // pipeline drained, and an audit for any copies that completed
        // while this one was in flight).
        self.launch_attempts(ctx, client, q);
        self.maybe_launch_audit(ctx, client, q);
    }

    /// Drains queued deliveries (in per-sender sequence order).
    pub fn take_deliveries(&mut self) -> Vec<Delivery> {
        self.deliveries.drain(..).collect()
    }
}
