//! The message-passing Paxos actor: the classic crash-tolerant baseline
//! (`n ≥ 2·f_P + 1`, no memories), driven over plain links.

use simnet::{Actor, Context, Duration, EventKind, Time};

use crate::paxos::{Dest, PaxosConfig, PaxosEngine, PaxosMsg};
use crate::types::{Msg, Pid, Value};

/// Timer tag for proposer retries.
const RETRY_TAG: u64 = 1;

/// A process running message-passing Paxos.
#[derive(Debug)]
pub struct PaxosActor {
    engine: PaxosEngine,
    input: Value,
    initial_leader: Option<Pid>,
    retry_every: Duration,
    /// When this process decided, if it has.
    pub decided_at: Option<Time>,
}

impl PaxosActor {
    /// Creates the actor. `initial_leader` both seeds Ω and owns the
    /// phase-1-free first ballot.
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        input: Value,
        initial_leader: Option<Pid>,
        retry_every: Duration,
    ) -> PaxosActor {
        PaxosActor {
            engine: PaxosEngine::new(PaxosConfig {
                me,
                procs,
                initial_leader,
                trust_decide: true,
                broadcast_accepted: false,
            }),
            input,
            initial_leader,
            retry_every,
            decided_at: None,
        }
    }

    /// This process's decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.engine.decision()
    }

    /// Transmits engine output, looping broadcasts back through the engine
    /// (synchronous self-delivery) until the output queue drains.
    fn pump(&mut self, ctx: &mut Context<'_, Msg>, mut queue: Vec<(Dest, PaxosMsg)>) {
        let me = self.engine.config().me;
        let procs = self.engine.config().procs.clone();
        while let Some((dest, msg)) = queue.pop() {
            match dest {
                Dest::All => {
                    for &q in &procs {
                        if q != me {
                            ctx.send(q, Msg::Paxos(msg));
                        }
                    }
                    let mut out = Vec::new();
                    self.engine.on_msg(me, msg, &mut out);
                    queue.extend(out);
                }
                Dest::One(p) if p == me => {
                    let mut out = Vec::new();
                    self.engine.on_msg(me, msg, &mut out);
                    queue.extend(out);
                }
                Dest::One(p) => ctx.send(p, Msg::Paxos(msg)),
            }
        }
        if self.engine.decision().is_some() && self.decided_at.is_none() {
            self.decided_at = Some(ctx.now());
            ctx.mark_decided();
        }
    }
}

impl Actor<Msg> for PaxosActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                let mut out = Vec::new();
                if let Some(l) = self.initial_leader {
                    self.engine.set_leader(l, &mut out);
                }
                self.engine.propose(self.input, &mut out);
                self.pump(ctx, out);
                ctx.set_timer(self.retry_every, RETRY_TAG);
            }
            EventKind::Timer { tag: RETRY_TAG, .. } => {
                if self.engine.decision().is_none() {
                    let mut out = Vec::new();
                    self.engine.poke(&mut out);
                    self.pump(ctx, out);
                    ctx.set_timer(self.retry_every, RETRY_TAG);
                }
            }
            EventKind::Timer { .. } => {}
            EventKind::Msg {
                from,
                msg: Msg::Paxos(m),
            } => {
                let mut out = Vec::new();
                self.engine.on_msg(from, m, &mut out);
                self.pump(ctx, out);
            }
            EventKind::Msg { .. } => {}
            EventKind::LeaderChange { leader } => {
                let mut out = Vec::new();
                self.engine.set_leader(leader, &mut out);
                self.pump(ctx, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ActorId, DelayModel, Simulation};

    fn build(n: u32, seed: u64, initial_leader: Option<u32>) -> (Simulation<Msg>, Vec<Pid>) {
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        for i in 0..n {
            let a = PaxosActor::new(
                ActorId(i),
                procs.clone(),
                Value(100 + i as u64),
                initial_leader.map(ActorId),
                Duration::from_delays(20),
            );
            sim.add(a);
        }
        (sim, procs)
    }

    fn decisions(sim: &Simulation<Msg>, procs: &[Pid]) -> Vec<Option<Value>> {
        procs
            .iter()
            .map(|&p| sim.actor_as::<PaxosActor>(p).unwrap().decision())
            .collect()
    }

    #[test]
    fn common_case_decides_in_two_delays() {
        let (mut sim, procs) = build(3, 1, Some(0));
        sim.run_to_quiescence(Time::from_delays(15));
        let ds = decisions(&sim, &procs);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
        // The leader observes an Accepted majority two delays after Start.
        assert_eq!(sim.metrics().first_decision_delays(), Some(2.0));
    }

    #[test]
    fn survives_leader_crash_with_new_leader() {
        let (mut sim, procs) = build(3, 2, Some(0));
        sim.crash_at(ActorId(0), Time::from_delays(1)); // mid-broadcast
        sim.announce_leader(Time::from_delays(30), &procs, ActorId(1));
        sim.run_to_quiescence(Time::from_delays(500));
        let ds: Vec<_> = procs[1..]
            .iter()
            .map(|&p| sim.actor_as::<PaxosActor>(p).unwrap().decision())
            .collect();
        assert!(ds.iter().all(|d| d.is_some()), "{ds:?}");
        assert_eq!(ds[0], ds[1]);
    }

    #[test]
    fn value_accepted_by_old_leader_survives_takeover() {
        // Crash the leader after its Accept lands: the value may be chosen;
        // the new leader must not decide anything else.
        let (mut sim, procs) = build(5, 3, Some(0));
        sim.crash_at(ActorId(0), Time::from_delays(3));
        sim.announce_leader(Time::from_delays(40), &procs, ActorId(2));
        sim.run_to_quiescence(Time::from_delays(500));
        let ds = decisions(&sim, &procs);
        let reached: Vec<Value> = ds.iter().flatten().copied().collect();
        assert!(!reached.is_empty());
        assert!(reached.iter().all(|v| *v == Value(100)), "{ds:?}");
    }

    #[test]
    fn agreement_under_random_delays_and_dueling_leaders() {
        for seed in 0..20 {
            let (mut sim, procs) = build(5, seed, Some(0));
            sim.set_default_delay(DelayModel::Uniform {
                lo: Duration::from_delays(1),
                hi: Duration::from_delays(8),
            });
            // Conflicting leader views for a while, then stabilize.
            sim.announce_leader(Time::from_delays(5), &procs[..2], ActorId(1));
            sim.announce_leader(Time::from_delays(9), &procs[2..], ActorId(3));
            sim.announce_leader(Time::from_delays(120), &procs, ActorId(3));
            sim.run_to_quiescence(Time::from_delays(3000));
            let ds = decisions(&sim, &procs);
            let reached: Vec<Value> = ds.iter().flatten().copied().collect();
            assert_eq!(
                reached.len(),
                procs.len(),
                "seed {seed}: not all decided {ds:?}"
            );
            assert!(
                reached.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: disagreement {ds:?}"
            );
            // Validity: decided value is some process's input.
            assert!((100..105).contains(&reached[0].0), "seed {seed}");
        }
    }

    #[test]
    fn tolerates_minority_crashes() {
        let (mut sim, procs) = build(5, 4, Some(0));
        sim.crash_at(ActorId(3), Time::ZERO);
        sim.crash_at(ActorId(4), Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(100));
        let ds: Vec<_> = procs[..3]
            .iter()
            .map(|&p| sim.actor_as::<PaxosActor>(p).unwrap().decision())
            .collect();
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
    }

    #[test]
    fn blocks_without_majority_but_stays_safe() {
        let (mut sim, procs) = build(3, 5, Some(0));
        sim.crash_at(ActorId(1), Time::ZERO);
        sim.crash_at(ActorId(2), Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(2000));
        assert_eq!(decisions(&sim, &procs)[0], None);
    }
}
