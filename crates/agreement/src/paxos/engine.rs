//! A transport-agnostic single-decree Paxos engine.
//!
//! This is the crash-tolerant message-passing consensus algorithm `A` that
//! the paper's Robust Backup transformation wraps (Definition 2), and —
//! driven directly over links — the classic message-passing baseline
//! requiring `n ≥ 2·f_P + 1`.
//!
//! The engine is a pure state machine: feeding it events yields a list of
//! `(Dest, PaxosMsg)` to transmit. Callers choose the transport — plain
//! links ([`PaxosActor`]) or the trusted T-send/T-receive channels of the
//! Robust Backup (`crate::robust_backup`).
//!
//! Design notes:
//! * Every process is proposer + acceptor + learner. `Accepted` messages are
//!   broadcast, so every process observes phase-2 quorums directly and
//!   decides without trusting anyone's `Decide` announcement — essential
//!   under the Byzantine-confinement wrapper, where `Decide` shortcuts are
//!   disabled ([`PaxosConfig::trust_decide`]).
//! * The configured initial leader owns ballot `(0, leader)` and skips
//!   phase 1 on its first attempt (the standard steady-state optimization);
//!   every other attempt runs both phases.
//!
//! [`PaxosActor`]: crate::paxos::PaxosActor

use std::collections::{BTreeMap, BTreeSet};

use crate::types::{Ballot, Pid, Value};

/// Paxos wire messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PaxosMsg {
    /// Phase-1a: leader solicits promises for ballot `b`.
    Prepare {
        /// The ballot.
        b: Ballot,
    },
    /// Phase-1b: acceptor promises `b` and reports its accepted pair.
    Promise {
        /// The promised ballot.
        b: Ballot,
        /// The acceptor's highest accepted (ballot, value), if any.
        accepted: Option<(Ballot, Value)>,
    },
    /// Phase-2a: leader asks acceptors to accept `v` at `b`.
    Accept {
        /// The ballot.
        b: Ballot,
        /// The proposed value.
        v: Value,
    },
    /// Phase-2b: acceptor accepted `v` at `b` (broadcast to all learners).
    Accepted {
        /// The ballot.
        b: Ballot,
        /// The accepted value.
        v: Value,
    },
    /// The acceptor rejected ballot `b` (it promised something higher).
    Nack {
        /// The rejected ballot.
        b: Ballot,
    },
    /// Decision announcement (trusted only in crash-failure deployments).
    Decide {
        /// The decided value.
        v: Value,
    },
}

/// Where an emitted message should go.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Dest {
    /// Every process, *including the sender* (transports must loop back).
    All,
    /// One process.
    One(Pid),
}

/// Static configuration of one engine.
#[derive(Clone, Debug)]
pub struct PaxosConfig {
    /// This process.
    pub me: Pid,
    /// All processes (including `me`).
    pub procs: Vec<Pid>,
    /// Owner of ballot `(0, leader)`, entitled to skip phase 1 once.
    pub initial_leader: Option<Pid>,
    /// Whether to adopt decisions from `Decide` messages. True for the
    /// crash-only baseline; false under Byzantine confinement (decisions
    /// must come from an observed `Accepted` quorum).
    pub trust_decide: bool,
    /// Where phase-2b votes go. The crash baseline sends them to the ballot
    /// leader only (textbook flow: leader decides after one round trip and
    /// announces). Robust Backup broadcasts them so *every* process
    /// observes the quorum itself — a Byzantine leader then cannot announce
    /// a wrong decision.
    pub broadcast_accepted: bool,
}

impl PaxosConfig {
    /// Majority quorum size.
    pub fn majority(&self) -> usize {
        self.procs.len() / 2 + 1
    }
}

#[derive(Clone, Debug)]
enum Proposer {
    Idle,
    Phase1 {
        ballot: Ballot,
        promises: BTreeMap<Pid, Option<(Ballot, Value)>>,
    },
    Phase2 {
        #[allow(dead_code)]
        ballot: Ballot,
    },
}

/// The Paxos state machine. See the module docs for the driving contract.
#[derive(Clone, Debug)]
pub struct PaxosEngine {
    cfg: PaxosConfig,
    input: Option<Value>,
    is_leader: bool,
    used_initial: bool,
    round: u64,
    max_round_seen: u64,
    proposer: Proposer,
    promised: Option<Ballot>,
    accepted: Option<(Ballot, Value)>,
    learner: BTreeMap<Ballot, BTreeMap<Pid, Value>>,
    decided: Option<Value>,
}

impl PaxosEngine {
    /// Creates an engine; no messages flow until [`PaxosEngine::propose`]
    /// and leadership.
    pub fn new(cfg: PaxosConfig) -> PaxosEngine {
        PaxosEngine {
            cfg,
            input: None,
            is_leader: false,
            used_initial: false,
            round: 0,
            max_round_seen: 0,
            proposer: Proposer::Idle,
            promised: None,
            accepted: None,
            learner: BTreeMap::new(),
            decided: None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &PaxosConfig {
        &self.cfg
    }

    /// The decision, once reached. Irrevocable.
    pub fn decision(&self) -> Option<Value> {
        self.decided
    }

    /// Sets this process's input and starts proposing if it leads.
    pub fn propose(&mut self, v: Value, out: &mut Vec<(Dest, PaxosMsg)>) {
        if self.input.is_none() {
            self.input = Some(v);
        }
        self.try_start(out);
    }

    /// Feeds an Ω announcement.
    pub fn set_leader(&mut self, leader: Pid, out: &mut Vec<(Dest, PaxosMsg)>) {
        self.is_leader = leader == self.cfg.me;
        self.try_start(out);
    }

    /// Timeout hook: abandon a stalled attempt and retry with a higher
    /// ballot (no-op unless this process leads and is undecided).
    pub fn poke(&mut self, out: &mut Vec<(Dest, PaxosMsg)>) {
        if !self.is_leader || self.decided.is_some() || self.input.is_none() {
            return;
        }
        // Abandon whatever attempt was running.
        self.proposer = Proposer::Idle;
        self.try_start(out);
    }

    fn try_start(&mut self, out: &mut Vec<(Dest, PaxosMsg)>) {
        if !self.is_leader || self.decided.is_some() {
            return;
        }
        let Some(_input) = self.input else { return };
        if !matches!(self.proposer, Proposer::Idle) {
            return;
        }
        if self.cfg.initial_leader == Some(self.cfg.me) && !self.used_initial {
            // Steady-state fast path: ballot (0, me) is pre-owned; go
            // straight to phase 2 with our own input.
            self.used_initial = true;
            let ballot = Ballot::initial(self.cfg.me);
            self.proposer = Proposer::Phase2 { ballot };
            let v = self.input.expect("input checked above");
            out.push((Dest::All, PaxosMsg::Accept { b: ballot, v }));
            return;
        }
        self.round = self.round.max(self.max_round_seen) + 1;
        let ballot = Ballot {
            round: self.round,
            pid: self.cfg.me,
        };
        self.proposer = Proposer::Phase1 {
            ballot,
            promises: BTreeMap::new(),
        };
        out.push((Dest::All, PaxosMsg::Prepare { b: ballot }));
    }

    /// Feeds a received message (transports must also loop broadcast
    /// messages back to the sender).
    pub fn on_msg(&mut self, from: Pid, msg: PaxosMsg, out: &mut Vec<(Dest, PaxosMsg)>) {
        match msg {
            PaxosMsg::Prepare { b } => {
                self.max_round_seen = self.max_round_seen.max(b.round);
                if self.promised.is_none_or(|p| b >= p) {
                    self.promised = Some(b);
                    out.push((
                        Dest::One(b.pid),
                        PaxosMsg::Promise {
                            b,
                            accepted: self.accepted,
                        },
                    ));
                } else {
                    out.push((Dest::One(b.pid), PaxosMsg::Nack { b }));
                }
            }
            PaxosMsg::Promise { b, accepted } => {
                let majority = self.cfg.majority();
                let Proposer::Phase1 { ballot, promises } = &mut self.proposer else {
                    return;
                };
                if *ballot != b {
                    return;
                }
                promises.insert(from, accepted);
                if promises.len() >= majority {
                    // Adopt the value accepted at the highest ballot, else
                    // our own input.
                    let adopted = promises
                        .values()
                        .flatten()
                        .max_by_key(|(ab, _)| *ab)
                        .map(|(_, v)| *v)
                        .unwrap_or_else(|| self.input.expect("proposing without input"));
                    let ballot = *ballot;
                    self.proposer = Proposer::Phase2 { ballot };
                    out.push((
                        Dest::All,
                        PaxosMsg::Accept {
                            b: ballot,
                            v: adopted,
                        },
                    ));
                }
            }
            PaxosMsg::Accept { b, v } => {
                self.max_round_seen = self.max_round_seen.max(b.round);
                if self.promised.is_none_or(|p| b >= p) {
                    self.promised = Some(b);
                    self.accepted = Some((b, v));
                    let dest = if self.cfg.broadcast_accepted {
                        Dest::All
                    } else {
                        Dest::One(b.pid)
                    };
                    out.push((dest, PaxosMsg::Accepted { b, v }));
                } else {
                    out.push((Dest::One(b.pid), PaxosMsg::Nack { b }));
                }
            }
            PaxosMsg::Accepted { b, v } => {
                self.max_round_seen = self.max_round_seen.max(b.round);
                let tally = self.learner.entry(b).or_default();
                tally.insert(from, v);
                let votes = tally.values().filter(|x| **x == v).count();
                if votes >= self.cfg.majority() && self.decided.is_none() {
                    self.decided = Some(v);
                    out.push((Dest::All, PaxosMsg::Decide { v }));
                }
            }
            PaxosMsg::Nack { b } => {
                self.max_round_seen = self.max_round_seen.max(b.round);
                // Stay put; the retry timer will start a higher ballot.
            }
            PaxosMsg::Decide { v } => {
                if self.cfg.trust_decide && self.decided.is_none() {
                    self.decided = Some(v);
                }
            }
        }
    }

    /// The processes whose `Accepted` votes have been observed for the
    /// highest tallied ballot (diagnostic).
    pub fn observed_acceptors(&self) -> BTreeSet<Pid> {
        self.learner
            .iter()
            .next_back()
            .map(|(_, t)| t.keys().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::ActorId;

    fn cfg(me: u32, n: u32, initial_leader: Option<u32>) -> PaxosConfig {
        PaxosConfig {
            me: ActorId(me),
            procs: (0..n).map(ActorId).collect(),
            initial_leader: initial_leader.map(ActorId),
            trust_decide: true,
            broadcast_accepted: true,
        }
    }

    /// Drives a set of engines to quiescence by synchronously delivering
    /// every emitted message (no failures, no delays).
    fn pump(engines: &mut [PaxosEngine], mut queue: Vec<(Pid, Dest, PaxosMsg)>) {
        while let Some((from, dest, msg)) = queue.pop() {
            let targets: Vec<Pid> = match dest {
                Dest::All => engines.iter().map(|e| e.cfg.me).collect(),
                Dest::One(p) => vec![p],
            };
            for t in targets {
                let mut out = Vec::new();
                let idx = t.0 as usize;
                engines[idx].on_msg(from, msg, &mut out);
                let me = engines[idx].cfg.me;
                queue.extend(out.into_iter().map(|(d, m)| (me, d, m)));
            }
        }
    }

    #[test]
    fn initial_leader_skips_phase_one() {
        let mut e = PaxosEngine::new(cfg(0, 3, Some(0)));
        let mut out = Vec::new();
        e.set_leader(ActorId(0), &mut out);
        e.propose(Value(7), &mut out);
        assert_eq!(out.len(), 1);
        assert!(
            matches!(out[0], (Dest::All, PaxosMsg::Accept { b, v: Value(7) })
            if b == Ballot::initial(ActorId(0)))
        );
    }

    #[test]
    fn non_initial_leader_runs_phase_one() {
        let mut e = PaxosEngine::new(cfg(1, 3, Some(0)));
        let mut out = Vec::new();
        e.set_leader(ActorId(1), &mut out);
        e.propose(Value(7), &mut out);
        assert!(matches!(out[0], (Dest::All, PaxosMsg::Prepare { .. })));
    }

    #[test]
    fn full_round_decides_leaders_value() {
        let n = 3;
        let mut engines: Vec<_> = (0..n)
            .map(|i| PaxosEngine::new(cfg(i, n, Some(0))))
            .collect();
        let mut queue = Vec::new();
        for (i, e) in engines.iter_mut().enumerate() {
            let mut out = Vec::new();
            e.set_leader(ActorId(0), &mut out);
            e.propose(Value(100 + i as u64), &mut out);
            queue.extend(out.into_iter().map(|(d, m)| (ActorId(i as u32), d, m)));
        }
        pump(&mut engines, queue);
        for e in &engines {
            assert_eq!(e.decision(), Some(Value(100)));
        }
    }

    #[test]
    fn new_leader_adopts_accepted_value() {
        // Acceptor 1 accepted (b0, v=7); leader 2 must adopt 7, not its own.
        let mut e = PaxosEngine::new(cfg(2, 3, Some(0)));
        let mut out = Vec::new();
        e.set_leader(ActorId(2), &mut out);
        e.propose(Value(9), &mut out);
        let (_, PaxosMsg::Prepare { b }) = out[0] else {
            panic!()
        };
        out.clear();
        e.on_msg(
            ActorId(0),
            PaxosMsg::Promise { b, accepted: None },
            &mut out,
        );
        assert!(out.is_empty());
        let acc = Some((Ballot::initial(ActorId(0)), Value(7)));
        e.on_msg(ActorId(1), PaxosMsg::Promise { b, accepted: acc }, &mut out);
        assert!(matches!(
            out[0],
            (Dest::All, PaxosMsg::Accept { v: Value(7), .. })
        ));
    }

    #[test]
    fn acceptor_rejects_lower_ballot_after_promise() {
        let mut e = PaxosEngine::new(cfg(1, 3, None));
        let mut out = Vec::new();
        let high = Ballot {
            round: 5,
            pid: ActorId(2),
        };
        e.on_msg(ActorId(2), PaxosMsg::Prepare { b: high }, &mut out);
        out.clear();
        let low = Ballot {
            round: 3,
            pid: ActorId(0),
        };
        e.on_msg(ActorId(0), PaxosMsg::Prepare { b: low }, &mut out);
        assert!(matches!(out[0], (Dest::One(p), PaxosMsg::Nack { .. }) if p == ActorId(0)));
        out.clear();
        e.on_msg(
            ActorId(0),
            PaxosMsg::Accept {
                b: low,
                v: Value(1),
            },
            &mut out,
        );
        assert!(matches!(out[0], (Dest::One(_), PaxosMsg::Nack { .. })));
    }

    #[test]
    fn decision_requires_majority_of_accepted() {
        let mut e = PaxosEngine::new(cfg(0, 5, None));
        let b = Ballot {
            round: 1,
            pid: ActorId(1),
        };
        let mut out = Vec::new();
        e.on_msg(ActorId(1), PaxosMsg::Accepted { b, v: Value(4) }, &mut out);
        e.on_msg(ActorId(2), PaxosMsg::Accepted { b, v: Value(4) }, &mut out);
        assert_eq!(e.decision(), None);
        e.on_msg(ActorId(3), PaxosMsg::Accepted { b, v: Value(4) }, &mut out);
        assert_eq!(e.decision(), Some(Value(4)));
    }

    #[test]
    fn duplicate_accepted_votes_not_double_counted() {
        let mut e = PaxosEngine::new(cfg(0, 5, None));
        let b = Ballot {
            round: 1,
            pid: ActorId(1),
        };
        let mut out = Vec::new();
        for _ in 0..5 {
            e.on_msg(ActorId(1), PaxosMsg::Accepted { b, v: Value(4) }, &mut out);
        }
        assert_eq!(e.decision(), None);
    }

    #[test]
    fn untrusted_decide_is_ignored() {
        let mut c = cfg(0, 3, None);
        c.trust_decide = false;
        let mut e = PaxosEngine::new(c);
        let mut out = Vec::new();
        e.on_msg(ActorId(1), PaxosMsg::Decide { v: Value(3) }, &mut out);
        assert_eq!(e.decision(), None);
    }

    #[test]
    fn poke_retries_with_higher_ballot() {
        let mut e = PaxosEngine::new(cfg(1, 3, None));
        let mut out = Vec::new();
        e.set_leader(ActorId(1), &mut out);
        e.propose(Value(1), &mut out);
        let (_, PaxosMsg::Prepare { b: b1 }) = out[0] else {
            panic!()
        };
        out.clear();
        // Observe contention from a higher round, then retry.
        e.on_msg(
            ActorId(2),
            PaxosMsg::Nack {
                b: Ballot {
                    round: 9,
                    pid: ActorId(2),
                },
            },
            &mut out,
        );
        e.poke(&mut out);
        let (_, PaxosMsg::Prepare { b: b2 }) = out[0] else {
            panic!()
        };
        assert!(b2 > b1);
        assert!(b2.round > 9);
    }
}
