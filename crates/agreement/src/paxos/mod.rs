//! Classic single-decree Paxos: the crash-tolerant message-passing protocol
//! (`n ≥ 2·f_P + 1`) used three ways in this reproduction —
//!
//! 1. directly over links, as the message-passing baseline
//!    ([`PaxosActor`]);
//! 2. as the algorithm `A` inside Robust Backup (Definition 2), driven over
//!    trusted T-send/T-receive channels (`crate::robust_backup`);
//! 3. as the skeleton that Protected Memory Paxos and Aligned Paxos
//!    restructure around memories (`crate::protected`, `crate::aligned`).

mod actor;
mod engine;

pub use actor::PaxosActor;
pub use engine::{Dest, PaxosConfig, PaxosEngine, PaxosMsg};
