//! Preferential Paxos (Algorithm 8, Lemma 4.7).
//!
//! The wrapper that makes Robust Backup composable with Cheap Quorum: a
//! set-up phase in which every process T-sends its prioritized input, waits
//! for `n − f` set-up messages, **adopts the highest-priority value seen**,
//! and only then proposes to `RobustBackup(Paxos)`.
//!
//! Priorities follow Definition 3 and are *computed from evidence*, never
//! trusted: a unanimity proof puts a value in class T, the Cheap Quorum
//! leader's signature in class M, anything else in class B. Because at most
//! `f` of the `n − f` collected set-ups can come from Byzantine processes,
//! every correct process adopts one of the `f + 1` highest-priority inputs
//! — which is exactly what the composition lemma (Lemma 4.8) needs.

use rdma_sim::{Completion, MemoryClient};
use sigsim::SigVerifier;
use simnet::{Actor, ActorId, Context, Duration, EventKind, Time};

use crate::cheap_quorum::AbortOutcome;
use crate::robust_backup::RobustCore;
use crate::trusted::SetupEvidence;
use crate::types::{Msg, Pid, PriorityClass, RegVal, Value};

/// The embeddable Preferential Paxos machinery.
pub struct PrefCore {
    rb: RobustCore,
    procs: Vec<Pid>,
    /// The Cheap Quorum leader (whose signature certifies class M).
    cq_leader: Pid,
    verifier: SigVerifier,
    /// `n − f` — how many set-ups to await before adopting.
    needed: usize,
    sent_setup: bool,
    proposed: bool,
}

impl std::fmt::Debug for PrefCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefCore")
            .field("sent_setup", &self.sent_setup)
            .field("proposed", &self.proposed)
            .field("decision", &self.rb.decision())
            .finish()
    }
}

impl PrefCore {
    /// Creates the machinery for process `me`. `backup_leader` seeds Ω for
    /// the inner Paxos; `cq_leader` anchors class-M verification.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        memories: Vec<ActorId>,
        backup_leader: Option<Pid>,
        cq_leader: Pid,
        signer: sigsim::Signer,
        verifier: SigVerifier,
    ) -> PrefCore {
        let n = procs.len();
        let f = (n - 1) / 2;
        PrefCore {
            rb: RobustCore::new(
                me,
                procs.clone(),
                memories,
                backup_leader,
                signer,
                verifier.clone(),
            ),
            procs,
            cq_leader,
            verifier,
            needed: n - f,
            sent_setup: false,
            proposed: false,
        }
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.rb.decision()
    }

    /// Whether the set-up value has been sent.
    pub fn started(&self) -> bool {
        self.sent_setup
    }

    /// Enters the protocol with a prioritized input (Algorithm 8 line 2).
    pub fn start(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        value: Value,
        evidence: SetupEvidence,
    ) {
        if self.sent_setup {
            return;
        }
        self.sent_setup = true;
        self.rb.send_setup(ctx, client, value, evidence);
    }

    /// Ω announcement for the inner Paxos.
    pub fn set_leader(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        leader: Pid,
    ) {
        self.rb.set_leader(ctx, client, leader);
    }

    /// Retry hook for the inner Paxos.
    pub fn poke(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        self.rb.poke(ctx, client);
    }

    /// Drives broadcast deliveries; adopts and proposes once `n − f`
    /// set-ups are in.
    pub fn poll(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        self.rb.poll(ctx, client);
        self.maybe_adopt(ctx, client);
    }

    /// Routes a memory completion. Returns true if consumed.
    pub fn on_completion(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        completion: Completion<RegVal>,
    ) -> bool {
        let consumed = self.rb.on_completion(ctx, client, completion);
        if consumed {
            self.maybe_adopt(ctx, client);
        }
        consumed
    }

    /// Algorithm 8 lines 3–5: wait for `n − f` set-ups, adopt the best.
    fn maybe_adopt(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        if self.proposed || !self.sent_setup || self.rb.setups().len() < self.needed {
            return;
        }
        let mut best: Option<(PriorityClass, Value)> = None;
        for s in self.rb.setups() {
            let outcome = AbortOutcome {
                value: s.value,
                evidence: s.evidence.clone(),
            };
            let class = outcome.class(&self.procs, self.cq_leader, &self.verifier);
            let key = (class, s.value);
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        let (_, adopted) = best.expect("needed >= 1 setups collected");
        self.proposed = true;
        self.rb.propose(ctx, client, adopted);
    }
}

const POLL_TAG: u64 = 30;
const RETRY_TAG: u64 = 31;

/// Standalone Preferential Paxos actor (used by the Lemma 4.7 tests; the
/// Fast & Robust composition embeds [`PrefCore`] instead).
#[derive(Debug)]
pub struct PrefPaxosActor {
    core: PrefCore,
    input: Value,
    evidence: SetupEvidence,
    backup_leader: Option<Pid>,
    client: MemoryClient<RegVal, Msg>,
    poll_every: Duration,
    retry_every: Duration,
    /// When this process decided, if it has.
    pub decided_at: Option<Time>,
}

impl PrefPaxosActor {
    /// Creates the actor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        memories: Vec<ActorId>,
        input: Value,
        evidence: SetupEvidence,
        backup_leader: Option<Pid>,
        cq_leader: Pid,
        signer: sigsim::Signer,
        verifier: SigVerifier,
        poll_every: Duration,
        retry_every: Duration,
    ) -> PrefPaxosActor {
        PrefPaxosActor {
            core: PrefCore::new(
                me,
                procs,
                memories,
                backup_leader,
                cq_leader,
                signer,
                verifier,
            ),
            input,
            evidence,
            backup_leader,
            client: MemoryClient::new(),
            poll_every,
            retry_every,
            decided_at: None,
        }
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.core.decision()
    }

    fn check_decided(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.core.decision().is_some() && self.decided_at.is_none() {
            self.decided_at = Some(ctx.now());
            ctx.mark_decided();
        }
    }
}

impl Actor<Msg> for PrefPaxosActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                if let Some(l) = self.backup_leader {
                    self.core.set_leader(ctx, &mut self.client, l);
                }
                let (input, evidence) = (self.input, self.evidence.clone());
                self.core.start(ctx, &mut self.client, input, evidence);
                self.core.poll(ctx, &mut self.client);
                ctx.set_timer(self.poll_every, POLL_TAG);
                ctx.set_timer(self.retry_every, RETRY_TAG);
            }
            EventKind::Timer { tag: POLL_TAG, .. } => {
                if self.decided_at.is_none() {
                    self.core.poll(ctx, &mut self.client);
                    self.check_decided(ctx);
                    ctx.set_timer(self.poll_every, POLL_TAG);
                }
            }
            EventKind::Timer { tag: RETRY_TAG, .. } => {
                if self.decided_at.is_none() {
                    self.core.poke(ctx, &mut self.client);
                    ctx.set_timer(self.retry_every, RETRY_TAG);
                }
            }
            EventKind::Timer { .. } => {}
            EventKind::LeaderChange { leader } => {
                self.core.set_leader(ctx, &mut self.client, leader);
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                if let Some(c) = self.client.on_wire(ctx, from, wire) {
                    self.core.on_completion(ctx, &mut self.client, c);
                    self.check_decided(ctx);
                }
            }
            EventKind::Msg { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cheap_quorum::verify_unanimity;
    use crate::nebcast;
    use crate::types::{sigtags, UnanimityProof};
    use rdma_sim::{LegalChange, MemoryActor};
    use sigsim::SigAuthority;
    use simnet::Simulation;

    /// Builds PP with per-process (value, evidence) inputs.
    fn build(
        seed: u64,
        inputs: Vec<(Value, SetupEvidence)>,
        m: u32,
    ) -> (Simulation<Msg>, Vec<Pid>) {
        let n = inputs.len() as u32;
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        let mut auth = SigAuthority::new(seed ^ 0x1234);
        let signers: Vec<_> = procs.iter().map(|&p| auth.register(p)).collect();
        for (i, (v, e)) in inputs.into_iter().enumerate() {
            sim.add(PrefPaxosActor::new(
                ActorId(i as u32),
                procs.clone(),
                mems.clone(),
                v,
                e,
                Some(ActorId(0)),
                ActorId(0),
                signers[i].clone(),
                auth.verifier(),
                Duration::from_delays(1),
                Duration::from_delays(80),
            ));
        }
        for _ in 0..m {
            let mut mem = MemoryActor::new(LegalChange::Static);
            nebcast::configure_memory(&mut mem, &procs);
            sim.add(mem);
        }
        (sim, procs)
    }

    fn decisions(sim: &Simulation<Msg>, procs: &[Pid]) -> Vec<Option<Value>> {
        procs
            .iter()
            .map(|&p| sim.actor_as::<PrefPaxosActor>(p).unwrap().decision())
            .collect()
    }

    #[test]
    fn all_bare_inputs_agree_on_some_input() {
        let inputs: Vec<_> = (0..3)
            .map(|i| (Value(100 + i), SetupEvidence::default()))
            .collect();
        let (mut sim, procs) = build(1, inputs, 3);
        sim.run_until(Time::from_delays(600), |s| {
            decisions(s, &procs).iter().all(|d| d.is_some())
        });
        let ds = decisions(&sim, &procs);
        let v = ds[0].expect("decided");
        assert!(ds.iter().all(|d| *d == Some(v)), "{ds:?}");
        assert!((100..103).contains(&v.0));
    }

    #[test]
    fn leader_signed_value_beats_bare_values() {
        // Process 1 carries the (genuine) CQ leader's signature on its
        // value; with f = 1, Lemma 4.7 says the decision must come from the
        // top f+1 = 2 priority inputs — and only one input is class M, the
        // other candidates are class B. Run several seeds: the decision is
        // never a bare value when the signed one is in every quorum... the
        // lemma's guarantee is membership in the top-2 set.
        for seed in 0..5 {
            let mut auth = SigAuthority::new(99);
            let s0 = auth.register(ActorId(0)); // CQ leader signer
            let _s1 = auth.register(ActorId(1));
            let _s2 = auth.register(ActorId(2));
            let signed = Value(7);
            let evidence = SetupEvidence {
                proof: None,
                leader_sig: Some(s0.sign(&(sigtags::CQ_VALUE, signed))),
            };
            // Rebuild the same authority inside build(): instead, pass the
            // evidence through a custom build that reuses this authority.
            let mut sim = Simulation::new(seed);
            let procs: Vec<Pid> = (0..3).map(ActorId).collect();
            let mems: Vec<ActorId> = (3..6).map(ActorId).collect();
            let signers = [s0.clone(), _s1.clone(), _s2.clone()];
            for i in 0..3u32 {
                let (v, e) = if i == 1 {
                    (signed, evidence.clone())
                } else {
                    (Value(100 + i as u64), SetupEvidence::default())
                };
                sim.add(PrefPaxosActor::new(
                    ActorId(i),
                    procs.clone(),
                    mems.clone(),
                    v,
                    e,
                    Some(ActorId(0)),
                    ActorId(0),
                    signers[i as usize].clone(),
                    auth.verifier(),
                    Duration::from_delays(1),
                    Duration::from_delays(80),
                ));
            }
            for _ in 0..3 {
                let mut mem = MemoryActor::new(LegalChange::Static);
                nebcast::configure_memory(&mut mem, &procs);
                sim.add(mem);
            }
            sim.run_until(Time::from_delays(800), |s| {
                procs.iter().all(|&p| {
                    s.actor_as::<PrefPaxosActor>(p)
                        .unwrap()
                        .decision()
                        .is_some()
                })
            });
            let ds: Vec<_> = procs
                .iter()
                .map(|&p| sim.actor_as::<PrefPaxosActor>(p).unwrap().decision())
                .collect();
            let v = ds[0].expect("decided");
            assert!(ds.iter().all(|d| *d == Some(v)), "seed {seed}: {ds:?}");
            // Top-2 priority set = {signed (M), max bare}: the bare values
            // are 100 and 102; top bare by (class,value) order is 102.
            assert!(
                v == signed || v == Value(102),
                "seed {seed}: decided {v:?}, outside the top-(f+1) priority set"
            );
        }
    }

    #[test]
    fn forged_class_claims_are_downgraded() {
        // A (Byzantine-ish) process attaches a *forged* unanimity proof to
        // a junk value. Receivers must compute class B for it, so it cannot
        // displace honestly-signed values from the top of the order...
        let mut auth = SigAuthority::new(50);
        let s0 = auth.register(ActorId(0));
        let s1 = auth.register(ActorId(1));
        let s2 = auth.register(ActorId(2));
        let junk = Value(666);
        let fake_proof = UnanimityProof {
            value: junk,
            shares: vec![
                (ActorId(0), sigsim::Signature::forged(ActorId(0), 1)),
                (ActorId(1), sigsim::Signature::forged(ActorId(1), 2)),
                (ActorId(2), s2.sign(&(sigtags::CQ_VALUE, junk))),
            ],
            assembler: ActorId(2),
            outer_sig: sigsim::Signature::forged(ActorId(2), 3),
        };
        assert!(!verify_unanimity(
            &fake_proof,
            &[ActorId(0), ActorId(1), ActorId(2)],
            &auth.verifier()
        ));

        let real = Value(7);
        let m_evidence = SetupEvidence {
            proof: None,
            leader_sig: Some(s0.sign(&(sigtags::CQ_VALUE, real))),
        };
        let mut sim = Simulation::new(3);
        let procs: Vec<Pid> = (0..3).map(ActorId).collect();
        let mems: Vec<ActorId> = (3..6).map(ActorId).collect();
        let signers = [s0, s1, s2];
        for i in 0..3u32 {
            let (v, e) = match i {
                2 => (
                    junk,
                    SetupEvidence {
                        proof: Some(fake_proof.clone()),
                        leader_sig: None,
                    },
                ),
                _ => (real, m_evidence.clone()),
            };
            sim.add(PrefPaxosActor::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                v,
                e,
                Some(ActorId(0)),
                ActorId(0),
                signers[i as usize].clone(),
                auth.verifier(),
                Duration::from_delays(1),
                Duration::from_delays(80),
            ));
        }
        for _ in 0..3 {
            let mut mem = MemoryActor::new(LegalChange::Static);
            nebcast::configure_memory(&mut mem, &procs);
            sim.add(mem);
        }
        sim.run_until(Time::from_delays(800), |s| {
            procs.iter().all(|&p| {
                s.actor_as::<PrefPaxosActor>(p)
                    .unwrap()
                    .decision()
                    .is_some()
            })
        });
        let ds: Vec<_> = procs
            .iter()
            .map(|&p| sim.actor_as::<PrefPaxosActor>(p).unwrap().decision())
            .collect();
        // The forged proof is class B; the genuine class-M value must win
        // any (class, value) comparison it appears in. Decision ∈ top-2 =
        // {real (M, from two processes), junk (B)}: with two M entries, at
        // least one M entry is in every n−f = 2 subset... the decision must
        // be the real value.
        assert!(ds.iter().all(|d| *d == Some(real)), "{ds:?}");
    }
}
