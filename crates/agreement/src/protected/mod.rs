//! Protected Memory Paxos (Algorithm 7, Theorem 5.1).
//!
//! The paper's headline crash-failure result: consensus with `n ≥ f_P + 1`
//! processes and `m ≥ 2·f_M + 1` memories that decides in **two delays** in
//! the common case — resilience of Disk Paxos at half its latency.
//!
//! The trick is the *uncontended instantaneous guarantee* from dynamic
//! permissions: each memory has a single region writable by exactly one
//! process at a time; a leader taking over first acquires exclusive write
//! permission (revoking its predecessor's). A successful write therefore
//! proves no other leader has taken over — the verification read that costs
//! Disk Paxos two extra delays becomes unnecessary. The initial leader owns
//! the permission from the start, so in the common case its single slot
//! write (one parallel round trip to the memories) decides.
//!
//! The `legalChange` policy admits only the acquire-exclusive shape, and
//! each memory grants write access to the *most recent* acquirer (Lemma
//! D.3's premise).

use std::collections::BTreeMap;

use rdma_sim::{
    LegalChange, MemResponse, MemoryActor, MemoryClient, Permission, RegId, RegionId, RegionSpec,
};
use simnet::{Actor, ActorId, Context, Duration, EventKind, Time};

use crate::types::{spaces, Ballot, Instance, Msg, PaxSlot, Pid, RegVal, Value};

/// The single per-memory region of Protected Memory Paxos.
pub const REGION: RegionId = RegionId(0x5000);

/// The slot of process `p` in `instance`.
pub fn slot_reg(instance: Instance, p: Pid) -> RegId {
    RegId::two(spaces::PMP, instance.0, p.0 as u64)
}

/// The `legalChange` policy: any process may acquire exclusive write
/// permission (becoming the unique writer); nothing else is legal.
pub fn legal_change(
    requester: ActorId,
    _region: RegionId,
    _old: &Permission,
    new: &Permission,
) -> bool {
    *new == Permission::exclusive_writer(requester)
}

/// Builds one Protected Memory Paxos memory with `initial_leader` owning
/// the write permission.
pub fn memory_actor(initial_leader: Pid) -> MemoryActor<RegVal, Msg> {
    MemoryActor::new(LegalChange::Policy(legal_change)).with_region(
        REGION,
        RegionSpec::Space(spaces::PMP),
        Permission::exclusive_writer(initial_leader),
    )
}

const RETRY_TAG: u64 = 1;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StepKind {
    Perm,
    Write1,
    Scan,
    Write2,
}

#[derive(Clone, Debug, Default)]
struct MemIter {
    perm_ok: bool,
    write1: Option<bool>,
    slots: Option<Vec<PaxSlot>>,
    write2: Option<bool>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Idle,
    One,
    Two,
}

/// A Protected Memory Paxos process.
#[derive(Debug)]
pub struct ProtectedPaxosActor {
    me: Pid,
    procs: Vec<Pid>,
    mems: Vec<ActorId>,
    instance: Instance,
    input: Value,
    initial_leader: Pid,
    /// Tolerated memory crashes (quorum is `m - f_M` completed iterations).
    f_m: usize,
    retry_every: Duration,
    client: MemoryClient<RegVal, Msg>,
    is_leader: bool,
    used_initial: bool,
    attempt: u64,
    round: u64,
    max_round_seen: u64,
    ballot: Option<Ballot>,
    phase: Phase,
    value: Option<Value>,
    iters: BTreeMap<ActorId, MemIter>,
    op_map: BTreeMap<rdma_sim::OpId, (u64, ActorId, StepKind)>,
    decided: Option<Value>,
    /// When this process decided, if it has.
    pub decided_at: Option<Time>,
}

impl ProtectedPaxosActor {
    /// Creates a process. `f_m` is the assumed bound on memory crashes
    /// (`mems.len() ≥ 2·f_m + 1` must hold).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        mems: Vec<ActorId>,
        instance: Instance,
        input: Value,
        initial_leader: Pid,
        f_m: usize,
        retry_every: Duration,
    ) -> ProtectedPaxosActor {
        assert!(mems.len() > 2 * f_m, "m >= 2 f_M + 1 required");
        ProtectedPaxosActor {
            me,
            procs,
            mems,
            instance,
            input,
            initial_leader,
            f_m,
            retry_every,
            client: MemoryClient::new(),
            is_leader: false,
            used_initial: false,
            attempt: 0,
            round: 0,
            max_round_seen: 0,
            ballot: None,
            phase: Phase::Idle,
            value: None,
            iters: BTreeMap::new(),
            op_map: BTreeMap::new(),
            decided: None,
            decided_at: None,
        }
    }

    /// This process's decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.decided
    }

    fn quorum(&self) -> usize {
        self.mems.len() - self.f_m
    }

    fn start_attempt(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.is_leader || self.decided.is_some() {
            return;
        }
        self.attempt += 1;
        self.iters.clear();
        if self.me == self.initial_leader && !self.used_initial {
            // Fast path: permission is pre-owned and ballot (0, me) is the
            // lowest possible, so phase 1 is unnecessary — write and decide.
            self.used_initial = true;
            self.ballot = Some(Ballot::initial(self.me));
            self.value = Some(self.input);
            self.phase = Phase::Two;
            self.send_phase2(ctx);
            return;
        }
        self.round = self.round.max(self.max_round_seen) + 1;
        let b = Ballot {
            round: self.round,
            pid: self.me,
        };
        self.ballot = Some(b);
        self.phase = Phase::One;
        let reg = slot_reg(self.instance, self.me);
        for &mem in &self.mems.clone() {
            self.iters.insert(mem, MemIter::default());
            let p =
                self.client
                    .change_perm(ctx, mem, REGION, Permission::exclusive_writer(self.me));
            self.op_map.insert(p, (self.attempt, mem, StepKind::Perm));
            let w = self
                .client
                .write(ctx, mem, REGION, reg, RegVal::Slot(PaxSlot::phase1(b)));
            self.op_map.insert(w, (self.attempt, mem, StepKind::Write1));
            let r = self.client.read_range(
                ctx,
                mem,
                REGION,
                Some(RegionSpec::Pattern {
                    space: spaces::PMP,
                    a: Some(self.instance.0),
                    b: None,
                    c: None,
                }),
            );
            self.op_map.insert(r, (self.attempt, mem, StepKind::Scan));
        }
    }

    fn send_phase2(&mut self, ctx: &mut Context<'_, Msg>) {
        let b = self.ballot.expect("phase 2 without ballot");
        let v = self.value.expect("phase 2 without value");
        let reg = slot_reg(self.instance, self.me);
        self.iters.clear();
        for &mem in &self.mems.clone() {
            self.iters.insert(mem, MemIter::default());
            let w = self
                .client
                .write(ctx, mem, REGION, reg, RegVal::Slot(PaxSlot::phase2(b, v)));
            self.op_map.insert(w, (self.attempt, mem, StepKind::Write2));
        }
    }

    fn abandon(&mut self) {
        // Retry (with a higher ballot) happens on the next retry timer,
        // provided Ω still nominates us.
        self.phase = Phase::Idle;
    }

    fn phase1_step(&mut self, ctx: &mut Context<'_, Msg>) {
        let complete: Vec<&MemIter> = self
            .iters
            .values()
            .filter(|i| i.write1.is_some() && i.slots.is_some())
            .collect();
        if complete.len() < self.quorum() {
            return;
        }
        let ballot = self.ballot.expect("phase 1 without ballot");
        // "if (!write1Success[i] for some i) then continue"
        if complete.iter().any(|i| i.write1 == Some(false)) {
            self.abandon();
            return;
        }
        let mut slots: Vec<PaxSlot> = Vec::new();
        for it in &complete {
            slots.extend(it.slots.as_ref().expect("filtered above").iter().copied());
        }
        for s in &slots {
            self.max_round_seen = self.max_round_seen.max(s.min_prop.round);
        }
        // "if (localInfo[i,q].minProp > propNr for some i,q) continue"
        if slots.iter().any(|s| s.min_prop > ballot) {
            self.abandon();
            return;
        }
        // Adopt the accepted value of the highest accProp, else our input.
        let adopted = slots
            .iter()
            .filter_map(|s| s.acc_prop.map(|ap| (ap, s.value)))
            .max_by_key(|(ap, _)| *ap)
            .and_then(|(_, v)| v)
            .unwrap_or(self.input);
        self.value = Some(adopted);
        self.phase = Phase::Two;
        self.attempt += 1;
        self.send_phase2(ctx);
    }

    fn phase2_step(&mut self, ctx: &mut Context<'_, Msg>) {
        let complete: Vec<&MemIter> = self.iters.values().filter(|i| i.write2.is_some()).collect();
        if complete.len() < self.quorum() {
            return;
        }
        // "if !write2Success[j] for some j then continue"
        if complete.iter().any(|i| i.write2 == Some(false)) {
            self.abandon();
            return;
        }
        let v = self.value.expect("phase 2 without value");
        self.decided = Some(v);
        self.decided_at = Some(ctx.now());
        self.phase = Phase::Idle;
        ctx.mark_decided();
        for &q in &self.procs.clone() {
            if q != self.me {
                ctx.send(
                    q,
                    Msg::Decided {
                        instance: self.instance,
                        value: v,
                    },
                );
            }
        }
    }
}

impl Actor<Msg> for ProtectedPaxosActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                self.is_leader = self.initial_leader == self.me;
                if self.is_leader {
                    self.start_attempt(ctx);
                }
                ctx.set_timer(self.retry_every, RETRY_TAG);
            }
            EventKind::Timer { tag: RETRY_TAG, .. } => {
                if self.decided.is_none() {
                    if self.is_leader && self.phase == Phase::Idle {
                        self.start_attempt(ctx);
                    }
                    ctx.set_timer(self.retry_every, RETRY_TAG);
                }
            }
            EventKind::Timer { .. } => {}
            EventKind::LeaderChange { leader } => {
                let was = self.is_leader;
                self.is_leader = leader == self.me;
                if self.is_leader && !was && self.phase == Phase::Idle {
                    self.start_attempt(ctx);
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let Some(c) = self.client.on_wire(ctx, from, wire) else {
                    return;
                };
                let Some((attempt, mem, step)) = self.op_map.remove(&c.op) else {
                    return;
                };
                if attempt != self.attempt || self.phase == Phase::Idle {
                    return; // stale: belongs to an abandoned attempt
                }
                let Some(iter) = self.iters.get_mut(&mem) else {
                    return;
                };
                match (step, c.resp) {
                    (StepKind::Perm, MemResponse::PermAck) => iter.perm_ok = true,
                    (StepKind::Perm, _) => iter.perm_ok = false,
                    (StepKind::Write1, MemResponse::Ack) => iter.write1 = Some(true),
                    (StepKind::Write1, _) => iter.write1 = Some(false),
                    (StepKind::Scan, MemResponse::Range(rows)) => {
                        iter.slots = Some(
                            rows.into_iter()
                                .filter_map(|(_, v)| match v {
                                    RegVal::Slot(s) => Some(s),
                                    _ => None,
                                })
                                .collect(),
                        );
                    }
                    (StepKind::Scan, _) => iter.slots = Some(Vec::new()),
                    (StepKind::Write2, MemResponse::Ack) => iter.write2 = Some(true),
                    (StepKind::Write2, _) => iter.write2 = Some(false),
                }
                match self.phase {
                    Phase::One => self.phase1_step(ctx),
                    Phase::Two => self.phase2_step(ctx),
                    Phase::Idle => {}
                }
            }
            EventKind::Msg {
                msg: Msg::Decided { instance, value },
                ..
            } => {
                if instance == self.instance && self.decided.is_none() {
                    self.decided = Some(value);
                    self.decided_at = Some(ctx.now());
                    ctx.mark_decided();
                }
            }
            EventKind::Msg { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Simulation;

    fn build(n: u32, m: u32, seed: u64) -> (Simulation<Msg>, Vec<Pid>, Vec<ActorId>) {
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        for i in 0..n {
            sim.add(ProtectedPaxosActor::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                Instance(0),
                Value(100 + i as u64),
                ActorId(0),
                (m as usize - 1) / 2,
                Duration::from_delays(25),
            ));
        }
        let added: Vec<ActorId> = (0..m).map(|_| sim.add(memory_actor(ActorId(0)))).collect();
        assert_eq!(added, mems);
        (sim, procs, mems)
    }

    fn decisions(sim: &Simulation<Msg>, procs: &[Pid]) -> Vec<Option<Value>> {
        procs
            .iter()
            .map(|&p| sim.actor_as::<ProtectedPaxosActor>(p).unwrap().decision())
            .collect()
    }

    #[test]
    fn common_case_decides_in_two_delays() {
        let (mut sim, procs, _) = build(3, 3, 1);
        sim.run_to_quiescence(Time::from_delays(30));
        let ds = decisions(&sim, &procs);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
        // One parallel slot write: 2 delays — the Theorem 5.1 headline.
        assert_eq!(sim.metrics().first_decision_delays(), Some(2.0));
    }

    #[test]
    fn single_survivor_decides_n_equals_f_plus_one() {
        let (mut sim, procs, _) = build(3, 3, 2);
        sim.crash_at(ActorId(1), Time::ZERO);
        sim.crash_at(ActorId(2), Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(100));
        assert_eq!(decisions(&sim, &procs)[0], Some(Value(100)));
    }

    #[test]
    fn tolerates_minority_memory_crashes() {
        let (mut sim, procs, mems) = build(2, 5, 3);
        sim.crash_at(mems[0], Time::ZERO);
        sim.crash_at(mems[2], Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(100));
        let ds = decisions(&sim, &procs);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
    }

    #[test]
    fn majority_memory_crash_blocks_safely() {
        let (mut sim, procs, mems) = build(2, 3, 4);
        sim.crash_at(mems[0], Time::ZERO);
        sim.crash_at(mems[1], Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(500));
        assert_eq!(decisions(&sim, &procs), vec![None, None]);
    }

    #[test]
    fn takeover_revokes_old_leader_and_preserves_value() {
        // p0 decides at 2 delays; p1 takes over and must adopt p0's value.
        let (mut sim, procs, _) = build(3, 3, 5);
        sim.crash_at(ActorId(0), Time::from_delays(3));
        sim.announce_leader(Time::from_delays(10), &procs, ActorId(1));
        sim.run_to_quiescence(Time::from_delays(300));
        let ds = decisions(&sim, &procs);
        assert_eq!(ds[1], Some(Value(100)), "{ds:?}");
        assert_eq!(ds[2], Some(Value(100)), "{ds:?}");
    }

    #[test]
    fn takeover_before_initial_leader_writes_blocks_its_write() {
        // p1 grabs permissions before p0 (the initial leader) gets its
        // write out: p0's write naks and p0 must not decide its own value
        // unless it re-runs and adopts.
        let (mut sim, procs, _) = build(2, 3, 6);
        // Delay p0's phase-2 writes by 50 delays.
        sim.set_delay_hook(Box::new(|_, from, _, m| {
            if from == ActorId(0) {
                if let Msg::Mem(rdma_sim::MemWire::Req {
                    req: rdma_sim::MemRequest::Write { .. },
                    ..
                }) = m
                {
                    return Some(Duration::from_delays(50));
                }
            }
            None
        }));
        sim.announce_leader(Time::from_delays(5), &procs, ActorId(1));
        sim.run_to_quiescence(Time::from_delays(1000));
        let ds = decisions(&sim, &procs);
        // Everyone agrees (p1's value wins; p0's blocked write naks).
        assert!(ds.iter().all(|d| *d == Some(Value(101))), "{ds:?}");
    }

    #[test]
    fn contending_leaders_stay_safe_many_seeds() {
        for seed in 0..15 {
            let (mut sim, procs, _) = build(3, 3, seed);
            sim.announce_leader(Time::from_delays(1), &procs[1..2], ActorId(1));
            sim.announce_leader(Time::from_delays(2), &procs[2..3], ActorId(2));
            sim.announce_leader(Time::from_delays(80), &procs, ActorId(2));
            sim.run_to_quiescence(Time::from_delays(2000));
            let got: Vec<Value> = decisions(&sim, &procs).into_iter().flatten().collect();
            assert!(!got.is_empty(), "seed {seed}: nobody decided");
            assert!(got.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {got:?}");
        }
    }
}
