//! Robust Backup (Definition 2, Theorems 4.2 / 4.4).
//!
//! `RobustBackup(A)`: take a message-passing consensus algorithm `A` that
//! tolerates crash failures (here: single-decree Paxos), and replace every
//! send/receive with T-send/T-receive over non-equivocating broadcast. The
//! result solves **weak Byzantine agreement** with `n ≥ 2·f_P + 1`
//! processes and `m ≥ 2·f_M + 1` memories — impossible for pure message
//! passing, where even with signatures asynchronous Byzantine agreement
//! needs `n ≥ 3·f_P + 1` \[15\].
//!
//! Everything here rides on the `trusted` layer; the Paxos engine runs with
//! `trust_decide = false` (decisions only from self-observed `Accepted`
//! quorums) and `broadcast_accepted = true` (everyone is a learner).
//!
//! [`RobustCore`] is embeddable (Fast & Robust drives it after a Cheap
//! Quorum abort); [`RobustPaxosActor`] is the standalone actor used by the
//! resilience experiments.

use rdma_sim::{Completion, MemoryClient};
use simnet::{Actor, ActorId, Context, Duration, EventKind, Time};

use crate::nebcast::NebEngine;
use crate::paxos::{Dest, PaxosConfig, PaxosEngine, PaxosMsg};
use crate::trusted::{PaxosChecker, RbPayload, SetupEvidence, TrustedPeer};
use crate::types::{Msg, Pid, RegVal, Value};

/// A received set-up value (Preferential Paxos phase), with evidence.
#[derive(Clone, Debug)]
pub struct SetupMsg {
    /// Who sent it.
    pub from: Pid,
    /// The value.
    pub value: Value,
    /// The attached evidence (validated by the consumer).
    pub evidence: SetupEvidence,
}

/// The embeddable Robust Backup machinery: a Paxos engine speaking through
/// a [`TrustedPeer`].
pub struct RobustCore {
    engine: PaxosEngine,
    peer: TrustedPeer,
    setups: Vec<SetupMsg>,
}

impl std::fmt::Debug for RobustCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RobustCore")
            .field("decision", &self.engine.decision())
            .field("setups", &self.setups.len())
            .finish()
    }
}

impl RobustCore {
    /// Creates the core for process `me`.
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        memories: Vec<ActorId>,
        initial_leader: Option<Pid>,
        signer: sigsim::Signer,
        verifier: sigsim::SigVerifier,
    ) -> RobustCore {
        let engine = PaxosEngine::new(PaxosConfig {
            me,
            procs: procs.clone(),
            initial_leader,
            // A Byzantine process must not be able to announce a decision.
            trust_decide: false,
            // Everyone observes phase-2 quorums directly.
            broadcast_accepted: true,
        });
        let neb = NebEngine::new(me, procs.clone(), memories, signer, verifier.clone());
        let checker = PaxosChecker {
            procs,
            initial_leader,
        };
        let peer = TrustedPeer::new(me, verifier, checker, neb);
        RobustCore {
            engine,
            peer,
            setups: Vec::new(),
        }
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.engine.decision()
    }

    /// Set-up messages received so far (Preferential Paxos phase).
    pub fn setups(&self) -> &[SetupMsg] {
        &self.setups
    }

    /// Senders caught cheating by the trusted layer.
    pub fn distrusted_len(&self) -> usize {
        self.peer.distrusted().len()
    }

    /// T-sends this process's set-up value (Algorithm 8 line 2).
    pub fn send_setup(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        value: Value,
        evidence: SetupEvidence,
    ) {
        self.peer
            .t_send(ctx, client, Dest::All, RbPayload::Setup { value, evidence });
    }

    /// Proposes a value to the wrapped Paxos instance.
    pub fn propose(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        v: Value,
    ) {
        let mut out = Vec::new();
        self.engine.propose(v, &mut out);
        self.pump(ctx, client, out);
    }

    /// Feeds an Ω announcement.
    pub fn set_leader(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        leader: Pid,
    ) {
        let mut out = Vec::new();
        self.engine.set_leader(leader, &mut out);
        self.pump(ctx, client, out);
    }

    /// Retry hook (arm on a timer).
    pub fn poke(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        let mut out = Vec::new();
        self.engine.poke(&mut out);
        self.pump(ctx, client, out);
    }

    /// Drives broadcast delivery attempts (arm on a poll timer).
    pub fn poll(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        self.peer.poll(ctx, client);
        self.process_deliveries(ctx, client);
    }

    /// Routes a memory completion. Returns true if consumed.
    pub fn on_completion(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        completion: Completion<RegVal>,
    ) -> bool {
        if !self.peer.on_completion(ctx, client, completion) {
            return false;
        }
        self.process_deliveries(ctx, client);
        true
    }

    fn process_deliveries(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
    ) {
        for d in self.peer.drain() {
            match d.payload {
                RbPayload::Setup { value, evidence } => {
                    self.setups.push(SetupMsg {
                        from: d.from,
                        value,
                        evidence,
                    });
                }
                RbPayload::Paxos(m) => {
                    let mut out = Vec::new();
                    self.engine.on_msg(d.from, m, &mut out);
                    self.pump(ctx, client, out);
                }
                // Replicated-log traffic (Byzantine-mode SMR) is not part
                // of the single-decree protocol; ignore it.
                RbPayload::LogEntries { .. } => {}
            }
        }
    }

    fn pump(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        out: Vec<(Dest, PaxosMsg)>,
    ) {
        for (dest, msg) in out {
            self.peer.t_send(ctx, client, dest, RbPayload::Paxos(msg));
        }
    }
}

const POLL_TAG: u64 = 10;
const RETRY_TAG: u64 = 11;

/// Standalone Robust Backup consensus actor (weak Byzantine agreement with
/// `n ≥ 2·f_P + 1`).
#[derive(Debug)]
pub struct RobustPaxosActor {
    core: RobustCore,
    input: Value,
    initial_leader: Option<Pid>,
    client: MemoryClient<RegVal, Msg>,
    poll_every: Duration,
    retry_every: Duration,
    /// When this process decided, if it has.
    pub decided_at: Option<Time>,
}

impl RobustPaxosActor {
    /// Creates the actor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        memories: Vec<ActorId>,
        input: Value,
        initial_leader: Option<Pid>,
        signer: sigsim::Signer,
        verifier: sigsim::SigVerifier,
        poll_every: Duration,
        retry_every: Duration,
    ) -> RobustPaxosActor {
        RobustPaxosActor {
            core: RobustCore::new(me, procs, memories, initial_leader, signer, verifier),
            input,
            initial_leader,
            client: MemoryClient::new(),
            poll_every,
            retry_every,
            decided_at: None,
        }
    }

    /// This process's decision, if reached.
    pub fn decision(&self) -> Option<Value> {
        self.core.decision()
    }

    fn check_decided(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.core.decision().is_some() && self.decided_at.is_none() {
            self.decided_at = Some(ctx.now());
            ctx.mark_decided();
        }
    }
}

impl Actor<Msg> for RobustPaxosActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                if let Some(l) = self.initial_leader {
                    self.core.set_leader(ctx, &mut self.client, l);
                }
                let input = self.input;
                self.core.propose(ctx, &mut self.client, input);
                self.core.poll(ctx, &mut self.client);
                ctx.set_timer(self.poll_every, POLL_TAG);
                ctx.set_timer(self.retry_every, RETRY_TAG);
            }
            EventKind::Timer { tag: POLL_TAG, .. } => {
                if self.decided_at.is_none() {
                    self.core.poll(ctx, &mut self.client);
                    self.check_decided(ctx);
                    ctx.set_timer(self.poll_every, POLL_TAG);
                }
            }
            EventKind::Timer { tag: RETRY_TAG, .. } => {
                if self.decided_at.is_none() {
                    self.core.poke(ctx, &mut self.client);
                    ctx.set_timer(self.retry_every, RETRY_TAG);
                }
            }
            EventKind::Timer { .. } => {}
            EventKind::LeaderChange { leader } => {
                self.core.set_leader(ctx, &mut self.client, leader);
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                if let Some(c) = self.client.on_wire(ctx, from, wire) {
                    self.core.on_completion(ctx, &mut self.client, c);
                    self.check_decided(ctx);
                }
            }
            EventKind::Msg { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nebcast;
    use rdma_sim::{LegalChange, MemoryActor};
    use sigsim::SigAuthority;
    use simnet::Simulation;

    /// Builds n processes + m memories; returns (sim, procs, mems, auth).
    fn build(
        n: u32,
        m: u32,
        seed: u64,
        skip: &[u32],
    ) -> (Simulation<Msg>, Vec<Pid>, Vec<ActorId>, SigAuthority) {
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        let mut auth = SigAuthority::new(seed ^ 0xABCD);
        let signers: Vec<_> = procs.iter().map(|&p| auth.register(p)).collect();
        for i in 0..n {
            if skip.contains(&i) {
                // Placeholder slot for an adversary added by the caller:
                // a silent process.
                sim.add(crate::adversary::SilentActor);
                continue;
            }
            sim.add(RobustPaxosActor::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                Value(100 + i as u64),
                Some(ActorId(0)),
                signers[i as usize].clone(),
                auth.verifier(),
                Duration::from_delays(1),
                Duration::from_delays(80),
            ));
        }
        for _ in 0..m {
            let mut mem = MemoryActor::new(LegalChange::Static);
            nebcast::configure_memory(&mut mem, &procs);
            sim.add(mem);
        }
        (sim, procs, mems, auth)
    }

    fn decisions(sim: &Simulation<Msg>, procs: &[Pid]) -> Vec<Option<Value>> {
        procs
            .iter()
            .map(|&p| {
                sim.actor_as::<RobustPaxosActor>(p)
                    .and_then(|a| a.decision())
            })
            .collect()
    }

    #[test]
    fn all_correct_decide_leader_value() {
        let (mut sim, procs, _, _) = build(3, 3, 1, &[]);
        let done = |s: &Simulation<Msg>| decisions(s, &procs).iter().all(|d| d.is_some());
        sim.run_until(Time::from_delays(400), done);
        let ds = decisions(&sim, &procs);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
        // The trusted path is slow: strictly more than 2 delays (nebcast
        // costs ≥ 6 per hop — footnote 2 of the paper).
        assert!(sim.metrics().first_decision_delays().unwrap() > 6.0);
    }

    #[test]
    fn decides_with_f_silent_byzantine() {
        // n = 3 = 2f+1 with f = 1 silent Byzantine process.
        let (mut sim, procs, _, _) = build(3, 3, 2, &[2]);
        let correct = [procs[0], procs[1]];
        sim.run_until(Time::from_delays(600), |s| {
            decisions(s, &correct).iter().all(|d| d.is_some())
        });
        let ds = decisions(&sim, &correct);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
    }

    #[test]
    fn tolerates_memory_crashes() {
        let (mut sim, procs, mems, _) = build(3, 5, 3, &[]);
        sim.crash_at(mems[0], Time::ZERO);
        sim.crash_at(mems[3], Time::ZERO);
        sim.run_until(Time::from_delays(600), |s| {
            decisions(s, &procs).iter().all(|d| d.is_some())
        });
        let ds = decisions(&sim, &procs);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
    }

    #[test]
    fn leader_crash_then_takeover() {
        let (mut sim, procs, _, _) = build(3, 3, 4, &[]);
        sim.crash_at(ActorId(0), Time::from_delays(3));
        sim.announce_leader(Time::from_delays(150), &procs, ActorId(1));
        let tail = [procs[1], procs[2]];
        sim.run_until(Time::from_delays(2500), |s| {
            decisions(s, &tail).iter().all(|d| d.is_some())
        });
        let ds = decisions(&sim, &tail);
        assert!(ds.iter().all(|d| d.is_some()), "{ds:?}");
        assert_eq!(ds[0], ds[1]);
    }

    #[test]
    fn five_processes_two_silent_byzantine() {
        // n = 5 = 2f+1 with f = 2.
        let (mut sim, procs, _, _) = build(5, 3, 5, &[3, 4]);
        let correct = [procs[0], procs[1], procs[2]];
        sim.run_until(Time::from_delays(900), |s| {
            decisions(s, &correct).iter().all(|d| d.is_some())
        });
        let ds = decisions(&sim, &correct);
        assert!(ds.iter().all(|d| *d == Some(Value(100))), "{ds:?}");
    }
}
