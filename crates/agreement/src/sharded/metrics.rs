//! Aggregate statistics over the sharded service's commit observations.
//!
//! The router records raw per-command latencies and per-group commit
//! timelines; these helpers reduce them to the quantities the harness
//! reports: latency percentiles (in ticks, the kernel's native unit) and
//! the worst commit stall — the longest gap between consecutive commits,
//! which is where a failover window shows up.

use simnet::Time;

/// The `p`-th percentile (0.0 ..= 100.0) of an unsorted sample, by the
/// nearest-rank method. Returns 0 for an empty sample. Reading several
/// percentiles of one sample? Sort it once and use
/// [`percentile_sorted_ticks`].
pub fn percentile_ticks(sample: &[u64], p: f64) -> u64 {
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    percentile_sorted_ticks(&sorted, p)
}

/// [`percentile_ticks`] over an already-sorted sample: no copy, no sort.
pub fn percentile_sorted_ticks(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Flattens per-group latency samples into one sorted service-level pool,
/// ready for [`percentile_sorted_ticks`]: the sharded report's service
/// percentiles come from here (a per-group p99 can look healthy while the
/// hot group drags the *service* p99 — this is the metric rebalancing is
/// judged by).
pub fn merged_sorted_ticks(groups: &[Vec<u64>]) -> Vec<u64> {
    let mut all: Vec<u64> = groups.iter().flatten().copied().collect();
    all.sort_unstable();
    all
}

/// The longest gap between consecutive observations, in ticks (0 with
/// fewer than two observations). On a healthy group this is one commit
/// round; a crash shows up as the whole failover window.
pub fn max_gap_ticks(times: &[Time]) -> u64 {
    times
        .windows(2)
        .map(|w| w[1].0.saturating_sub(w[0].0))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let sample = [10, 20, 30, 40, 50];
        assert_eq!(percentile_ticks(&sample, 50.0), 30);
        assert_eq!(percentile_ticks(&sample, 99.0), 50);
        assert_eq!(percentile_ticks(&sample, 100.0), 50);
        assert_eq!(percentile_ticks(&sample, 1.0), 10);
        assert_eq!(percentile_ticks(&[], 50.0), 0);
        // Order must not matter.
        assert_eq!(percentile_ticks(&[50, 10, 40, 20, 30], 50.0), 30);
    }

    #[test]
    fn merged_pool_is_sorted_across_groups() {
        let merged = merged_sorted_ticks(&[vec![30, 10], vec![], vec![20, 40]]);
        assert_eq!(merged, vec![10, 20, 30, 40]);
        assert_eq!(percentile_sorted_ticks(&merged, 50.0), 20);
        assert_eq!(merged_sorted_ticks(&[]), Vec::<u64>::new());
    }

    #[test]
    fn max_gap_finds_the_stall() {
        let t: Vec<Time> = [0u64, 2, 4, 40, 42].iter().map(|&d| Time(d)).collect();
        assert_eq!(max_gap_ticks(&t), 36);
        assert_eq!(max_gap_ticks(&t[..1]), 0);
        assert_eq!(max_gap_ticks(&[]), 0);
    }
}
