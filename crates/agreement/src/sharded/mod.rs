//! Sharded multi-group SMR: a partitioned replicated-log service.
//!
//! The paper's protocol ([`crate::protected`], lifted to a log by
//! [`crate::smr`]) is a *single* replication group: one leader, one
//! permission-protected region, one totally-ordered log — and therefore
//! one leader's write pipeline as the throughput ceiling. This module is
//! the layer the paper's closing systems lineage (DARE, APUS, Mu) builds
//! in practice to scale past that ceiling: **many independent groups over
//! a partitioned key space**, all simulated on one shared kernel.
//!
//! # Architecture
//!
//! ```text
//!            ┌────────────────────────────────────────────┐
//!            │                RouterActor                 │
//!            │  key ─hash→ group; per-group leader table; │
//!            │  closed-loop windows; commit observation   │
//!            └──┬─────────────────┬─────────────────┬─────┘
//!        Submit│           Submit │          Submit │   ▲ Decided /
//!              ▼                  ▼                 ▼   │ DecidedMany
//!        ┌──────────┐       ┌──────────┐      ┌──────────┐
//!        │ group 0  │       │ group 1  │   …   │ group G-1│
//!        │ n×SmrNode│       │ n×SmrNode│      │ n×SmrNode│
//!        │ m×memory │       │ m×memory │      │ m×memory │
//!        └──────────┘       └──────────┘      └──────────┘
//! ```
//!
//! * **Groups.** Each group is a full instance of the paper's single-group
//!   system: `n` [`crate::smr::SmrNode`] replicas over `m` swmr memory
//!   replicas ([`crate::protected::memory_actor`]), with its own leader,
//!   epochs and permission-revocation failover. Groups share nothing but
//!   the simulation kernel — there is no cross-group coordination, which
//!   is exactly why aggregate throughput scales with `G`.
//! * **Router** ([`router::RouterActor`]). The client-facing layer: maps
//!   each keyed command to its group (deterministic hash partition,
//!   [`workload::group_of_key`]), tracks per-group leadership from the
//!   same Ω announcements the replicas receive, keeps a bounded window of
//!   commands in flight per group, and observes commits via the leaders'
//!   decision notifications (it is an observer on every replica). On
//!   failover it re-submits in-flight commands to the new leader —
//!   at-least-once semantics, like any retrying client.
//! * **Workload** ([`workload`]). Deterministic keyed command streams:
//!   uniform, Zipf-skewed, or hot-shard, partitioned into per-group
//!   backlogs up front so runs are reproducible bit-for-bit per seed.
//! * **Metrics** ([`metrics`]). Per-group decision-latency percentiles
//!   (ticks) and worst commit stalls (failover windows), aggregated by
//!   [`crate::harness::run_sharded`] into a
//!   [`crate::harness::ShardedRunReport`].
//!
//! # Relation to the paper
//!
//! Nothing here changes the per-group protocol: each group decides in one
//! replicated-write round trip (two delays) under a stable leader and
//! fails over by permission revocation, exactly as Theorem 5.1's protocol
//! does. Sharding composes *instances* of that result; the interesting
//! new behaviour is service-level — load imbalance under skew, partial
//! failover (one group stalls while `G−1` keep committing), and the
//! kernel-side pressure of `G·(n+m)+1` actors with deep in-flight queues.
//!
//! The id layout is fixed by [`GroupTopology`]: group `g` occupies the
//! dense actor-id block `[g·(n+m), (g+1)·(n+m))` — first its `n`
//! replicas, then its `m` memories — and the router is the single last
//! actor. Registration order must match (the harness asserts it).

use simnet::ActorId;

use crate::types::Pid;

pub mod metrics;
pub mod rebalance;
pub mod router;
pub mod workload;

pub use rebalance::{
    KeyRange, MigrationSpec, RebalanceConfig, RebalancePolicy, RoutingTable, ScriptedMigration,
};
pub use router::RouterActor;
pub use workload::{
    group_of_key, partition, partition_with_table, sample_keys, PartitionedWorkload, WorkloadSpec,
};

/// The failure model (and therefore the consensus protocol) one
/// replication group runs under. Per-group: a deployment can mix
/// crash-mode and Byzantine-mode groups behind the same router, and the
/// choice is invisible to everything above the replication layer —
/// batching, session dedup, observers and migration snapshots are shared
/// through [`crate::smr::LogCore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GroupMode {
    /// Crash failures only: the paper's Protected Memory Paxos log
    /// ([`crate::smr::SmrNode`]) — 2-delay commits, permission-revocation
    /// failover. The default; bit-identical to the pre-Byzantine service.
    #[default]
    CrashPmp,
    /// Up to `f = (n-1)/2` Byzantine replicas out of `n = 2f + 1`: the
    /// log replicates through signed non-equivocating broadcast
    /// ([`crate::smr::ByzSmrNode`]), every replica reports its own
    /// settles, and the router confirms a commit only at `f + 1`
    /// matching reports — a lying leader cannot fake one.
    Byzantine,
}

/// The fixed actor-id layout of a sharded deployment: `groups` blocks of
/// `n` replicas + `m` memories, then the router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupTopology {
    /// Number of groups (shards).
    pub groups: usize,
    /// Replicas per group.
    pub n: usize,
    /// Memories per group.
    pub m: usize,
}

impl GroupTopology {
    fn block(&self) -> usize {
        self.n + self.m
    }

    /// Replica ids of group `g`.
    pub fn procs(&self, g: usize) -> Vec<Pid> {
        let base = g * self.block();
        (base..base + self.n).map(|i| ActorId(i as u32)).collect()
    }

    /// Memory ids of group `g`.
    pub fn mems(&self, g: usize) -> Vec<ActorId> {
        let base = g * self.block() + self.n;
        (base..base + self.m).map(|i| ActorId(i as u32)).collect()
    }

    /// Group `g`'s initial leader (its first replica).
    pub fn initial_leader(&self, g: usize) -> Pid {
        ActorId((g * self.block()) as u32)
    }

    /// The router's id (the single actor after all groups).
    pub fn router(&self) -> ActorId {
        ActorId((self.groups * self.block()) as u32)
    }

    /// Total actors in the deployment, router included.
    pub fn total_actors(&self) -> usize {
        self.groups * self.block() + 1
    }

    /// Which group's *replica* block contains `a` (`None` for memories,
    /// the router, and out-of-range ids).
    pub fn group_of_actor(&self, a: ActorId) -> Option<usize> {
        let i = a.0 as usize;
        let g = i / self.block();
        (g < self.groups && i % self.block() < self.n).then_some(g)
    }

    /// The kernel partition group `g` lives on when the deployment runs on
    /// the partitioned kernel split `partitions` ways: groups are placed in
    /// contiguous, balanced blocks so each group's replicas and memories
    /// are always co-located (their dense intra-group traffic never crosses
    /// a partition boundary), and group 0's block lands on partition 0 —
    /// the partition that also hosts the router. Only router traffic
    /// (`Submit` batches and decision observations, both ≥ one link delay)
    /// crosses partitions, which is exactly what the kernel's lookahead
    /// synchronization requires.
    pub fn partition_of_group(&self, g: usize, partitions: usize) -> usize {
        let parts = partitions.clamp(1, self.groups.max(1));
        g * parts / self.groups.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_layout_is_dense_and_invertible() {
        let topo = GroupTopology {
            groups: 3,
            n: 3,
            m: 5,
        };
        assert_eq!(topo.total_actors(), 25);
        assert_eq!(topo.router(), ActorId(24));
        let mut next = 0u32;
        for g in 0..3 {
            assert_eq!(topo.initial_leader(g), ActorId(next));
            for p in topo.procs(g) {
                assert_eq!(p, ActorId(next));
                assert_eq!(topo.group_of_actor(p), Some(g));
                next += 1;
            }
            for mem in topo.mems(g) {
                assert_eq!(mem, ActorId(next));
                assert_eq!(topo.group_of_actor(mem), None);
                next += 1;
            }
        }
        assert_eq!(topo.group_of_actor(topo.router()), None);
        assert_eq!(topo.group_of_actor(ActorId(99)), None);
    }
}
