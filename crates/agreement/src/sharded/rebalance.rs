//! Dynamic shard rebalancing: the versioned routing table, key-range
//! migrations, and the load-watching policy that triggers them.
//!
//! PR 2's router froze the key → group map at startup (a hash partition),
//! so a skewed workload pins its hot keys to whatever groups the hash
//! chose — forever. This module makes the map a first-class, *versioned*
//! object the router owns and mutates at run time:
//!
//! * [`RoutingTable`] — an explicit key-range → group table (sorted,
//!   non-overlapping, totally covering the key space). Every mutation
//!   bumps the table's version; version `v` is the routing **epoch** and
//!   the property tests pin that versions are strictly monotone and that
//!   every key maps to exactly one group at every epoch.
//! * [`MigrationSpec`] / [`ScriptedMigration`] — one online key-range
//!   migration: move `range` from its current owner to `to`. Migrations
//!   ride the groups' own replicated logs as control entries (below), in
//!   the spirit of keeping reconfiguration in-band rather than as
//!   out-of-band state transfer.
//! * [`RebalancePolicy`] + [`RebalanceConfig`] — watches the commit
//!   stream's per-group and per-key load and, past a threshold (with a
//!   cooldown), picks the hottest key of the hottest group and migrates
//!   it to the coldest group: the hot range splits, one key at a time.
//!
//! # The migration protocol (router-driven)
//!
//! ```text
//!  trigger          seal committed       install committed
//!     │   SEAL──►src    │  snapshot──►dst replicas │   table.migrate()
//!     ▼                 ▼  INSTALL──►dst leader    ▼   (epoch flip)
//!  [hold range cmds]  [compute snapshot]        [replay straddlers,
//!                                                move backlog, resume]
//! ```
//!
//! 1. **Seal.** The router stops submitting commands for `range` (they
//!    are held) and submits a [`seal_value`] control entry to the source
//!    group — through its ordinary replicated log, so the seal is totally
//!    ordered against every command the source ever committed for the
//!    range: everything before the seal is source history, nothing after
//!    it can be.
//! 2. **Snapshot.** When the router observes the seal commit, it
//!    materializes the deterministic snapshot of decided state for the
//!    sealed keys — the set of command ids it has observed committed for
//!    `range` (the router is the service's state observer; a full KV
//!    system would ship the key values alongside). The snapshot goes to
//!    *every* destination replica ([`crate::types::Msg::InstallSnapshot`])
//!    so it survives a destination failover, and primes their session
//!    dedup: a source-committed command can never be re-applied at the
//!    destination.
//! 3. **Install.** An [`install_value`] control entry is committed
//!    through the destination group's log, marking where the range's
//!    history resumes.
//! 4. **Flip.** On observing the install commit the router bumps the
//!    routing table ([`RoutingTable::migrate`]), re-routes the in-flight
//!    commands that straddle the epoch (submitted to the source, never
//!    observed committed — replayed to the destination, exactly-once by
//!    the PR 3 session-dedup ids), moves the held and backlogged range
//!    commands over, and resumes. Per-key order is preserved: all of a
//!    key's destination commits come after the install entry, all its
//!    source commits before the seal entry, and the router releases
//!    nothing to the destination until the flip.
//!
//! Control entries are ordinary log values from the replicas' point of
//! view (the log is opaque ids); [`decode_ctrl`] is how the router — and
//! the tests — tell them apart.

use std::collections::BTreeMap;

use simnet::Time;

use crate::types::Value;

/// A half-open key range `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct KeyRange {
    /// First key of the range.
    pub lo: u64,
    /// One past the last key of the range.
    pub hi: u64,
}

impl KeyRange {
    /// The range covering exactly `key`.
    pub fn single(key: u64) -> KeyRange {
        KeyRange {
            lo: key,
            hi: key + 1,
        }
    }

    /// Whether `key` lies in `[lo, hi)`.
    pub fn contains(&self, key: u64) -> bool {
        self.lo <= key && key < self.hi
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// The versioned key-range → group routing table.
///
/// Invariants (pinned by `tests/rebalance_props.rs`):
///
/// * entries are sorted by range start, starts are strictly increasing,
///   and the first entry starts at key 0 — so every `u64` key maps to
///   **exactly one** group at every version;
/// * [`RoutingTable::migrate`] is the only mutation and bumps
///   [`RoutingTable::version`] by exactly 1 on success (and not at all on
///   a rejected migration) — versions are strictly monotone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingTable {
    /// Routing epoch: bumped by every successful migration.
    version: u64,
    /// `(start, group)`, sorted by start; entry `i` covers
    /// `[start_i, start_{i+1})`, the last entry through `u64::MAX`.
    entries: Vec<(u64, u32)>,
}

impl RoutingTable {
    /// The initial (version 0) table: `key_space` keys split into `groups`
    /// contiguous, evenly sized ranges, group `g` owning the `g`-th.
    /// Keys at or above `key_space` route to the last group.
    pub fn even(key_space: u64, groups: usize) -> RoutingTable {
        assert!(groups > 0, "need at least one group");
        let groups = groups as u64;
        let span = key_space.div_ceil(groups).max(1);
        let entries = (0..groups)
            .map(|g| (g * span, g as u32))
            .take_while(|&(start, g)| g == 0 || start < key_space.max(1))
            .collect();
        RoutingTable {
            version: 0,
            entries,
        }
    }

    /// The current routing epoch.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The table's `(range, group)` rows, in key order.
    pub fn ranges(&self) -> Vec<(KeyRange, usize)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, &(start, g))| {
                let hi = self.entries.get(i + 1).map_or(u64::MAX, |&(s, _)| s);
                (KeyRange { lo: start, hi }, g as usize)
            })
            .collect()
    }

    /// The group `key` routes to at the current version.
    pub fn group_of(&self, key: u64) -> usize {
        let i = self.entries.partition_point(|&(start, _)| start <= key);
        self.entries[i - 1].1 as usize
    }

    /// The single group owning *all* of `range`, if there is one.
    pub fn owner_of(&self, range: KeyRange) -> Option<usize> {
        if range.is_empty() {
            return None;
        }
        let g = self.group_of(range.lo);
        // The covering entry must extend through range.hi - 1 (a missing
        // next entry means the cover runs through u64::MAX).
        let i = self
            .entries
            .partition_point(|&(start, _)| start <= range.lo);
        let entry_hi = self.entries.get(i).map_or(u64::MAX, |&(s, _)| s);
        (range.hi <= entry_hi).then_some(g)
    }

    /// Re-routes `range` to group `to`, bumping the version: the epoch
    /// flip at the end of a migration. Fails (leaving version and routing
    /// untouched) if the range is empty, spans more than one owner, or
    /// already routes to `to`. Returns the previous owner.
    pub fn migrate(&mut self, range: KeyRange, to: usize) -> Result<usize, &'static str> {
        let from = self.owner_of(range).ok_or("range spans group boundaries")?;
        if from == to {
            return Err("range already routes to the target group");
        }
        // The owning entry, and what follows the carved-out span.
        let i = self
            .entries
            .partition_point(|&(start, _)| start <= range.lo)
            - 1;
        let entry_start = self.entries[i].0;
        let mut splice: Vec<(u64, u32)> = Vec::with_capacity(3);
        if entry_start < range.lo {
            splice.push((entry_start, from as u32));
        }
        splice.push((range.lo, to as u32));
        let entry_hi = self.entries.get(i + 1).map_or(u64::MAX, |&(s, _)| s);
        if range.hi < entry_hi {
            splice.push((range.hi, from as u32));
        }
        self.entries.splice(i..=i, splice);
        self.version += 1;
        Ok(from)
    }
}

/// One key-range migration, fully specified: move `range` (owned by
/// `from` at trigger time) to group `to`. `id` names the migration in the
/// control entries of both groups' logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationSpec {
    /// Dense migration id (assigned by the router, starting at 0).
    pub id: u64,
    /// The migrating key range.
    pub range: KeyRange,
    /// Source group (the range's owner when the migration triggered).
    pub from: usize,
    /// Destination group.
    pub to: usize,
}

/// A test- or operator-scripted one-shot migration: at virtual time
/// `at_delays`, migrate `range` from its current owner to group `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScriptedMigration {
    /// Trigger time, in network delays.
    pub at_delays: u64,
    /// The key range to move.
    pub range: KeyRange,
    /// Destination group.
    pub to: usize,
}

// ---------------------------------------------------------------------
// Control entries: migrations ride the replicated logs as ordinary
// values, tagged in the id space the workload generator never uses.
// ---------------------------------------------------------------------

/// Top bit marks a control entry (client command ids are dense from 1 and
/// the no-op filler is `u64::MAX`, which is *not* a control entry).
const CTRL_BIT: u64 = 1 << 63;
/// Second bit distinguishes INSTALL from SEAL.
const CTRL_INSTALL_BIT: u64 = 1 << 62;

/// A decoded control entry (see [`decode_ctrl`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlEntry {
    /// `SEAL(mig)`: ends the migrating range's history in the source log.
    Seal {
        /// The migration this seal belongs to.
        mig: u64,
    },
    /// `INSTALL(mig)`: starts the range's history in the destination log.
    Install {
        /// The migration this install belongs to.
        mig: u64,
    },
}

/// The source group's seal entry for migration `mig`.
pub fn seal_value(mig: u64) -> Value {
    debug_assert!(mig < CTRL_INSTALL_BIT);
    Value(CTRL_BIT | mig)
}

/// The destination group's install entry for migration `mig`.
pub fn install_value(mig: u64) -> Value {
    debug_assert!(mig < CTRL_INSTALL_BIT);
    Value(CTRL_BIT | CTRL_INSTALL_BIT | mig)
}

/// Decodes a log value as a control entry; `None` for client commands and
/// the `u64::MAX` no-op filler.
pub fn decode_ctrl(v: Value) -> Option<CtrlEntry> {
    if v.0 & CTRL_BIT == 0 || v == Value(u64::MAX) {
        return None;
    }
    let mig = v.0 & !(CTRL_BIT | CTRL_INSTALL_BIT);
    Some(if v.0 & CTRL_INSTALL_BIT != 0 {
        CtrlEntry::Install { mig }
    } else {
        CtrlEntry::Seal { mig }
    })
}

// ---------------------------------------------------------------------
// The automatic rebalancer.
// ---------------------------------------------------------------------

/// Thresholds and cadence of the automatic rebalancer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebalanceConfig {
    /// How often the policy inspects its load window, in delays.
    pub check_every_delays: u64,
    /// Minimum delays between triggered migrations.
    pub cooldown_delays: u64,
    /// A group is *hot* when its share of the window's commits exceeds
    /// this (per mille). Fair share is `1000 / groups`.
    pub hot_group_permille: u32,
    /// Within a hot group, the hottest key must itself carry at least
    /// this share of the group's window commits (per mille) to be worth
    /// moving — a diffusely hot group has no single range to split off.
    pub hot_key_permille: u32,
    /// Windows with fewer commits than this are ignored (cold start,
    /// drain phase).
    pub min_window_commits: u64,
    /// Per-range move hysteresis: a key that just migrated may not be
    /// picked again for this many delays. `0` (the default, and the
    /// pre-hysteresis behaviour) lets a hot range bounce between two
    /// groups under a fast cadence — each move makes the *destination*
    /// hot, so the policy immediately moves the range back. The hold
    /// gives the load window time to forget the transient.
    pub min_hold_delays: u64,
}

impl Default for RebalanceConfig {
    fn default() -> RebalanceConfig {
        RebalanceConfig {
            check_every_delays: 200,
            cooldown_delays: 100,
            hot_group_permille: 300,
            hot_key_permille: 100,
            min_window_commits: 64,
            min_hold_delays: 0,
        }
    }
}

/// Watches the commit stream and decides when (and what) to migrate.
///
/// All state is fed from the router's deterministic commit observations
/// and stored in ordered containers, so the policy's decisions are part
/// of the run's determinism contract (bit-identical across worker thread
/// counts on the partitioned kernel).
#[derive(Clone, Debug)]
pub struct RebalancePolicy {
    cfg: RebalanceConfig,
    /// Commits per group in the current window.
    win_group: Vec<u64>,
    /// Commits per key in the current window (ordered: deterministic
    /// iteration for the hottest-key argmax).
    win_keys: BTreeMap<u64, u64>,
    /// No trigger before this time (cooldown).
    quiet_until: Time,
    /// Per-range move history: when each key was last migrated (and how
    /// often) — the hysteresis state behind
    /// [`RebalanceConfig::min_hold_delays`].
    moved_at: BTreeMap<u64, Time>,
    move_counts: BTreeMap<u64, u32>,
}

impl RebalancePolicy {
    /// A policy over `groups` groups with thresholds `cfg`.
    pub fn new(cfg: RebalanceConfig, groups: usize) -> RebalancePolicy {
        RebalancePolicy {
            cfg,
            win_group: vec![0; groups],
            win_keys: BTreeMap::new(),
            quiet_until: Time(0),
            moved_at: BTreeMap::new(),
            move_counts: BTreeMap::new(),
        }
    }

    /// How many times the policy has migrated `key` so far.
    pub fn moves_of(&self, key: u64) -> u32 {
        self.move_counts.get(&key).copied().unwrap_or(0)
    }

    /// The policy's cadence, in delays.
    pub fn check_every_delays(&self) -> u64 {
        self.cfg.check_every_delays
    }

    /// Feeds one observed commit (key `key`, committed by group `group`)
    /// into the current window.
    pub fn observe(&mut self, key: u64, group: usize) {
        self.win_group[group] += 1;
        *self.win_keys.entry(key).or_insert(0) += 1;
    }

    /// Discards the current window without deciding anything — the
    /// check-tick path while a migration is already in flight (deciding
    /// would burn the cooldown on a trigger the router must drop).
    pub fn skip_window(&mut self) {
        self.win_keys.clear();
        self.win_group.iter_mut().for_each(|c| *c = 0);
    }

    /// Inspects the window and proposes a migration if the load is skewed
    /// enough: the hottest key of the hottest group moves to the coldest
    /// group. Resets the window either way. Deterministic: candidates
    /// come from ordered containers and every tie-break is fixed.
    pub fn decide(&mut self, table: &RoutingTable, now: Time) -> Option<(KeyRange, usize)> {
        let total: u64 = self.win_group.iter().sum();
        let groups = self.win_group.len();
        let win_keys = std::mem::take(&mut self.win_keys);
        let win_group = std::mem::replace(&mut self.win_group, vec![0; groups]);
        if total < self.cfg.min_window_commits || now < self.quiet_until {
            return None;
        }
        let hot = (0..win_group.len()).max_by_key(|&g| win_group[g])?;
        if win_group[hot] * 1000 < self.cfg.hot_group_permille as u64 * total {
            return None;
        }
        // Hottest key currently routed to the hot group — skipping keys
        // still under their post-move hold (the hysteresis that stops a
        // hot range bouncing between two groups under a fast cadence).
        let hold_ticks = self.cfg.min_hold_delays * simnet::TICKS_PER_DELAY;
        let (key, count) = win_keys
            .iter()
            .filter(|&(&k, _)| table.group_of(k) == hot)
            .filter(|&(&k, _)| {
                hold_ticks == 0
                    || self
                        .moved_at
                        .get(&k)
                        .is_none_or(|&t| now.0 >= t.0 + hold_ticks)
            })
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&k, &c)| (k, c))?;
        if count * 1000 < self.cfg.hot_key_permille as u64 * win_group[hot] {
            return None;
        }
        let cold = (0..win_group.len())
            .filter(|&g| g != hot)
            .min_by_key(|&g| win_group[g])?;
        self.quiet_until = Time(now.0 + self.cfg.cooldown_delays * simnet::TICKS_PER_DELAY);
        self.moved_at.insert(key, now);
        *self.move_counts.entry(key).or_insert(0) += 1;
        Some((KeyRange::single(key), cold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_table_covers_the_key_space() {
        let t = RoutingTable::even(4096, 4);
        assert_eq!(t.version(), 0);
        assert_eq!(t.group_of(0), 0);
        assert_eq!(t.group_of(1023), 0);
        assert_eq!(t.group_of(1024), 1);
        assert_eq!(t.group_of(4095), 3);
        assert_eq!(
            t.group_of(u64::MAX),
            3,
            "out-of-space keys route to the last group"
        );
        assert_eq!(t.ranges().len(), 4);
    }

    #[test]
    fn migrate_splits_and_bumps_version() {
        let mut t = RoutingTable::even(4096, 4);
        let from = t.migrate(KeyRange::single(5), 2).unwrap();
        assert_eq!(from, 0);
        assert_eq!(t.version(), 1);
        assert_eq!(t.group_of(5), 2);
        assert_eq!(t.group_of(4), 0);
        assert_eq!(t.group_of(6), 0);
        // A wider interior range.
        let from = t.migrate(KeyRange { lo: 1100, hi: 1200 }, 3).unwrap();
        assert_eq!(from, 1);
        assert_eq!(t.version(), 2);
        assert_eq!(t.group_of(1099), 1);
        assert_eq!(t.group_of(1150), 3);
        assert_eq!(t.group_of(1200), 1);
    }

    #[test]
    fn migrate_rejects_split_owners_and_noops() {
        let mut t = RoutingTable::even(4096, 4);
        assert!(t.migrate(KeyRange { lo: 1000, hi: 1100 }, 3).is_err());
        assert!(t.migrate(KeyRange::single(5), 0).is_err());
        assert!(t.migrate(KeyRange { lo: 9, hi: 9 }, 1).is_err());
        assert_eq!(
            t.version(),
            0,
            "rejected migrations must not bump the version"
        );
    }

    #[test]
    fn ctrl_encoding_round_trips_and_avoids_reserved_values() {
        assert_eq!(decode_ctrl(seal_value(7)), Some(CtrlEntry::Seal { mig: 7 }));
        assert_eq!(
            decode_ctrl(install_value(7)),
            Some(CtrlEntry::Install { mig: 7 })
        );
        assert_eq!(
            decode_ctrl(Value(u64::MAX)),
            None,
            "no-op filler is not ctrl"
        );
        assert_eq!(decode_ctrl(Value(0)), None);
        assert_eq!(decode_ctrl(Value(123_456)), None);
    }

    #[test]
    fn policy_moves_the_hot_key_to_the_cold_group() {
        let table = RoutingTable::even(4096, 4);
        let mut p = RebalancePolicy::new(
            RebalanceConfig {
                min_window_commits: 10,
                ..RebalanceConfig::default()
            },
            4,
        );
        // Key 3 (group 0) dominates; group 2 is coldest.
        for _ in 0..50 {
            p.observe(3, 0);
        }
        for _ in 0..9 {
            p.observe(2000, 1);
            p.observe(3000, 2);
            p.observe(3100, 3);
        }
        p.observe(3000, 2); // break the 1/3 tie: 2 is not coldest
        let got = p
            .decide(&table, Time(1_000_000))
            .expect("skew should trigger");
        assert_eq!(got, (KeyRange::single(3), 1));
        // Window reset: an immediate re-check has nothing to act on.
        assert_eq!(p.decide(&table, Time(1_000_001)), None);
    }

    #[test]
    fn policy_respects_cooldown_and_min_window() {
        let table = RoutingTable::even(4096, 2);
        let cfg = RebalanceConfig {
            min_window_commits: 100,
            cooldown_delays: 50,
            ..RebalanceConfig::default()
        };
        let mut p = RebalancePolicy::new(cfg, 2);
        for _ in 0..99 {
            p.observe(1, 0);
        }
        assert_eq!(p.decide(&table, Time(0)), None, "below min window");
        for _ in 0..200 {
            p.observe(1, 0);
        }
        assert!(p.decide(&table, Time(0)).is_some());
        for _ in 0..200 {
            p.observe(1, 0);
        }
        let in_cooldown = Time(10 * simnet::TICKS_PER_DELAY);
        assert_eq!(p.decide(&table, in_cooldown), None, "cooldown ignored");
    }
}
