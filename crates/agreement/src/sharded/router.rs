//! The router: the sharded service's client-facing actor.
//!
//! One router fronts all `G` groups. It owns the partitioned command
//! backlogs, tracks each group's current leader (from the same Ω
//! announcements the replicas receive), keeps up to `window` commands in
//! flight per group ([`Msg::Submit`] batches to the leader), and observes
//! commits through the leaders' `Decided`/`DecidedMany` notifications
//! (it is registered as an observer on every replica). From those
//! observations it derives the service-level metrics: per-command decision
//! latency, per-group commit timelines, and completion.
//!
//! **Failover.** When Ω announces a new leader for a group, the router
//! re-submits every in-flight (submitted, not yet observed committed)
//! command of that group to the new leader. A command the crashed leader
//! actually committed may therefore appear twice in the group's log —
//! at-least-once delivery, the standard client-retry contract; the state
//! machine dedups. Latency and completion metrics count each command
//! once, at its first observed commit, timed from its *first* submission
//! (so failover stalls show up in the tail).
//!
//! **Session tagging.** Every command carries its client-session tag
//! `(client_id, seq)` in the value itself: the router is the service's
//! single client (`client_id` is implicitly 0) and the dense 1-based
//! command id assigned by the workload generator is the session sequence
//! number. Replicas with [`crate::smr::SmrNode::with_session_dedup`]
//! enabled use that tag to suppress re-proposals of already-decided
//! commands, upgrading the failover path to exactly-once application; the
//! harness surfaces the count as `duplicates_suppressed`.
//!
//! **Rebalancing** ([`RouterActor::with_rebalance`]). Instead of the
//! static key hash, routing follows a versioned
//! [`rebalance::RoutingTable`] the router mutates at run time: scripted
//! and policy-triggered key-range migrations run the seal → snapshot →
//! install → flip protocol described in [`rebalance`], with the control
//! entries committed through the source and destination groups' own
//! replicated logs. During a migration the router holds back the
//! migrating range's commands; at the epoch flip it re-routes them — plus
//! any in-flight commands that straddled the epoch — to the destination,
//! preserving per-key order and (via the session-dedup ids) exactly-once
//! application. Off by default: without it the router is bit-identical to
//! the static-hash service.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use simnet::{Actor, Context, Duration, EventKind, Time};

use crate::types::{Msg, Pid, Value};

use super::rebalance::{
    self, CtrlEntry, KeyRange, MigrationSpec, RebalancePolicy, RoutingTable, ScriptedMigration,
};
use super::workload::PartitionedWorkload;
use super::{GroupMode, GroupTopology};

/// Timer tag of the rebalance policy's periodic load check.
const POLICY_TAG: u64 = 1;
/// Timer tag of the arrival pump (paced-arrival mode only).
const ARRIVAL_TAG: u64 = 2;
/// Timer tags `SCRIPT_TAG_BASE + i` fire scripted migration `i`.
const SCRIPT_TAG_BASE: u64 = 16;

/// How often the arrival pump wakes the router to release newly arrived
/// commands, in ticks (a quarter network delay: fine-grained enough that
/// pacing granularity never shows in whole-delay metrics).
const ARRIVAL_PUMP_TICKS: u64 = simnet::TICKS_PER_DELAY / 4;

/// Per-group routing and progress state.
#[derive(Debug)]
struct GroupState {
    /// The replica the router currently believes leads this group.
    leader: Pid,
    /// Commands assigned to this group, not yet submitted.
    backlog: VecDeque<Value>,
    /// Commands submitted at least once, in first-submission order
    /// (append-only except for epoch flips, which move straddling
    /// commands out; commits are tracked by id, not by removal).
    submitted: Vec<Value>,
    /// Migration control entries (seal/install) submitted to this group
    /// and not yet observed committed; re-sent on failover like any
    /// in-flight command.
    ctrl_in_flight: Vec<Value>,
    /// Unique commands observed committed.
    committed: usize,
    /// Decision latency of each command, in ticks, first-commit order.
    latencies_ticks: Vec<u64>,
    /// When each unique commit was observed (the group's commit timeline).
    commit_times: Vec<Time>,
}

impl GroupState {
    fn in_flight(&self) -> usize {
        self.submitted.len() - self.committed
    }
}

/// One completed migration, for the run report.
#[derive(Clone, Copy, Debug)]
struct MigrationRecord {
    #[allow(dead_code)]
    spec: MigrationSpec,
    triggered: Time,
    completed: Time,
}

/// The in-progress migration.
#[derive(Debug)]
struct ActiveMigration {
    spec: MigrationSpec,
    /// Sealing: waiting for the seal to commit at the source.
    /// Installing (`sealed == true`): waiting for the install at the
    /// destination.
    sealed: bool,
    triggered: Time,
    /// Commands for the migrating range encountered (and held) while the
    /// migration runs, in id order.
    held: Vec<Value>,
}

/// Dynamic-routing state: present iff the router was built
/// [`RouterActor::with_rebalance`].
#[derive(Debug)]
struct RebalanceState {
    table: RoutingTable,
    /// Key of command id `i` (from the partitioned workload).
    keys: Vec<u64>,
    policy: Option<RebalancePolicy>,
    scripted: Vec<ScriptedMigration>,
    active: Option<ActiveMigration>,
    /// Triggers that arrived while another migration was active.
    queued: VecDeque<(KeyRange, usize)>,
    next_mig_id: u64,
    completed: Vec<MigrationRecord>,
    /// Commands re-routed across an epoch flip (straddlers + held +
    /// backlog moves).
    rerouted: u64,
    /// Commits observed in a group the command was no longer assigned to
    /// (a late notification racing the epoch flip; 0 on FIFO schedules).
    /// Each such race may leave one duplicate log entry at the
    /// destination (its replicas' dedup was never primed with the id)
    /// and shrinks the destination's effective window by one — the
    /// documented residue of router-side snapshots; the counter bounds
    /// both effects.
    cross_epoch_commits: u64,
}

/// Byzantine-commit confirmation: present iff any group runs
/// [`GroupMode::Byzantine`]. In a Byzantine group a single replica's
/// `Decided` notification proves nothing (the sender may be lying), so
/// the router buffers per-value reporter sets and forwards an observation
/// to the normal commit path only once `f + 1` *distinct* replicas of the
/// group have reported it — at least one of them is then correct.
#[derive(Debug)]
struct ByzConfirm {
    /// Per-group failure mode (index = group).
    modes: Vec<GroupMode>,
    /// Reports needed before an observation counts (`f + 1`).
    quorum: usize,
    /// `(group, value) → distinct reporters`, `None` once confirmed (the
    /// tombstone keeps a straggling post-quorum report from re-opening
    /// the entry). What remains `Some` at the end of a run is exactly
    /// the unconfirmed claims.
    pending: BTreeMap<(usize, u64), Option<BTreeSet<u32>>>,
    /// Reports withheld from the commit path pending their quorum (the
    /// cumulative work the confirmation layer did; every fabricated
    /// claim lands here at least once).
    withheld: u64,
    /// Whether the deployment's Byzantine leaders run the speculative
    /// fast path (their report arrives at the broadcast write ack rather
    /// than self-delivery). Purely observational at the router: the
    /// `f + 1` distinct-report quorum is never relaxed — the fast path
    /// moves the *leader's* report earlier, and this flag tracks how
    /// often that early report was load-bearing.
    fast_path: bool,
    /// Confirmations where the group leader's speculative report was
    /// already in the reporter set when a follower's corroboration
    /// completed the quorum — the commits the fast path confirmed at the
    /// earliest sound point.
    fast_confirms: u64,
}

/// The router actor. Build with [`RouterActor::new`], register it *after*
/// all group replicas and memories so its id matches
/// [`GroupTopology::router`].
#[derive(Debug)]
pub struct RouterActor {
    topo: GroupTopology,
    /// Per-group in-flight window; `0` means open-loop (the harness
    /// preloaded every backlog into the initial leaders, and the router
    /// only observes).
    window: usize,
    groups: Vec<GroupState>,
    /// Current group assignment of command id `i` (from the partitioned
    /// workload; epoch flips re-assign migrated ids).
    group_of: Vec<u32>,
    /// First-submission time of command id `i`, in ticks.
    submit_ticks: Vec<u64>,
    /// Whether command id `i` has been observed committed.
    committed: Vec<bool>,
    committed_total: usize,
    total: usize,
    rebalance: Option<RebalanceState>,
    /// Paced-arrival mode: command `i` arrives (becomes eligible, and
    /// starts its latency clock) at tick `(i - 1) · interval`. `0` is the
    /// classic everything-at-time-zero run.
    arrival_interval_ticks: u64,
    /// Byzantine-group commit confirmation (absent in all-crash
    /// deployments — the zero-cost default path).
    byz: Option<ByzConfirm>,
}

impl RouterActor {
    /// Creates the router for `topo`, owning `workload`'s backlogs.
    pub fn new(topo: GroupTopology, workload: PartitionedWorkload, window: usize) -> RouterActor {
        let total = workload.total();
        let groups = workload
            .backlogs
            .iter()
            .enumerate()
            .map(|(g, backlog)| GroupState {
                leader: topo.initial_leader(g),
                backlog: backlog.iter().copied().collect(),
                submitted: Vec::new(),
                ctrl_in_flight: Vec::new(),
                committed: 0,
                latencies_ticks: Vec::new(),
                commit_times: Vec::new(),
            })
            .collect();
        RouterActor {
            topo,
            window,
            groups,
            group_of: workload.group_of,
            submit_ticks: vec![0; total + 1],
            committed: vec![false; total + 1],
            committed_total: 0,
            total,
            rebalance: None,
            arrival_interval_ticks: 0,
            byz: None,
        }
    }

    /// Declares per-group failure modes (index = group; missing entries
    /// default to [`GroupMode::CrashPmp`]). Observations from Byzantine
    /// groups are held until `f + 1 = (n - 1) / 2 + 1` distinct replicas
    /// of the group report the same value; `n` is the per-group replica
    /// count. A no-op when every group is crash-mode.
    pub fn with_group_modes(mut self, modes: Vec<GroupMode>, n: usize) -> RouterActor {
        if modes.contains(&GroupMode::Byzantine) {
            self.byz = Some(ByzConfirm {
                modes,
                quorum: (n - 1) / 2 + 1,
                pending: BTreeMap::new(),
                withheld: 0,
                fast_path: false,
                fast_confirms: 0,
            });
        }
        self
    }

    /// Declares that Byzantine-mode leaders run the speculative fast
    /// path, so their reports arrive at the broadcast write ack. The
    /// confirmation quorum is unchanged (reducing it below `f + 1`
    /// distinct reports would let a lying leader plus stragglers commit
    /// fabricated claims); the router just counts how often the leader's
    /// early report completed a quorum ([`RouterActor::byz_fast_confirms`]).
    /// Call after [`RouterActor::with_group_modes`]; a no-op on all-crash
    /// deployments.
    pub fn with_byz_fast_path(mut self) -> RouterActor {
        if let Some(byz) = self.byz.as_mut() {
            byz.fast_path = true;
        }
        self
    }

    /// Whether group `g`'s observations need Byzantine confirmation.
    fn byz_group(&self, g: usize) -> bool {
        self.byz
            .as_ref()
            .is_some_and(|b| b.modes.get(g).copied().unwrap_or_default() == GroupMode::Byzantine)
    }

    /// Runs one raw observation through Byzantine confirmation. Returns
    /// true exactly when the observation should enter the normal commit
    /// path: immediately for crash groups, at the `f + 1`-th distinct
    /// reporter for Byzantine ones (later duplicates are dropped — the
    /// commit path already ran).
    fn confirm(&mut self, g: usize, from: Pid, v: Value) -> bool {
        if !self.byz_group(g) {
            return true;
        }
        let leader = self.groups[g].leader;
        let byz = self.byz.as_mut().expect("byz_group implies state");
        let entry = byz
            .pending
            .entry((g, v.0))
            .or_insert_with(|| Some(BTreeSet::new()));
        let Some(reporters) = entry else {
            return false; // already confirmed; stale re-report
        };
        let new_reporter = reporters.insert(from.0);
        if reporters.len() >= byz.quorum {
            if byz.fast_path && from != leader && reporters.contains(&leader.0) {
                // The leader's speculative write-ack report was already
                // banked when this follower corroboration closed the
                // quorum: the fast path bought this commit its headroom.
                byz.fast_confirms += 1;
            }
            *entry = None;
            return true;
        }
        if new_reporter {
            byz.withheld += 1;
        }
        false
    }

    /// Observed claims from Byzantine groups still short of their `f + 1`
    /// confirmation quorum — a lying leader's claims for commits *no
    /// honest quorum ever backed* end the run here. (On a run cut off at
    /// its `max_delays` budget this can also include honest reports whose
    /// corroboration was still in flight; completed runs drain those.)
    pub fn byz_unconfirmed_claims(&self) -> u64 {
        self.byz.as_ref().map_or(0, |b| {
            b.pending.values().filter(|r| r.is_some()).count() as u64
        })
    }

    /// Reports from Byzantine groups withheld from the commit path
    /// pending their confirmation quorum, cumulative over the run.
    pub fn byz_withheld_reports(&self) -> u64 {
        self.byz.as_ref().map_or(0, |b| b.withheld)
    }

    /// Confirmations where a fast-path leader's speculative write-ack
    /// report was load-bearing — already in the reporter set when a
    /// follower's corroboration completed the `f + 1` quorum (0 unless
    /// [`RouterActor::with_byz_fast_path`] is on).
    pub fn byz_fast_confirms(&self) -> u64 {
        self.byz.as_ref().map_or(0, |b| b.fast_confirms)
    }

    /// Enables paced arrivals: command `i` becomes eligible for
    /// submission at tick `(i - 1) · interval_ticks`, and its decision
    /// latency is measured from that arrival — so time spent queued in
    /// the router (e.g. behind a hot shard) lands in the latency tail.
    /// Requires a closed-loop window.
    pub fn with_paced_arrivals(mut self, interval_ticks: u64) -> RouterActor {
        assert!(self.window > 0, "paced arrivals need a closed-loop window");
        self.arrival_interval_ticks = interval_ticks.max(1);
        self
    }

    /// Paced-arrival tick of command id `i` (0 when pacing is off).
    fn arrival_tick(&self, id: u64) -> u64 {
        self.arrival_interval_ticks * id.saturating_sub(1)
    }

    /// Enables dynamic routing: `table` must be the (version 0) table the
    /// workload was partitioned with ([`super::partition_with_table`]) and
    /// `keys` the workload's id → key map. `scripted` migrations fire at
    /// their scripted times; `policy`, if any, watches the commit stream
    /// and triggers its own. Requires a closed-loop window (the router
    /// must mediate every submission to hold a sealing range back).
    pub fn with_rebalance(
        mut self,
        table: RoutingTable,
        keys: Vec<u64>,
        policy: Option<RebalancePolicy>,
        scripted: Vec<ScriptedMigration>,
    ) -> RouterActor {
        assert!(
            self.window > 0,
            "rebalancing needs a closed-loop window (router-mediated submission)"
        );
        assert_eq!(
            keys.len(),
            self.total + 1,
            "id → key map must cover the workload"
        );
        self.rebalance = Some(RebalanceState {
            table,
            keys,
            policy,
            scripted,
            active: None,
            queued: VecDeque::new(),
            next_mig_id: 0,
            completed: Vec::new(),
            rerouted: 0,
            cross_epoch_commits: 0,
        });
        self
    }

    /// Whether every command has been observed committed.
    pub fn done(&self) -> bool {
        self.committed_total >= self.total
    }

    /// Unique commands observed committed so far.
    pub fn committed_total(&self) -> usize {
        self.committed_total
    }

    /// Unique commands group `g` has committed.
    pub fn group_committed(&self, g: usize) -> usize {
        self.groups[g].committed
    }

    /// Decision latencies of group `g`'s commands, in ticks, in
    /// first-commit order.
    pub fn group_latencies_ticks(&self, g: usize) -> &[u64] {
        &self.groups[g].latencies_ticks
    }

    /// Group `g`'s commit-observation timeline.
    pub fn group_commit_times(&self, g: usize) -> &[Time] {
        &self.groups[g].commit_times
    }

    /// The current (post-migration) group assignment of every command id
    /// (index 0 unused). Without rebalancing this is the workload's static
    /// partition.
    pub fn group_assignment(&self) -> &[u32] {
        &self.group_of
    }

    /// Completed migrations so far.
    pub fn migrations_completed(&self) -> usize {
        self.rebalance.as_ref().map_or(0, |rb| rb.completed.len())
    }

    /// Trigger → epoch-flip duration of each completed migration, in ticks.
    pub fn migration_windows_ticks(&self) -> Vec<u64> {
        self.rebalance.as_ref().map_or_else(Vec::new, |rb| {
            rb.completed
                .iter()
                .map(|m| m.completed.0.saturating_sub(m.triggered.0))
                .collect()
        })
    }

    /// The routing table's current version (0 without rebalancing: the
    /// static partition never flips an epoch).
    pub fn routing_version(&self) -> u64 {
        self.rebalance.as_ref().map_or(0, |rb| rb.table.version())
    }

    /// Commands re-routed across epoch flips.
    pub fn rerouted_commands(&self) -> u64 {
        self.rebalance.as_ref().map_or(0, |rb| rb.rerouted)
    }

    /// Commits observed in a group the command was no longer assigned to
    /// (late notifications racing an epoch flip; 0 on FIFO schedules).
    pub fn cross_epoch_commits(&self) -> u64 {
        self.rebalance
            .as_ref()
            .map_or(0, |rb| rb.cross_epoch_commits)
    }

    /// Sends up to `window - in_flight` backlog commands of group `g` to
    /// its current leader, as one `Submit` batch. Commands of a range
    /// that is mid-migration are held back instead (released at the flip).
    fn refill(&mut self, ctx: &mut Context<'_, Msg>, g: usize) {
        if self.window == 0 {
            return; // open loop: everything was preloaded at build time
        }
        // The sealing range, if this group is a migration's source.
        let sealing: Option<KeyRange> = self.rebalance.as_ref().and_then(|rb| {
            rb.active
                .as_ref()
                .filter(|m| m.spec.from == g)
                .map(|m| m.spec.range)
        });
        let state = &mut self.groups[g];
        let room = self.window.saturating_sub(state.in_flight());
        if room == 0 || state.backlog.is_empty() {
            return;
        }
        let now = ctx.now().0;
        let mut cmds = Vec::with_capacity(room.min(state.backlog.len()));
        while cmds.len() < room {
            // Paced arrivals: the backlog is released front-gated — the
            // group submits nothing past its first not-yet-arrived
            // command (the backlog is id-ordered up to epoch-flip moves,
            // and a key's ids arrive in order, so this never reorders a
            // key).
            if self.arrival_interval_ticks > 0 {
                match state.backlog.front() {
                    Some(v) if self.arrival_interval_ticks * (v.0 - 1) > now => break,
                    _ => {}
                }
            }
            let Some(v) = state.backlog.pop_front() else {
                break;
            };
            if let Some(range) = sealing {
                let rb = self.rebalance.as_ref().expect("sealing implies rebalance");
                if range.contains(rb.keys[v.0 as usize]) {
                    // Mid-migration: hold the command for the destination.
                    self.rebalance
                        .as_mut()
                        .expect("checked")
                        .active
                        .as_mut()
                        .expect("checked")
                        .held
                        .push(v);
                    continue;
                }
            }
            // First submission stamps the latency clock — at the
            // command's *arrival* when pacing is on (queue wait counts),
            // at submission otherwise. Straddlers re-routed through a
            // later backlog keep their original stamp.
            if self.submit_ticks[v.0 as usize] == 0 {
                self.submit_ticks[v.0 as usize] = if self.arrival_interval_ticks > 0 {
                    self.arrival_interval_ticks * (v.0 - 1)
                } else {
                    now
                };
                ctx.obs_mark(v.0, crate::spans::STAGE_SUBMIT, g as u64);
            }
            state.submitted.push(v);
            cmds.push(v);
        }
        // `state` was reborrowed away by the hold path; fetch it again.
        let state = &mut self.groups[g];
        if !cmds.is_empty() {
            for v in &cmds {
                ctx.obs_mark(v.0, crate::spans::STAGE_ROUTE, g as u64);
            }
            let leader = state.leader;
            ctx.send(leader, Msg::Submit { cmds });
        }
    }

    /// Marks `v` committed by group `g` (first observation only).
    fn observe_commit(&mut self, ctx: &mut Context<'_, Msg>, g: usize, v: Value) {
        let now = ctx.now();
        let id = v.0 as usize;
        // No-op fillers and unknown ids carry no client command.
        if id == 0 || id >= self.committed.len() || self.committed[id] {
            return;
        }
        match &mut self.rebalance {
            None => debug_assert_eq!(
                self.group_of[id] as usize, g,
                "command leaked across groups"
            ),
            Some(rb) => {
                if self.group_of[id] as usize != g {
                    // A late source-side commit racing the epoch flip: the
                    // command was re-assigned to the destination but the
                    // source committed it first (or its notification was
                    // in flight at the flip). Count it once for the
                    // service, drop the stale copy from the destination's
                    // backlog, and keep per-group accounting out of it.
                    rb.cross_epoch_commits += 1;
                    self.committed[id] = true;
                    self.committed_total += 1;
                    ctx.obs_mark(v.0, crate::spans::STAGE_CONFIRM, g as u64);
                    let dest = self.group_of[id] as usize;
                    self.groups[dest].backlog.retain(|&b| b != v);
                    return;
                }
                if let Some(policy) = &mut rb.policy {
                    policy.observe(rb.keys[id], g);
                }
            }
        }
        self.committed[id] = true;
        self.committed_total += 1;
        ctx.obs_mark(v.0, crate::spans::STAGE_CONFIRM, g as u64);
        let state = &mut self.groups[g];
        state.committed += 1;
        state
            .latencies_ticks
            .push(now.0.saturating_sub(self.submit_ticks[id]));
        state.commit_times.push(now);
    }

    /// Re-submits every in-flight command of group `g` to its (new)
    /// leader: the at-least-once failover path. Pending migration control
    /// entries ride along, after the commands they were queued behind.
    fn resubmit_in_flight(&mut self, ctx: &mut Context<'_, Msg>, g: usize) {
        let state = &self.groups[g];
        let mut cmds: Vec<Value> = state
            .submitted
            .iter()
            .copied()
            .filter(|v| !self.committed[v.0 as usize])
            .collect();
        cmds.extend(state.ctrl_in_flight.iter().copied());
        if !cmds.is_empty() {
            for v in &cmds {
                ctx.obs_mark(v.0, crate::spans::STAGE_ROUTE, g as u64);
            }
            let leader = state.leader;
            ctx.send(leader, Msg::Submit { cmds });
        }
    }

    /// Submits a migration control entry through group `g`'s log.
    fn send_ctrl(&mut self, ctx: &mut Context<'_, Msg>, g: usize, v: Value) {
        self.groups[g].ctrl_in_flight.push(v);
        let leader = self.groups[g].leader;
        ctx.send(leader, Msg::Submit { cmds: vec![v] });
    }

    /// Starts (or queues) a migration of `range` to group `to`. Silently
    /// drops triggers the routing table rejects (no single owner, or the
    /// range already lives on `to`).
    fn trigger_migration(&mut self, ctx: &mut Context<'_, Msg>, range: KeyRange, to: usize) {
        let Some(rb) = &mut self.rebalance else {
            return;
        };
        if to >= self.groups.len() {
            return;
        }
        if rb.active.is_some() {
            rb.queued.push_back((range, to));
            return;
        }
        let Some(from) = rb.table.owner_of(range) else {
            return;
        };
        if from == to {
            return;
        }
        let spec = MigrationSpec {
            id: rb.next_mig_id,
            range,
            from,
            to,
        };
        rb.next_mig_id += 1;
        rb.active = Some(ActiveMigration {
            spec,
            sealed: false,
            triggered: ctx.now(),
            held: Vec::new(),
        });
        self.send_ctrl(ctx, from, rebalance::seal_value(spec.id));
    }

    /// Handles an observed migration control-entry commit in group `g`.
    fn observe_ctrl(&mut self, ctx: &mut Context<'_, Msg>, g: usize, ctrl: CtrlEntry, v: Value) {
        self.groups[g].ctrl_in_flight.retain(|&c| c != v);
        let Some(rb) = &mut self.rebalance else {
            return;
        };
        let Some(active) = &mut rb.active else {
            return; // stale re-commit of a finished migration
        };
        let spec = active.spec;
        match ctrl {
            CtrlEntry::Seal { mig } if mig == spec.id && g == spec.from && !active.sealed => {
                active.sealed = true;
                // The deterministic snapshot of decided state for the
                // sealed keys: every range command observed committed at
                // the source, in id order.
                let seen: Vec<u64> = (1..=self.total as u64)
                    .filter(|&id| {
                        self.committed[id as usize] && spec.range.contains(rb.keys[id as usize])
                    })
                    .collect();
                for &p in &self.topo.procs(spec.to) {
                    ctx.send(
                        p,
                        Msg::InstallSnapshot {
                            mig: spec.id,
                            seen: seen.clone(),
                        },
                    );
                }
                self.send_ctrl(ctx, spec.to, rebalance::install_value(spec.id));
            }
            CtrlEntry::Install { mig } if mig == spec.id && g == spec.to && active.sealed => {
                self.flip_epoch(ctx);
            }
            _ => {}
        }
    }

    /// The epoch flip: bump the routing table, move everything the
    /// migration displaced to the destination, and resume both groups.
    fn flip_epoch(&mut self, ctx: &mut Context<'_, Msg>) {
        let rb = self.rebalance.as_mut().expect("flip without rebalance");
        let active = rb.active.take().expect("flip without active migration");
        let spec = active.spec;
        rb.table
            .migrate(spec.range, spec.to)
            .expect("owner validated at trigger time");

        // Straddlers: submitted to the source, never observed committed.
        // The seal commit proves the source will not decide them as ours
        // anymore (their history there ended at the seal), so they replay
        // at the destination — exactly-once via the session-dedup ids.
        let src = &mut self.groups[spec.from];
        let mut straddlers: Vec<Value> = Vec::new();
        src.submitted.retain(|&v| {
            let straddles =
                !self.committed[v.0 as usize] && spec.range.contains(rb.keys[v.0 as usize]);
            if straddles {
                straddlers.push(v);
            }
            !straddles
        });
        // Backlog commands for the range that were never submitted.
        let mut moved: Vec<Value> = Vec::new();
        src.backlog.retain(|&v| {
            let moves = spec.range.contains(rb.keys[v.0 as usize]);
            if moves {
                moved.push(v);
            }
            !moves
        });

        // Destination receives: straddlers (oldest), held (skipped during
        // sealing), then the unsubmitted backlog — per-key id order is
        // preserved because each class is in id order and a key's ids
        // never interleave across classes out of order.
        let dest = &mut self.groups[spec.to];
        for v in straddlers
            .iter()
            .chain(active.held.iter())
            .chain(moved.iter())
        {
            self.group_of[v.0 as usize] = spec.to as u32;
            rb.rerouted += 1;
            dest.backlog.push_back(*v);
        }
        // A straddler first submitted at tick 0 carries the stamp refill
        // uses as its "never stamped" sentinel; nudge it to tick 1 (a
        // thousandth of a delay) so the re-submission keeps the original
        // clock instead of restarting it.
        for v in &straddlers {
            if self.submit_ticks[v.0 as usize] == 0 {
                self.submit_ticks[v.0 as usize] = 1;
            }
        }

        rb.completed.push(MigrationRecord {
            spec,
            triggered: active.triggered,
            completed: ctx.now(),
        });
        let queued = rb.queued.pop_front();
        self.refill(ctx, spec.from);
        self.refill(ctx, spec.to);
        if let Some((range, to)) = queued {
            self.trigger_migration(ctx, range, to);
        }
    }
}

impl Actor<Msg> for RouterActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                if let Some(rb) = &self.rebalance {
                    for (i, m) in rb.scripted.iter().enumerate() {
                        ctx.set_timer(
                            Duration::from_delays(m.at_delays),
                            SCRIPT_TAG_BASE + i as u64,
                        );
                    }
                    if let Some(policy) = &rb.policy {
                        ctx.set_timer(
                            Duration::from_delays(policy.check_every_delays()),
                            POLICY_TAG,
                        );
                    }
                }
                if self.window == 0 {
                    // Open loop: the harness preloaded the backlogs into
                    // the initial leaders; account for them as submitted
                    // at time zero.
                    for g in 0..self.groups.len() {
                        let state = &mut self.groups[g];
                        while let Some(v) = state.backlog.pop_front() {
                            state.submitted.push(v);
                            ctx.obs_mark(v.0, crate::spans::STAGE_SUBMIT, g as u64);
                        }
                    }
                } else {
                    for g in 0..self.groups.len() {
                        self.refill(ctx, g);
                    }
                    if self.arrival_interval_ticks > 0 {
                        ctx.set_timer(Duration(ARRIVAL_PUMP_TICKS), ARRIVAL_TAG);
                    }
                }
            }
            EventKind::Timer {
                tag: ARRIVAL_TAG, ..
            } => {
                // The arrival pump: release newly arrived commands into
                // idle groups; runs until the last command has arrived
                // (after that, commit-driven refills cover everything).
                for g in 0..self.groups.len() {
                    self.refill(ctx, g);
                }
                if self.arrival_tick(self.total as u64) > ctx.now().0 {
                    ctx.set_timer(Duration(ARRIVAL_PUMP_TICKS), ARRIVAL_TAG);
                }
            }
            EventKind::Timer {
                tag: POLICY_TAG, ..
            } => {
                let Some(rb) = &mut self.rebalance else {
                    return;
                };
                let migrating = rb.active.is_some();
                let decision = match &mut rb.policy {
                    Some(policy) => {
                        let next = Duration::from_delays(policy.check_every_delays());
                        ctx.set_timer(next, POLICY_TAG);
                        // One migration at a time: while one runs, the
                        // window still resets but nothing triggers — and
                        // no cooldown is consumed on the dropped check.
                        if migrating {
                            policy.skip_window();
                            None
                        } else {
                            policy.decide(&rb.table, ctx.now())
                        }
                    }
                    None => None,
                };
                if let Some((range, to)) = decision {
                    self.trigger_migration(ctx, range, to);
                }
            }
            EventKind::Timer { tag, .. } if tag >= SCRIPT_TAG_BASE => {
                let idx = (tag - SCRIPT_TAG_BASE) as usize;
                let scripted = self
                    .rebalance
                    .as_ref()
                    .and_then(|rb| rb.scripted.get(idx).copied());
                if let Some(m) = scripted {
                    self.trigger_migration(ctx, m.range, m.to);
                }
            }
            EventKind::Timer { .. } => {}
            EventKind::LeaderChange { leader } => {
                let Some(g) = self.topo.group_of_actor(leader) else {
                    return;
                };
                if self.groups[g].leader != leader {
                    self.groups[g].leader = leader;
                    self.resubmit_in_flight(ctx, g);
                }
            }
            EventKind::Msg { from, msg } => {
                let Some(g) = self.topo.group_of_actor(from) else {
                    return;
                };
                match msg {
                    Msg::Decided { value, .. } => {
                        if self.confirm(g, from, value) {
                            self.observe_value(ctx, g, value);
                        }
                        self.refill(ctx, g);
                    }
                    Msg::DecidedMany { values, .. } => {
                        for v in values {
                            if self.confirm(g, from, v) {
                                self.observe_value(ctx, g, v);
                            }
                        }
                        self.refill(ctx, g);
                    }
                    _ => {}
                }
            }
        }
    }
}

impl RouterActor {
    /// Routes one observed decided value: migration control entries drive
    /// the migration state machine, everything else is a client commit.
    fn observe_value(&mut self, ctx: &mut Context<'_, Msg>, g: usize, v: Value) {
        match rebalance::decode_ctrl(v) {
            Some(ctrl) => self.observe_ctrl(ctx, g, ctrl, v),
            None => self.observe_commit(ctx, g, v),
        }
    }
}
