//! The router: the sharded service's client-facing actor.
//!
//! One router fronts all `G` groups. It owns the partitioned command
//! backlogs, tracks each group's current leader (from the same Ω
//! announcements the replicas receive), keeps up to `window` commands in
//! flight per group ([`Msg::Submit`] batches to the leader), and observes
//! commits through the leaders' `Decided`/`DecidedMany` notifications
//! (it is registered as an observer on every replica). From those
//! observations it derives the service-level metrics: per-command decision
//! latency, per-group commit timelines, and completion.
//!
//! **Failover.** When Ω announces a new leader for a group, the router
//! re-submits every in-flight (submitted, not yet observed committed)
//! command of that group to the new leader. A command the crashed leader
//! actually committed may therefore appear twice in the group's log —
//! at-least-once delivery, the standard client-retry contract; the state
//! machine dedups. Latency and completion metrics count each command
//! once, at its first observed commit, timed from its *first* submission
//! (so failover stalls show up in the tail).
//!
//! **Session tagging.** Every command carries its client-session tag
//! `(client_id, seq)` in the value itself: the router is the service's
//! single client (`client_id` is implicitly 0) and the dense 1-based
//! command id assigned by the workload generator is the session sequence
//! number. Replicas with [`crate::smr::SmrNode::with_session_dedup`]
//! enabled use that tag to suppress re-proposals of already-decided
//! commands, upgrading the failover path to exactly-once application; the
//! harness surfaces the count as `duplicates_suppressed`.

use std::collections::VecDeque;

use simnet::{Actor, Context, EventKind, Time};

use crate::types::{Msg, Pid, Value};

use super::workload::PartitionedWorkload;
use super::GroupTopology;

/// Per-group routing and progress state.
#[derive(Debug)]
struct GroupState {
    /// The replica the router currently believes leads this group.
    leader: Pid,
    /// Commands assigned to this group, not yet submitted.
    backlog: VecDeque<Value>,
    /// Commands submitted at least once, in first-submission order
    /// (append-only; commits are tracked by id, not by removal).
    submitted: Vec<Value>,
    /// Unique commands observed committed.
    committed: usize,
    /// Decision latency of each command, in ticks, first-commit order.
    latencies_ticks: Vec<u64>,
    /// When each unique commit was observed (the group's commit timeline).
    commit_times: Vec<Time>,
}

impl GroupState {
    fn in_flight(&self) -> usize {
        self.submitted.len() - self.committed
    }
}

/// The router actor. Build with [`RouterActor::new`], register it *after*
/// all group replicas and memories so its id matches
/// [`GroupTopology::router`].
#[derive(Debug)]
pub struct RouterActor {
    topo: GroupTopology,
    /// Per-group in-flight window; `0` means open-loop (the harness
    /// preloaded every backlog into the initial leaders, and the router
    /// only observes).
    window: usize,
    groups: Vec<GroupState>,
    /// Group of command id `i` (from the partitioned workload).
    group_of: Vec<u32>,
    /// First-submission time of command id `i`, in ticks.
    submit_ticks: Vec<u64>,
    /// Whether command id `i` has been observed committed.
    committed: Vec<bool>,
    committed_total: usize,
    total: usize,
}

impl RouterActor {
    /// Creates the router for `topo`, owning `workload`'s backlogs.
    pub fn new(topo: GroupTopology, workload: PartitionedWorkload, window: usize) -> RouterActor {
        let total = workload.total();
        let groups = workload
            .backlogs
            .iter()
            .enumerate()
            .map(|(g, backlog)| GroupState {
                leader: topo.initial_leader(g),
                backlog: backlog.iter().copied().collect(),
                submitted: Vec::new(),
                committed: 0,
                latencies_ticks: Vec::new(),
                commit_times: Vec::new(),
            })
            .collect();
        RouterActor {
            topo,
            window,
            groups,
            group_of: workload.group_of,
            submit_ticks: vec![0; total + 1],
            committed: vec![false; total + 1],
            committed_total: 0,
            total,
        }
    }

    /// Whether every command has been observed committed.
    pub fn done(&self) -> bool {
        self.committed_total >= self.total
    }

    /// Unique commands observed committed so far.
    pub fn committed_total(&self) -> usize {
        self.committed_total
    }

    /// Unique commands group `g` has committed.
    pub fn group_committed(&self, g: usize) -> usize {
        self.groups[g].committed
    }

    /// Decision latencies of group `g`'s commands, in ticks, in
    /// first-commit order.
    pub fn group_latencies_ticks(&self, g: usize) -> &[u64] {
        &self.groups[g].latencies_ticks
    }

    /// Group `g`'s commit-observation timeline.
    pub fn group_commit_times(&self, g: usize) -> &[Time] {
        &self.groups[g].commit_times
    }

    /// Sends up to `window - in_flight` backlog commands of group `g` to
    /// its current leader, as one `Submit` batch.
    fn refill(&mut self, ctx: &mut Context<'_, Msg>, g: usize) {
        if self.window == 0 {
            return; // open loop: everything was preloaded at build time
        }
        let state = &mut self.groups[g];
        let room = self.window.saturating_sub(state.in_flight());
        if room == 0 || state.backlog.is_empty() {
            return;
        }
        let now = ctx.now().0;
        let mut cmds = Vec::with_capacity(room.min(state.backlog.len()));
        for _ in 0..room {
            let Some(v) = state.backlog.pop_front() else {
                break;
            };
            self.submit_ticks[v.0 as usize] = now;
            state.submitted.push(v);
            cmds.push(v);
        }
        let leader = state.leader;
        ctx.send(leader, Msg::Submit { cmds });
    }

    /// Marks `v` committed by group `g` (first observation only).
    fn observe_commit(&mut self, now: Time, g: usize, v: Value) {
        let id = v.0 as usize;
        // No-op fillers and unknown ids carry no client command.
        if id == 0 || id >= self.committed.len() || self.committed[id] {
            return;
        }
        debug_assert_eq!(
            self.group_of[id] as usize, g,
            "command leaked across groups"
        );
        self.committed[id] = true;
        self.committed_total += 1;
        let state = &mut self.groups[g];
        state.committed += 1;
        state
            .latencies_ticks
            .push(now.0.saturating_sub(self.submit_ticks[id]));
        state.commit_times.push(now);
    }

    /// Re-submits every in-flight command of group `g` to its (new)
    /// leader: the at-least-once failover path.
    fn resubmit_in_flight(&mut self, ctx: &mut Context<'_, Msg>, g: usize) {
        let state = &self.groups[g];
        let cmds: Vec<Value> = state
            .submitted
            .iter()
            .copied()
            .filter(|v| !self.committed[v.0 as usize])
            .collect();
        if !cmds.is_empty() {
            let leader = state.leader;
            ctx.send(leader, Msg::Submit { cmds });
        }
    }
}

impl Actor<Msg> for RouterActor {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                if self.window == 0 {
                    // Open loop: the harness preloaded the backlogs into
                    // the initial leaders; account for them as submitted
                    // at time zero.
                    for state in &mut self.groups {
                        while let Some(v) = state.backlog.pop_front() {
                            state.submitted.push(v);
                        }
                    }
                } else {
                    for g in 0..self.groups.len() {
                        self.refill(ctx, g);
                    }
                }
            }
            EventKind::LeaderChange { leader } => {
                let Some(g) = self.topo.group_of_actor(leader) else {
                    return;
                };
                if self.groups[g].leader != leader {
                    self.groups[g].leader = leader;
                    self.resubmit_in_flight(ctx, g);
                }
            }
            EventKind::Msg { from, msg } => {
                let Some(g) = self.topo.group_of_actor(from) else {
                    return;
                };
                match msg {
                    Msg::Decided { value, .. } => {
                        self.observe_commit(ctx.now(), g, value);
                        self.refill(ctx, g);
                    }
                    Msg::DecidedMany { values, .. } => {
                        let now = ctx.now();
                        for v in values {
                            self.observe_commit(now, g, v);
                        }
                        self.refill(ctx, g);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}
