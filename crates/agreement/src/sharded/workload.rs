//! Deterministic key-space workload generation for the sharded service.
//!
//! A workload is a stream of keyed commands. Keys are drawn from one of
//! three distributions — uniform, Zipf-skewed, or hot-shard — and each key
//! is mapped to a group by a fixed hash, so the same `(spec, seed, total)`
//! triple always produces the same per-group command backlogs. Commands
//! themselves are dense ids packed into [`Value`] (ids start at 1; id 0 and
//! the `u64::MAX` no-op filler are reserved), which keeps the router's
//! bookkeeping flat arrays.
//!
//! The generator is self-contained (SplitMix64 for bits, inverse-CDF for
//! Zipf) so the `agreement` crate takes no new dependency and the stream is
//! identical on every platform the simulation runs on.

use crate::types::Value;

/// How the workload's keys are distributed over the key space.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Every key equally likely: the balanced-shards baseline.
    Uniform {
        /// Number of distinct keys.
        keys: u64,
    },
    /// Zipf-skewed keys (popularity rank `i` drawn with weight
    /// `1/(i+1)^s`): a few hot keys dominate, as in real KV traces.
    Zipf {
        /// Number of distinct keys.
        keys: u64,
        /// Skew exponent (`0.0` degenerates to uniform; `~0.99` is the
        /// classic YCSB skew).
        s: f64,
    },
    /// A fixed fraction of commands hit one designated key (and therefore
    /// one group); the rest are uniform. The adversarial load-imbalance
    /// case for a partitioned service.
    HotShard {
        /// Number of distinct keys.
        keys: u64,
        /// The pinned hot key.
        hot_key: u64,
        /// Per-mille of commands sent to `hot_key` (0..=1000).
        hot_permille: u32,
    },
    /// A fixed fraction of commands spread evenly over a designated *set*
    /// of hot keys; the rest are uniform. With the hot keys chosen to
    /// collide onto one group, this is the load pattern no *static*
    /// placement (hash or range) survives but per-key migration splits:
    /// each hot key can be isolated onto its own group.
    HotSet {
        /// Number of distinct keys.
        keys: u64,
        /// The pinned hot keys (hit uniformly; must be non-empty).
        hot_keys: Vec<u64>,
        /// Per-mille of commands sent to the hot set (0..=1000).
        hot_permille: u32,
    },
}

impl WorkloadSpec {
    /// A small uniform spec suitable for tests.
    pub fn uniform() -> WorkloadSpec {
        WorkloadSpec::Uniform { keys: 4096 }
    }

    /// Fails fast on specs that cannot draw keys (entry-point check, so
    /// the panic names the mistake instead of surfacing as an
    /// index-out-of-bounds mid-stream).
    fn validate(&self) {
        if let WorkloadSpec::HotSet { hot_keys, .. } = self {
            assert!(!hot_keys.is_empty(), "HotSet needs at least one hot key");
        }
    }

    /// The number of distinct keys the spec draws from (its key space;
    /// every drawn key is below this).
    pub fn key_space(&self) -> u64 {
        match *self {
            WorkloadSpec::Uniform { keys }
            | WorkloadSpec::Zipf { keys, .. }
            | WorkloadSpec::HotShard { keys, .. }
            | WorkloadSpec::HotSet { keys, .. } => keys.max(1),
        }
    }
}

/// SplitMix64: the workload generator's deterministic bit source.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` with 53 bits of precision.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The fixed key → group map: a hash partition of the key space.
///
/// Hashing (rather than range-splitting) keeps adjacent keys on different
/// groups, so even strongly clustered key streams spread out unless they
/// repeat a *single* key — which is exactly what
/// [`WorkloadSpec::HotShard`] models.
pub fn group_of_key(key: u64, groups: usize) -> usize {
    debug_assert!(groups > 0);
    let mut s = key ^ 0xD6E8_FEB8_6659_FD93;
    (splitmix64(&mut s) % groups as u64) as usize
}

/// The Zipf inverse-CDF table for `spec`, if it needs one. `cdf[i]` is
/// the cumulative probability of ranks `0..=i`.
fn zipf_cdf(spec: &WorkloadSpec) -> Vec<f64> {
    match spec {
        WorkloadSpec::Zipf { keys, s } => {
            let k = (*keys).max(1) as usize;
            let mut weights: Vec<f64> = (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(*s)).collect();
            let sum: f64 = weights.iter().sum();
            let mut acc = 0.0;
            for w in &mut weights {
                acc += *w / sum;
                *w = acc;
            }
            weights
        }
        _ => Vec::new(),
    }
}

/// Draws the next key of `spec`'s stream, advancing `state`. The single
/// source of keys for both [`partition`] and [`sample_keys`], so the two
/// always agree draw-for-draw.
fn next_key(spec: &WorkloadSpec, cdf: &[f64], state: &mut u64) -> u64 {
    match spec {
        WorkloadSpec::Uniform { keys } => splitmix64(state) % (*keys).max(1),
        WorkloadSpec::Zipf { keys, .. } => {
            let u = unit(state);
            let rank = cdf.partition_point(|&c| c < u);
            (rank as u64).min(keys.saturating_sub(1))
        }
        WorkloadSpec::HotShard {
            keys,
            hot_key,
            hot_permille,
        } => {
            if splitmix64(state) % 1000 < *hot_permille as u64 {
                *hot_key
            } else {
                splitmix64(state) % (*keys).max(1)
            }
        }
        WorkloadSpec::HotSet {
            keys,
            hot_keys,
            hot_permille,
        } => {
            if splitmix64(state) % 1000 < *hot_permille as u64 {
                hot_keys[(splitmix64(state) % hot_keys.len().max(1) as u64) as usize]
            } else {
                splitmix64(state) % (*keys).max(1)
            }
        }
    }
}

/// The raw key stream `partition` routes: `total` keys drawn from `spec`,
/// seeded by `seed`. Exposed so the generators' statistical contracts
/// (seed determinism, Zipf head mass, hot-shard hit ratio) are testable
/// directly; `partition(spec, seed, total, g)` assigns command id `i+1`
/// the group `group_of_key(sample_keys(spec, seed, total)[i], g)`.
pub fn sample_keys(spec: &WorkloadSpec, seed: u64, total: usize) -> Vec<u64> {
    spec.validate();
    let mut state = seed ^ 0x5EED_CAFE_F00D_D00D;
    let cdf = zipf_cdf(spec);
    (0..total)
        .map(|_| next_key(spec, &cdf, &mut state))
        .collect()
}

/// A workload partitioned over `groups` command backlogs.
#[derive(Clone, Debug)]
pub struct PartitionedWorkload {
    /// Per-group command backlogs, each in global submission order.
    pub backlogs: Vec<Vec<Value>>,
    /// Group of command id `i` (index 0 unused: ids are 1-based).
    pub group_of: Vec<u32>,
    /// Key of command id `i` (index 0 unused). The router needs this for
    /// dynamic routing: migrations re-route commands by *key* at run
    /// time, after the backlogs were cut.
    pub keys: Vec<u64>,
}

impl PartitionedWorkload {
    /// Total commands across all groups.
    pub fn total(&self) -> usize {
        self.group_of.len().saturating_sub(1)
    }
}

/// Draws `total` keys from `spec` (seeded by `seed`), assigns each command
/// a dense 1-based id, and routes it to its group by the static key hash.
pub fn partition(
    spec: &WorkloadSpec,
    seed: u64,
    total: usize,
    groups: usize,
) -> PartitionedWorkload {
    partition_by(spec, seed, total, groups, |key| group_of_key(key, groups))
}

/// [`partition`], but routed by `table` (the rebalancing deployments'
/// version-0 range table) instead of the static key hash.
pub fn partition_with_table(
    spec: &WorkloadSpec,
    seed: u64,
    total: usize,
    table: &super::rebalance::RoutingTable,
    groups: usize,
) -> PartitionedWorkload {
    partition_by(spec, seed, total, groups, |key| table.group_of(key))
}

/// The shared partitioner: one key stream, one pluggable key → group map.
fn partition_by(
    spec: &WorkloadSpec,
    seed: u64,
    total: usize,
    groups: usize,
    route: impl Fn(u64) -> usize,
) -> PartitionedWorkload {
    assert!(groups > 0, "need at least one group");
    spec.validate();
    let mut state = seed ^ 0x5EED_CAFE_F00D_D00D;
    let cdf = zipf_cdf(spec);
    let mut backlogs: Vec<Vec<Value>> = vec![Vec::new(); groups];
    let mut group_of: Vec<u32> = Vec::with_capacity(total + 1);
    let mut keys: Vec<u64> = Vec::with_capacity(total + 1);
    group_of.push(u32::MAX); // id 0 is reserved
    keys.push(u64::MAX);
    for id in 1..=total as u64 {
        let key = next_key(spec, &cdf, &mut state);
        let g = route(key);
        assert!(g < groups, "router mapped key {key} to missing group {g}");
        backlogs[g].push(Value(id));
        group_of.push(g as u32);
        keys.push(key);
    }
    PartitionedWorkload {
        backlogs,
        group_of,
        keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_deterministic() {
        let spec = WorkloadSpec::Zipf {
            keys: 1024,
            s: 0.99,
        };
        let a = partition(&spec, 7, 500, 8);
        let b = partition(&spec, 7, 500, 8);
        assert_eq!(a.backlogs, b.backlogs);
        assert_eq!(a.group_of, b.group_of);
        let c = partition(&spec, 8, 500, 8);
        assert_ne!(a.backlogs, c.backlogs, "seed must matter");
    }

    #[test]
    fn every_command_lands_in_exactly_one_group() {
        let pw = partition(&WorkloadSpec::uniform(), 3, 1000, 5);
        assert_eq!(pw.total(), 1000);
        let spread: usize = pw.backlogs.iter().map(Vec::len).sum();
        assert_eq!(spread, 1000);
        for (g, backlog) in pw.backlogs.iter().enumerate() {
            for v in backlog {
                assert_eq!(pw.group_of[v.0 as usize] as usize, g);
            }
        }
    }

    #[test]
    fn uniform_spread_is_roughly_even() {
        let pw = partition(&WorkloadSpec::uniform(), 1, 10_000, 4);
        for backlog in &pw.backlogs {
            assert!(
                (2_000..3_000).contains(&backlog.len()),
                "skewed uniform spread: {}",
                backlog.len()
            );
        }
    }

    #[test]
    fn hot_shard_concentrates_on_one_group() {
        let spec = WorkloadSpec::HotShard {
            keys: 4096,
            hot_key: 42,
            hot_permille: 800,
        };
        let pw = partition(&spec, 9, 10_000, 8);
        let hot = group_of_key(42, 8);
        assert!(
            pw.backlogs[hot].len() > 8_000,
            "hot group got only {} of 10k",
            pw.backlogs[hot].len()
        );
    }

    #[test]
    fn hot_set_spreads_over_its_keys_and_pins_their_groups() {
        let hot_keys = vec![11, 42, 97];
        let spec = WorkloadSpec::HotSet {
            keys: 4096,
            hot_keys: hot_keys.clone(),
            hot_permille: 900,
        };
        let keys = sample_keys(&spec, 3, 30_000);
        let hits = |k: u64| keys.iter().filter(|&&x| x == k).count();
        for &k in &hot_keys {
            let h = hits(k);
            assert!(
                (7_000..13_000).contains(&h),
                "hot key {k} drew {h} of 30k (want ~9k)"
            );
        }
        let hot_total: usize = hot_keys.iter().map(|&k| hits(k)).sum();
        assert!(hot_total > 26_000, "hot set mass only {hot_total}");
    }

    #[test]
    fn zipf_is_more_skewed_than_uniform() {
        let max_of = |spec: &WorkloadSpec| {
            partition(spec, 5, 10_000, 8)
                .backlogs
                .iter()
                .map(Vec::len)
                .max()
                .unwrap()
        };
        let uni = max_of(&WorkloadSpec::Uniform { keys: 4096 });
        let zipf = max_of(&WorkloadSpec::Zipf { keys: 4096, s: 1.2 });
        assert!(
            zipf > uni,
            "zipf max group {zipf} should exceed uniform max group {uni}"
        );
    }

    #[test]
    fn key_hash_covers_all_groups() {
        let mut seen = [false; 16];
        for key in 0..1000 {
            seen[group_of_key(key, 16)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
