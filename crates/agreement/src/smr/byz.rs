//! Byzantine-mode state machine replication over non-equivocating
//! broadcast.
//!
//! [`ByzSmrNode`] is the Byzantine counterpart of [`SmrNode`]: the same
//! [`LogCore`] log/workload state machine (batching, session dedup,
//! observers, migration snapshots — the sharded service cannot tell the
//! two apart), but the *decision* path runs through the paper's headline
//! Byzantine machinery instead of crash PMP:
//!
//! * The leader of the current epoch **broadcasts** each batch of log
//!   entries through [`crate::nebcast`] (Algorithm 2): one signed
//!   [`RbPayload::LogEntries`] wire per batch, written to the leader's
//!   SWMR row on every memory. Non-equivocation confines a Byzantine
//!   leader to crash behaviour per sequence number — it cannot make two
//!   correct replicas deliver different values for the same broadcast.
//! * Replicas **settle only what they deliver**, and only from the
//!   replica Ω currently designates leader; deliveries from deposed or
//!   not-yet-announced leaders are parked (and replayed if Ω later
//!   confirms the sender). There is no replica-to-replica `Decided`
//!   traffic to trust: the broadcast *is* the log. Settled deliveries
//!   are acknowledged with [`crate::nebcast::receipt_reg`] receipts
//!   ([`crate::nebcast::NebEngine::acknowledge`]) so an *accepted* value
//!   is durably distinguishable from a merely-written (or merely parked)
//!   one.
//! * A replica promoted by Ω runs a **takeover scan**: one replicated
//!   range read of the whole broadcast space (completing at a memory
//!   majority, so it intersects every receipt and audit-copy majority),
//!   then adopts, per instance, the validly-signed candidate preferring
//!   *receipted* wires (those some correct process delivered), breaking
//!   remaining ties by (highest epoch, then lowest sequence number and
//!   value — a live deposed leader's own settle must win). Adopted values
//!   are re-broadcast under the new leader's epoch before fresh commands
//!   continue, so a command the old leader committed anywhere survives.
//!
//! The leader learns commitment the same way followers do — by
//! delivering its own broadcast — so a batch costs one broadcast write
//! (2 delays) plus one delivery (read + copy + audit ≈ 6 delays):
//! Byzantine mode trades the crash protocol's 2-delay commits for
//! footnote-2's broadcast latency, which is exactly the paper's price for
//! tolerating `f` Byzantine replicas with only `n ≥ 2f + 1`.
//!
//! # Pipelined broadcasts and the speculative fast path
//!
//! Nothing in Algorithm 2 forces the leader to stall on that ≈6-delay
//! self-delivery before broadcasting again — sequence numbers already
//! totally order its wires. [`ByzSmrNode::with_pipeline_window`] lets the
//! leader keep up to `W` broadcasts in flight, one pipeline slot per
//! sequence number (broadcast-written → self-delivered → retired), with
//! slots *retired strictly in order* so the dense log prefix, workload
//! cursor and session dedup behave exactly as the one-slot protocol; the
//! broadcast engine probes the leader's row the same `W` slots ahead on
//! every replica, so follower deliveries (and their receipts) pipeline
//! too. `W = 1` is bit-identical to the classic stall-and-wait loop.
//!
//! [`ByzSmrNode::with_fast_path`] additionally lets the leader settle
//! its own batch at the broadcast *write ack* (2 delays) instead of its
//! self-delivery (≈6): sound because the leader's self-delivery only
//! audits the leader against itself — its copy target is the broadcast
//! register, and a correct leader never equivocates against itself —
//! while *commitment* evidence never came from the leader's say-so in
//! the first place: the router's `f + 1` distinct-report quorum still
//! requires a correct follower's genuine audited delivery, follower
//! receipts still carry all takeover durability, and every follower
//! still runs the full read + copy + audit path. A Byzantine leader
//! gains nothing: speculating on its own batch only changes what *it*
//! claims, and its claims were never sufficient. On demotion or takeover
//! the speculative slots are discarded exactly like conservative
//! unretired slots (the scan re-adopts from receipts), so every
//! adversary drill runs unchanged.
//!
//! # Modeled threat
//!
//! The adversaries this node is hardened (and tested) against are the
//! ones the sharded scenarios inject ([`crate::adversary`]): **silent**
//! replicas (pure omission — the residual power non-equivocation leaves),
//! **equivocating leaders** (split or rewritten broadcast slots,
//! fabricated commit notifications — suppressed by the audit and by the
//! router's `f + 1` confirmation quorum), and **receipt-forging
//! followers** ([`crate::adversary::ReceiptForger`] — a delivery receipt
//! for a wire the claimed broadcaster never sent, signed by a colluding
//! leader). The takeover scan closes the latter with a *provenance
//! check*: a receipt is credited only when the claimed broadcaster's own
//! self-slot — the one register in its exclusive-writer row nobody else
//! can touch — holds exactly the receipted slot; receipts a sender wrote
//! for its own broadcasts are ignored outright, and provenance failures
//! are demoted to unreceipted candidates and counted
//! ([`ByzSmrNode::receipts_rejected`]).

use std::collections::{BTreeMap, VecDeque};

use rdma_sim::{LegalChange, MemoryActor, MemoryClient};
use sigsim::{SigVerifier, Signer};
use simnet::{Actor, ActorId, Context, Duration, EventKind};
use swmr::{RepEngine, RepId, RepResult};

use crate::nebcast::{self, NebEngine, RECEIPT_BIT};
use crate::trusted::RbPayload;
use crate::types::{Instance, Msg, Pid, RegVal, Value};

use super::core::LogCore;
#[allow(unused_imports)] // rustdoc link target
use super::SmrNode;

const POLL_TAG: u64 = 60;

/// The broadcast wire shape of one replicated-log batch: `values[j]`
/// proposed for instance `first + j` under `epoch`. One constructor for
/// the protocol, the adversaries, and the tests, so the signed shape can
/// never drift apart between them.
pub(crate) fn log_entries_wire(
    first: u64,
    epoch: u64,
    values: Vec<Value>,
) -> crate::trusted::TWire {
    crate::trusted::TWire {
        dest: crate::paxos::Dest::All,
        payload: RbPayload::LogEntries {
            first,
            epoch,
            values,
        },
        history: Vec::new(),
    }
}

/// Builds one memory for a Byzantine-mode replication group: the
/// non-equivocating broadcast regions (per-replica SWMR rows plus the
/// read-only whole-array region) with static permissions — Byzantine mode
/// never revokes, it out-audits.
pub fn byz_memory_actor(procs: &[Pid]) -> MemoryActor<RegVal, Msg> {
    let mut mem = MemoryActor::new(LegalChange::Static);
    nebcast::configure_memory(&mut mem, procs);
    mem
}

/// One candidate value for an instance, collected by the takeover scan.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    /// Whether some process other than the broadcaster wrote a delivery
    /// receipt for the wire carrying this value.
    receipted: bool,
    epoch: u64,
    k: u64,
    value: Value,
}

impl Candidate {
    /// Adoption preference, minimized: receipted wires (delivered by some
    /// correct process) beat unreceipted ones; then the **highest** epoch
    /// (Paxos-style — a later correct leader may have settled its own
    /// proposal via self-delivery, whose self-receipt the scan rightly
    /// ignores, so its value must outrank a dead predecessor's leftover);
    /// within an epoch the earliest sequence number (matching followers'
    /// FIFO settle order), then the lowest value.
    fn key(&self) -> (u8, u64, u64, u64) {
        (
            u8::from(!self.receipted),
            u64::MAX - self.epoch,
            self.k,
            self.value.0,
        )
    }
}

/// One in-flight pipelined broadcast: a batch the leader has broadcast
/// and not yet retired (see the module docs' pipeline section).
struct PipeSlot {
    /// The broadcast sequence number carrying this batch.
    k: u64,
    /// First instance of the batch.
    first: u64,
    /// The batch's values (kept for the fast path's write-ack settle).
    values: Vec<Value>,
    /// `(consumed, suppressed)` workload accounting taken from
    /// [`LogCore::take_own_round`] for a fresh-command round; `None` for
    /// recovery re-broadcasts.
    own: Option<(usize, u64)>,
    /// Whether the batch has settled at this leader (self-delivery, or
    /// the fast path's write ack). Slots retire from the front of the
    /// pipeline only once delivered, in broadcast order.
    delivered: bool,
}

/// A replica serving a totally-ordered command log under Byzantine
/// failures (see the module docs for the protocol).
pub struct ByzSmrNode {
    me: Pid,
    procs: Vec<Pid>,
    /// Actors outside the replica ring (the sharded router) notified of
    /// this replica's settles. Byzantine mode notifies from *every*
    /// replica — the router confirms a commit only at `f + 1` matching
    /// reports, so a lying leader cannot fake one.
    observers: Vec<ActorId>,
    batch: usize,
    poll_every: Duration,
    client: MemoryClient<RegVal, Msg>,
    neb: NebEngine,
    verifier: SigVerifier,
    /// Dedicated replication engine for takeover scans (the broadcast
    /// engine's operations stay untouched by a scan in flight).
    scan_rep: RepEngine<RegVal, Msg>,
    core: LogCore,
    current_leader: Pid,
    is_leader: bool,
    /// This leadership term's epoch (takeover count, carried in wires).
    epoch: u64,
    /// The broadcasts in flight, in broadcast order: up to `window`
    /// unretired slots (the pipeline ring).
    pipeline: VecDeque<PipeSlot>,
    /// How many broadcasts the leader keeps in flight (1 = the classic
    /// stall-on-self-delivery protocol, bit-identical to pre-pipeline).
    window: usize,
    /// Whether the leader settles own batches at the broadcast write ack
    /// (see the module docs' fast-path section).
    fast_path: bool,
    /// Batches settled via the fast path's write ack over the run.
    fast_commits: u64,
    /// Next instance fresh commands are proposed at.
    next_instance: u64,
    /// A promoted leader's pending scan, if one is in flight.
    scanning: Option<RepId>,
    /// Scan needed (set on promotion, retried if a scan fails).
    need_scan: bool,
    /// Adopted values awaiting re-broadcast, dense by instance.
    recover: BTreeMap<u64, Value>,
    /// Deliveries from senders Ω has not (or no longer) designated
    /// leader, in delivery order (kept whole so a later replay can still
    /// acknowledge them). Replayed if the sender is announced leader.
    parked: Vec<nebcast::Delivery>,
    /// Receipts whose provenance check failed during takeover scans (a
    /// receipt crediting a broadcast the claimed broadcaster's self-slot
    /// never made — forged, or racing an equivocation rewrite).
    receipts_rejected: u64,
}

impl std::fmt::Debug for ByzSmrNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByzSmrNode")
            .field("me", &self.me)
            .field("leader", &self.current_leader)
            .field("epoch", &self.epoch)
            .field("log_len", &self.core.log_len())
            .finish()
    }
}

impl ByzSmrNode {
    /// Creates a replica. `workload` is the sequence of commands this
    /// node proposes when it leads; `initial_leader` broadcasts epoch 0.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        mems: Vec<ActorId>,
        initial_leader: Pid,
        workload: Vec<Value>,
        signer: Signer,
        verifier: SigVerifier,
        poll_every: Duration,
    ) -> ByzSmrNode {
        let neb = NebEngine::new(me, procs.clone(), mems.clone(), signer, verifier.clone());
        ByzSmrNode {
            me,
            procs,
            observers: Vec::new(),
            batch: 1,
            poll_every,
            client: MemoryClient::new(),
            neb,
            verifier,
            scan_rep: RepEngine::new(mems),
            core: LogCore::new(workload),
            current_leader: initial_leader,
            is_leader: me == initial_leader,
            epoch: 0,
            pipeline: VecDeque::new(),
            window: 1,
            fast_path: false,
            fast_commits: 0,
            next_instance: 0,
            scanning: None,
            need_scan: false,
            recover: BTreeMap::new(),
            parked: Vec::new(),
            receipts_rejected: 0,
        }
    }

    /// Sets how many log entries the leader packs per broadcast (≥ 1) —
    /// the same amortization lever as [`SmrNode::with_batch`], applied to
    /// the broadcast write and the delivery pipeline alike.
    pub fn with_batch(mut self, batch: usize) -> ByzSmrNode {
        self.batch = batch.max(1);
        self
    }

    /// Enables client-session dedup (see [`SmrNode::with_session_dedup`];
    /// identical semantics, shared implementation in [`LogCore`]).
    pub fn with_session_dedup(mut self) -> ByzSmrNode {
        self.core.dedup = true;
        self
    }

    /// Sets the leader's pipeline window: up to `window` broadcasts kept
    /// in flight before stalling on self-delivery (clamped to ≥ 1; 1 is
    /// the classic one-slot protocol, bit-identical to pre-pipeline
    /// behaviour). The broadcast engine probes the current leader's row
    /// the same `window` slots ahead on every replica.
    pub fn with_pipeline_window(mut self, window: usize) -> ByzSmrNode {
        self.window = window.max(1);
        self.neb.set_pipeline_depth(self.window);
        self.neb.set_focus(Some(self.current_leader));
        self
    }

    /// Enables the speculative fast path: the leader settles own batches
    /// at the broadcast write ack (2 delays) instead of its ≈6-delay
    /// self-delivery (see the module docs for why this is sound; every
    /// follower still runs the full audited delivery path).
    pub fn with_fast_path(mut self, on: bool) -> ByzSmrNode {
        self.fast_path = on;
        self.neb.set_observe_writes(on);
        self.neb.set_self_delivery(!on);
        self
    }

    /// Registers an observer notified of this replica's settles.
    pub fn with_observer(mut self, observer: ActorId) -> ByzSmrNode {
        self.observers.push(observer);
        self
    }

    /// The contiguous decided prefix of the log.
    pub fn log(&self) -> Vec<Value> {
        self.core.log()
    }

    /// Length of the contiguous decided prefix (O(1)).
    pub fn log_len(&self) -> usize {
        self.core.log_len()
    }

    /// The decided value of `instance`, if any (including beyond a hole).
    pub fn decided(&self, instance: u64) -> Option<Value> {
        self.core.decided(instance)
    }

    /// Duplicate proposals suppressed so far (see [`LogCore`]).
    pub fn duplicates_suppressed(&self) -> u64 {
        self.core.duplicates_suppressed
    }

    /// Peers this replica's broadcast layer has caught equivocating (and
    /// blocked forever) — the Byzantine-suppression counter surfaced per
    /// group by the sharded report.
    pub fn equivocations_blocked(&self) -> u64 {
        self.procs
            .iter()
            .filter(|&&q| self.neb.blocked_at(q).is_some())
            .count() as u64
    }

    /// Receipts rejected by the takeover scan's provenance check so far
    /// (see the module docs; 0 without a receipt-forging adversary or an
    /// equivocation rewrite racing a scan).
    pub fn receipts_rejected(&self) -> u64 {
        self.receipts_rejected
    }

    /// Batches this node settled via the fast path's write ack (0 unless
    /// [`ByzSmrNode::with_fast_path`] is on and this node led).
    pub fn fast_commits(&self) -> u64 {
        self.fast_commits
    }

    /// `(instance, time)` of each settle at this replica, in settle order.
    pub fn decided_at(&self) -> &[(u64, simnet::Time)] {
        &self.core.decided_at
    }

    /// Settles a delivered (or replayed) batch from the current leader
    /// and notifies observers of anything newly decided.
    fn apply_entries(&mut self, ctx: &mut Context<'_, Msg>, first: u64, values: &[Value]) {
        if self.core.settle_many(ctx.now(), first, values) {
            for (j, v) in values.iter().enumerate() {
                ctx.obs_mark(v.0, crate::spans::STAGE_DECIDE, first + j as u64);
            }
            ctx.mark_decided();
            for i in 0..self.observers.len() {
                let obs = self.observers[i];
                if values.len() == 1 {
                    ctx.send(
                        obs,
                        Msg::Decided {
                            instance: Instance(first),
                            value: values[0],
                        },
                    );
                } else {
                    ctx.send(
                        obs,
                        Msg::DecidedMany {
                            first: Instance(first),
                            values: values.to_vec(),
                        },
                    );
                }
            }
        }
    }

    /// Handles one broadcast delivery: entries from the Ω-current leader
    /// settle (and are acknowledged with a receipt — the durable mark a
    /// correct process *accepted* the wire); everything else is parked
    /// unacknowledged (a deposed leader's stragglers, or a new leader's
    /// wires arriving before its announcement).
    fn on_delivery(&mut self, ctx: &mut Context<'_, Msg>, d: nebcast::Delivery) {
        let RbPayload::LogEntries {
            first, ref values, ..
        } = d.wire.payload
        else {
            return; // single-decree traffic from another protocol: not ours
        };
        if d.from != self.current_leader {
            self.parked.push(d);
            return;
        }
        let values = values.clone();
        if d.from == self.me {
            // The pipeline's overlap, per stage: the leader's own wire
            // came back around (read-only mark; see `crate::spans`).
            for (j, v) in values.iter().enumerate() {
                ctx.obs_mark(v.0, crate::spans::STAGE_DELIVER, first + j as u64);
            }
        }
        self.neb.acknowledge(ctx, &mut self.client, &d);
        self.apply_entries(ctx, first, &values);
        // Self-delivery completes the slot's proposal: the batch is
        // committed (any correct replica's audit now intersects ours).
        // Retirement stays in broadcast order behind earlier slots.
        if d.from == self.me {
            if let Some(slot) = self
                .pipeline
                .iter_mut()
                .find(|s| s.k == d.k && !s.delivered)
            {
                slot.delivered = true;
                self.retire_ready();
                self.drive(ctx);
            }
        }
    }

    /// Retires delivered slots from the pipeline's front, banking their
    /// dedup accounting. Slots retire strictly in broadcast order, so a
    /// later batch's settle never outruns an earlier batch's bookkeeping.
    fn retire_ready(&mut self) {
        while self.pipeline.front().is_some_and(|s| s.delivered) {
            let slot = self.pipeline.pop_front().expect("front checked");
            if let Some((_, suppressed)) = slot.own {
                self.core.bank_suppressed(suppressed);
            }
        }
    }

    /// Discards every in-flight pipeline slot (demotion or takeover):
    /// delivered slots bank their accounting — their values are settled
    /// in the log — while undelivered slots roll the workload cursor
    /// back so the commands are re-proposed (or dedup-suppressed) later,
    /// exactly as the one-slot protocol abandoned its in-flight round.
    fn clear_pipeline(&mut self) {
        for slot in std::mem::take(&mut self.pipeline) {
            if let Some((consumed, suppressed)) = slot.own {
                if slot.delivered {
                    self.core.bank_suppressed(suppressed);
                } else {
                    self.core.unconsume(consumed);
                }
            }
        }
    }

    /// Handles a broadcast write ack under the fast path: the leader's
    /// batch settles at the 2-delay write-commit point instead of its
    /// ≈6-delay self-delivery (see the module docs for the soundness
    /// argument — commitment evidence still comes from follower quorums).
    fn on_written(&mut self, ctx: &mut Context<'_, Msg>, k: u64) {
        if !self.fast_path || !self.is_leader {
            return; // stale ack from before a demotion: slot already cleared
        }
        let Some(slot) = self.pipeline.iter_mut().find(|s| s.k == k && !s.delivered) else {
            return;
        };
        slot.delivered = true;
        let (first, values) = (slot.first, slot.values.clone());
        self.fast_commits += 1;
        for (j, v) in values.iter().enumerate() {
            ctx.obs_mark(v.0, crate::spans::STAGE_DELIVER, first + j as u64);
        }
        self.apply_entries(ctx, first, &values);
        self.retire_ready();
        self.drive(ctx);
    }

    /// Replays parked deliveries from the (new) current leader, in their
    /// original delivery order (acknowledging them as they settle).
    fn replay_parked(&mut self, ctx: &mut Context<'_, Msg>) {
        let mut parked = std::mem::take(&mut self.parked);
        for d in parked.drain(..) {
            if d.from == self.current_leader {
                let RbPayload::LogEntries {
                    first, ref values, ..
                } = d.wire.payload
                else {
                    continue;
                };
                let values = values.clone();
                self.neb.acknowledge(ctx, &mut self.client, &d);
                self.apply_entries(ctx, first, &values);
            } else {
                self.parked.push(d);
            }
        }
    }

    /// Proposes batches until the pipeline window is full (leader only):
    /// adopted recovery values first (re-broadcast under the new epoch),
    /// then fresh workload.
    fn drive(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.is_leader || self.scanning.is_some() || self.need_scan {
            return;
        }
        while self.pipeline.len() < self.window {
            let mut values = Vec::new();
            let (first, own) = if let Some((&first, _)) = self.recover.iter().next() {
                // Recovery re-broadcast: a run of consecutive adopted values.
                for i in first..first + self.batch as u64 {
                    match self.recover.remove(&i) {
                        Some(v) => values.push(v),
                        None => break,
                    }
                }
                (first, None)
            } else {
                if self.core.workload_drained() {
                    return;
                }
                // A deep pipeline overlaps fresh fills with rounds whose
                // values have not settled yet — bar their ids (and the
                // adopted recovery plan's) so a router re-submission
                // can't ride into a second instance.
                let pipeline = &self.pipeline;
                let recover = &self.recover;
                self.core.fill_own(
                    self.batch,
                    self.next_instance,
                    |_| false,
                    |v| {
                        pipeline.iter().any(|s| s.values.contains(&v))
                            || recover.values().any(|&rv| rv == v)
                    },
                    &mut values,
                );
                // Take the round's accounting now so the next loop
                // iteration fills fresh workload; the slot carries it
                // until retirement (or rollback on abandonment).
                let own = Some(self.core.take_own_round());
                let first = self.next_instance;
                self.next_instance += values.len() as u64;
                (first, own)
            };
            for (j, v) in values.iter().enumerate() {
                ctx.obs_mark(v.0, crate::spans::STAGE_PROPOSE, first + j as u64);
            }
            let wire = log_entries_wire(first, self.epoch, values.clone());
            let k = self.neb.broadcast(ctx, &mut self.client, wire);
            self.pipeline.push_back(PipeSlot {
                k,
                first,
                values,
                own,
                delivered: false,
            });
        }
    }

    /// Starts the takeover scan: one replicated range read of the whole
    /// broadcast space. Completing at a memory majority is enough — every
    /// delivered value's receipt (and audit copy) was itself written to a
    /// majority, so the scan's read quorum intersects it.
    fn start_scan(&mut self, ctx: &mut Context<'_, Msg>) {
        self.clear_pipeline();
        self.recover.clear();
        self.scanning =
            Some(
                self.scan_rep
                    .read_range(ctx, &mut self.client, nebcast::ALL_REGION, None),
            );
    }

    /// Folds the scan result into an adoption map and opens the new
    /// epoch (see the module docs for the adoption rule).
    fn adopt(&mut self, rows: BTreeMap<rdma_sim::RegId, RegVal>) {
        self.need_scan = false;
        // Receipt provenance pre-pass: a broadcaster's *self-slot* — its
        // own sequence number in its own exclusive-writer row, the one
        // register nobody else can write — is the unforgeable record of
        // what it actually broadcast. Collect the validly-signed ones; a
        // receipt is credited below only if it holds exactly the slot the
        // claimed broadcaster's self-slot holds. This blocks a follower
        // forging receipts with a colluding leader's double-signature:
        // the signature verifies, but no matching self-slot exists.
        let mut self_slots: BTreeMap<(u32, u64), nebcast::NebSlot> = BTreeMap::new();
        for (reg, val) in &rows {
            let RegVal::Neb(slot) = val else { continue };
            if reg.b & RECEIPT_BIT != 0 || reg.a != reg.c {
                continue;
            }
            let sender = ActorId(reg.c as u32);
            if slot.k != reg.b || !self.procs.contains(&sender) {
                continue;
            }
            if self
                .verifier
                .valid(sender, &slot.wire.sign_view(slot.k), &slot.sig)
            {
                self_slots.insert((reg.c as u32, reg.b), slot.clone());
            }
        }
        let mut best: BTreeMap<u64, Candidate> = BTreeMap::new();
        let mut max_epoch = self.epoch;
        for (reg, val) in rows {
            let RegVal::Neb(slot) = val else { continue };
            let mut receipted = reg.b & RECEIPT_BIT != 0;
            let k = reg.b & !RECEIPT_BIT;
            let sender = ActorId(reg.c as u32);
            let row_owner = ActorId(reg.a as u32);
            if slot.k != k || !self.procs.contains(&sender) {
                continue;
            }
            // A broadcaster's receipt for its own wire proves nothing —
            // only other rows' receipts witness a delivery.
            if receipted && row_owner == sender {
                continue;
            }
            if !self
                .verifier
                .valid(sender, &slot.wire.sign_view(slot.k), &slot.sig)
            {
                continue;
            }
            if receipted
                && !self_slots
                    .get(&(reg.c as u32, k))
                    .is_some_and(|own| *own == slot)
            {
                // Provenance failed: demote rather than discard — the
                // value still competes as an (audit-grade) unreceipted
                // candidate, it just loses the adoption *preference* a
                // genuine delivery witness earns.
                self.receipts_rejected += 1;
                receipted = false;
            }
            let RbPayload::LogEntries {
                first,
                epoch,
                values,
            } = &slot.wire.payload
            else {
                continue;
            };
            max_epoch = max_epoch.max(*epoch);
            for (j, &v) in values.iter().enumerate() {
                let cand = Candidate {
                    receipted,
                    epoch: *epoch,
                    k,
                    value: v,
                };
                let inst = first + j as u64;
                best.entry(inst)
                    .and_modify(|b| {
                        if cand.key() < b.key() {
                            *b = cand;
                        }
                    })
                    .or_insert(cand);
            }
        }
        // Rebuild the dense recovery plan: everything this replica has
        // itself settled wins outright (a correct replica's log is, by
        // non-equivocation + the parking rule, consistent with every
        // other correct settle); scan candidates fill the rest; holes
        // below the frontier become explicit no-op fillers so follower
        // prefixes can always close.
        let settled_top = self.core.slots.len() as u64;
        let scanned_top = best.keys().next_back().map_or(0, |&i| i + 1);
        let top = settled_top.max(scanned_top);
        self.recover.clear();
        for i in 0..top {
            let v = self
                .core
                .decided(i)
                .or_else(|| best.get(&i).map(|c| c.value))
                .unwrap_or(Value(u64::MAX));
            self.recover.insert(i, v);
        }
        self.next_instance = top;
        self.epoch = max_epoch + 1;
    }
}

impl Actor<Msg> for ByzSmrNode {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                self.neb.poll(ctx, &mut self.client);
                self.drive(ctx);
                ctx.set_timer(self.poll_every, POLL_TAG);
            }
            EventKind::Timer { tag: POLL_TAG, .. } => {
                self.neb.poll(ctx, &mut self.client);
                for d in self.neb.take_deliveries() {
                    self.on_delivery(ctx, d);
                }
                if self.is_leader && self.need_scan && self.scanning.is_none() {
                    self.start_scan(ctx);
                }
                self.drive(ctx);
                ctx.set_timer(self.poll_every, POLL_TAG);
            }
            EventKind::Timer { .. } => {}
            EventKind::LeaderChange { leader } => {
                let was = self.is_leader;
                self.current_leader = leader;
                self.is_leader = leader == self.me;
                // Pipelined delivery follows the leadership: the new
                // leader's row is the one worth probing ahead.
                self.neb.set_focus(Some(leader));
                if self.is_leader && !was {
                    self.need_scan = true;
                    self.start_scan(ctx);
                } else if !self.is_leader {
                    self.clear_pipeline();
                    self.scanning = None;
                    self.need_scan = false;
                    self.recover.clear();
                }
                self.replay_parked(ctx);
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let Some(c) = self.client.on_wire(ctx, from, wire) else {
                    return;
                };
                if self.neb.on_completion(ctx, &mut self.client, c.clone()) {
                    for k in self.neb.take_broadcast_written() {
                        self.on_written(ctx, k);
                    }
                    for d in self.neb.take_deliveries() {
                        self.on_delivery(ctx, d);
                    }
                    self.drive(ctx);
                    return;
                }
                if let Some(ev) = self.scan_rep.on_completion(c) {
                    if Some(ev.id) == self.scanning {
                        self.scanning = None;
                        match ev.result {
                            RepResult::RangeOk(rows) => {
                                self.adopt(rows);
                                self.drive(ctx);
                            }
                            // Scan failed (memory churn): retry at the
                            // next poll tick.
                            _ => self.need_scan = true,
                        }
                    }
                }
            }
            EventKind::Msg {
                msg: Msg::Submit { mut cmds },
                ..
            } => {
                self.core.submit(&mut cmds);
                self.drive(ctx);
            }
            EventKind::Msg {
                msg: Msg::InstallSnapshot { seen, .. },
                ..
            } => {
                self.core.install_snapshot(seen);
            }
            // Byzantine mode trusts nothing it did not deliver itself:
            // `Decided` claims from peers are ignored.
            EventKind::Msg { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigsim::SigAuthority;
    use simnet::{Simulation, Time};

    fn build(
        n: u32,
        m: u32,
        seed: u64,
        cmds_leader: usize,
        batch: usize,
        silent: &[u32],
    ) -> (Simulation<Msg>, Vec<Pid>) {
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        let mut auth = SigAuthority::new(seed ^ 0xB12A);
        for i in 0..n {
            let signer = auth.register(ActorId(i));
            if silent.contains(&i) {
                sim.add(crate::adversary::SilentActor);
                continue;
            }
            let workload: Vec<Value> = if i == 0 {
                (0..cmds_leader).map(|c| Value(1000 + c as u64)).collect()
            } else {
                Vec::new()
            };
            sim.add(
                ByzSmrNode::new(
                    ActorId(i),
                    procs.clone(),
                    mems.clone(),
                    ActorId(0),
                    workload,
                    signer,
                    auth.verifier(),
                    Duration::from_delays(1),
                )
                .with_batch(batch),
            );
        }
        for _ in 0..m {
            sim.add(byz_memory_actor(&procs));
        }
        (sim, procs)
    }

    fn log_of(sim: &Simulation<Msg>, p: Pid) -> Vec<Value> {
        sim.actor_as::<ByzSmrNode>(p).unwrap().log()
    }

    /// Builds a validly-signed broadcast slot for `sender`.
    fn log_wire(
        signer: &sigsim::Signer,
        k: u64,
        first: u64,
        epoch: u64,
        values: Vec<Value>,
    ) -> RegVal {
        let wire = log_entries_wire(first, epoch, values);
        let sig = signer.sign(&wire.sign_view(k));
        RegVal::Neb(nebcast::NebSlot { k, wire, sig })
    }

    /// The takeover-scan adoption rule, pinned directly: among
    /// unreceipted candidates the HIGHEST epoch wins (a live deposed
    /// leader may have settled its own proposal, and the scan ignores
    /// self-receipts — its value must outrank a dead predecessor's
    /// leftover), while a receipt from another process outranks epochs
    /// entirely (somebody provably delivered that value).
    #[test]
    fn adoption_prefers_receipts_then_highest_epoch() {
        let procs: Vec<Pid> = (0..3).map(ActorId).collect();
        let mems: Vec<ActorId> = (3..6).map(ActorId).collect();
        let mut auth = SigAuthority::new(99 ^ 0xB12A);
        let s0 = auth.register(ActorId(0));
        let s1 = auth.register(ActorId(1));
        let _s2 = auth.register(ActorId(2));
        let mut node = ByzSmrNode::new(
            ActorId(2),
            procs,
            mems,
            ActorId(0),
            Vec::new(),
            _s2.clone(),
            auth.verifier(),
            Duration::from_delays(1),
        );
        // Old leader L0 (epoch 0) left value A at instance 1; promoted
        // L1 (epoch 1) proposed C there and may have settled it via
        // self-delivery. Nobody else delivered either.
        let a = log_wire(&s0, 2, 1, 0, vec![Value(100)]);
        let c = log_wire(&s1, 1, 1, 1, vec![Value(200)]);
        let mut rows = BTreeMap::new();
        rows.insert(nebcast::slot_reg(ActorId(0), 2, ActorId(0)), a.clone());
        rows.insert(nebcast::slot_reg(ActorId(1), 1, ActorId(1)), c.clone());
        node.adopt(rows.clone());
        assert_eq!(
            node.recover.get(&1),
            Some(&Value(200)),
            "highest epoch must win among unreceipted candidates"
        );
        assert_eq!(node.epoch, 2, "new epoch opens above the max seen");

        // A delivery receipt for A from a third replica flips the
        // preference: a provably-delivered value beats any epoch.
        rows.insert(nebcast::receipt_reg(ActorId(2), 2, ActorId(0)), a);
        node.adopt(rows.clone());
        assert_eq!(
            node.recover.get(&1),
            Some(&Value(100)),
            "a receipted value must outrank higher unreceipted epochs"
        );

        // A broadcaster's receipt for its OWN wire proves nothing.
        rows.remove(&nebcast::receipt_reg(ActorId(2), 2, ActorId(0)));
        rows.insert(nebcast::receipt_reg(ActorId(0), 2, ActorId(0)), c);
        node.adopt(rows);
        assert_eq!(
            node.recover.get(&1),
            Some(&Value(200)),
            "self-receipts must stay ignored"
        );
    }

    /// The receipt-provenance check, pinned directly: a forged receipt —
    /// a Byzantine follower crediting the leader with a broadcast the
    /// leader never made, signed with the colluding leader's own key —
    /// must fail provenance (no matching self-slot), be demoted out of
    /// the receipted preference class, and be counted. Without the check
    /// its higher epoch would hijack the adoption outright.
    #[test]
    fn forged_receipts_fail_provenance_and_are_counted() {
        let procs: Vec<Pid> = (0..3).map(ActorId).collect();
        let mems: Vec<ActorId> = (3..6).map(ActorId).collect();
        let mut auth = SigAuthority::new(7 ^ 0xB12A);
        let s0 = auth.register(ActorId(0));
        let _s1 = auth.register(ActorId(1));
        let s2 = auth.register(ActorId(2));
        let mut node = ByzSmrNode::new(
            ActorId(2),
            procs,
            mems,
            ActorId(0),
            Vec::new(),
            s2,
            auth.verifier(),
            Duration::from_delays(1),
        );
        // Genuine history: leader 0 broadcast A at k=1 (self-slot in its
        // own row), replica 2's receipt witnesses the delivery.
        let real = log_wire(&s0, 1, 0, 0, vec![Value(100)]);
        let mut rows = BTreeMap::new();
        rows.insert(nebcast::slot_reg(ActorId(0), 1, ActorId(0)), real.clone());
        rows.insert(nebcast::receipt_reg(ActorId(2), 1, ActorId(0)), real);
        // The forgery, in follower 1's row: a receipt crediting 0 with
        // junk at instance 0 under a higher epoch and a sequence number
        // 0 never used — validly signed with 0's key (collusion).
        let forged = log_wire(&s0, 9, 0, 5, vec![Value(666)]);
        rows.insert(nebcast::receipt_reg(ActorId(1), 9, ActorId(0)), forged);
        node.adopt(rows);
        assert_eq!(
            node.receipts_rejected(),
            1,
            "exactly the forged receipt must be rejected (not the real one)"
        );
        assert_eq!(
            node.recover.get(&0),
            Some(&Value(100)),
            "the genuinely receipted value must keep instance 0"
        );
    }

    #[test]
    fn failure_free_log_replicates_in_order() {
        let (mut sim, procs) = build(3, 3, 1, 6, 2, &[]);
        sim.run_until(Time::from_delays(400), |s| {
            procs
                .iter()
                .all(|&p| s.actor_as::<ByzSmrNode>(p).unwrap().log_len() >= 6)
        });
        let expected: Vec<Value> = (0..6).map(|c| Value(1000 + c)).collect();
        for &p in &procs {
            assert_eq!(log_of(&sim, p), expected, "replica {p}");
        }
    }

    #[test]
    fn f_silent_replicas_do_not_block_commitment() {
        // n = 3 = 2f+1 with f = 1 silent Byzantine replica: the log only
        // needs the memories, so the leader and the one correct follower
        // still commit everything.
        let (mut sim, procs) = build(3, 3, 2, 5, 1, &[2]);
        let correct = [procs[0], procs[1]];
        sim.run_until(Time::from_delays(600), |s| {
            correct
                .iter()
                .all(|&p| s.actor_as::<ByzSmrNode>(p).unwrap().log_len() >= 5)
        });
        let expected: Vec<Value> = (0..5).map(|c| Value(1000 + c)).collect();
        for &p in &correct {
            assert_eq!(log_of(&sim, p), expected, "replica {p}");
        }
    }

    #[test]
    fn takeover_preserves_committed_prefix() {
        // The leader commits a few batches and crashes; Ω promotes
        // replica 1, whose scan must adopt the decided prefix before its
        // own (empty) workload — then a Submit drives fresh commands.
        let (mut sim, procs) = build(3, 3, 3, 4, 2, &[]);
        sim.crash_at(ActorId(0), Time::from_delays(40));
        sim.announce_leader(Time::from_delays(60), &procs, ActorId(1));
        sim.schedule(
            Time::from_delays(61),
            procs[1],
            EventKind::Msg {
                from: ActorId(99),
                msg: Msg::Submit {
                    cmds: vec![Value(7), Value(8)],
                },
            },
        );
        sim.run_until(Time::from_delays(2_000), |s| {
            s.actor_as::<ByzSmrNode>(procs[1]).unwrap().log_len() >= 6
        });
        let l1 = log_of(&sim, procs[1]);
        let l2 = log_of(&sim, procs[2]);
        assert!(l1.len() >= 6, "no progress after takeover: {l1:?}");
        // The crashed leader's entries survived, in order, without
        // duplication, and the successor's commands follow.
        let client: Vec<u64> = l1.iter().map(|v| v.0).filter(|&v| v != u64::MAX).collect();
        assert_eq!(client, vec![1000, 1001, 1002, 1003, 7, 8]);
        // Correct replicas agree on the shared prefix.
        let common = l1.len().min(l2.len());
        assert_eq!(l1[..common], l2[..common]);
    }

    #[test]
    fn session_dedup_suppresses_resubmitted_commands() {
        // Replica 1 takes over and is (re-)submitted a command the old
        // leader already committed: dedup must suppress the duplicate.
        let mut sim = Simulation::new(5);
        let procs: Vec<Pid> = (0..3).map(ActorId).collect();
        let mems: Vec<ActorId> = (3..6).map(ActorId).collect();
        let mut auth = SigAuthority::new(5 ^ 0xB12A);
        for i in 0..3u32 {
            let signer = auth.register(ActorId(i));
            let workload = if i == 0 { vec![Value(41)] } else { Vec::new() };
            sim.add(
                ByzSmrNode::new(
                    ActorId(i),
                    procs.clone(),
                    mems.clone(),
                    ActorId(0),
                    workload,
                    signer,
                    auth.verifier(),
                    Duration::from_delays(1),
                )
                .with_session_dedup(),
            );
        }
        for _ in 0..3 {
            sim.add(byz_memory_actor(&procs));
        }
        sim.crash_at(ActorId(0), Time::from_delays(40));
        sim.announce_leader(Time::from_delays(60), &procs, ActorId(1));
        // The "router" re-submits the already-committed 41 plus a new 42.
        sim.schedule(
            Time::from_delays(61),
            procs[1],
            EventKind::Msg {
                from: ActorId(99),
                msg: Msg::Submit {
                    cmds: vec![Value(41), Value(42)],
                },
            },
        );
        sim.run_until(Time::from_delays(2_000), |s| {
            s.actor_as::<ByzSmrNode>(procs[1])
                .unwrap()
                .log()
                .contains(&Value(42))
        });
        let node = sim.actor_as::<ByzSmrNode>(procs[1]).unwrap();
        let log = node.log();
        assert_eq!(
            log.iter().filter(|&&v| v == Value(41)).count(),
            1,
            "duplicate not suppressed: {log:?}"
        );
        assert_eq!(node.duplicates_suppressed(), 1);
    }
}
