//! The protocol-independent half of a replicated-log node.
//!
//! [`SmrNode`](super::SmrNode) (crash PMP) and
//! [`ByzSmrNode`](super::ByzSmrNode) (Byzantine, non-equivocating
//! broadcast) decide log entries through very different wire protocols,
//! but everything *around* the decision is identical: the dense decided
//! log with its contiguous prefix, client-session dedup, the run-time
//! workload queue ([`crate::types::Msg::Submit`]), write batching's
//! fill-a-batch bookkeeping, and migration-snapshot folding
//! ([`crate::types::Msg::InstallSnapshot`]). [`LogCore`] is that shared
//! half, extracted so the sharded service's per-group [`GroupMode`]
//! switch changes the consensus protocol and nothing else.
//!
//! [`GroupMode`]: crate::sharded::GroupMode

use std::collections::HashSet;

use simnet::Time;

use crate::types::Value;

/// The log + workload state machine shared by every SMR protocol.
///
/// Nothing here touches the network: the owning node calls
/// [`LogCore::settle`] / [`LogCore::settle_many`] when its protocol
/// decides instances, and [`LogCore::fill_own`] /
/// [`LogCore::commit_own_round`] around each proposal round. Both return
/// enough for the owner to drive notifications and metrics.
#[derive(Debug)]
pub struct LogCore {
    /// Commands this node wants committed (its client workload).
    pub workload: Vec<Value>,
    /// Workload entries committed (or dedup-consumed) so far.
    pub next_cmd: usize,
    /// Client-session dedup: when enabled, a leader skips proposing
    /// commands whose ids it has already seen decided — the at-least-once
    /// duplicates a retrying client (the sharded router) creates by
    /// re-submitting in-flight commands on failover.
    pub dedup: bool,
    /// Ids observed decided (populated only when `dedup` is on).
    pub seen_cmds: HashSet<u64>,
    /// Workload slots consumed by the in-flight round (proposed + skipped).
    pub own_consumed: usize,
    /// Duplicates skipped by the in-flight round.
    pub own_suppressed: u64,
    /// Total duplicate proposals suppressed over the run (committed
    /// rounds only; abandoned rounds re-evaluate from scratch).
    pub duplicates_suppressed: u64,
    /// Decided log entries, dense by instance (`None` = hole). Instances
    /// are contiguous from 0 in steady state, so a vector beats a map on
    /// the per-entry hot path; the log is the `Some`-prefix.
    pub slots: Vec<Option<Value>>,
    /// Length of the contiguous decided prefix (maintained incrementally).
    pub prefix_len: usize,
    /// `(instance, time)` each log slot was decided at this node, in
    /// decision order (instance order under a stable leader).
    pub decided_at: Vec<(u64, Time)>,
}

impl LogCore {
    /// Creates the core with this node's initial proposal workload.
    pub fn new(workload: Vec<Value>) -> LogCore {
        LogCore {
            workload,
            next_cmd: 0,
            dedup: false,
            seen_cmds: HashSet::new(),
            own_consumed: 0,
            own_suppressed: 0,
            duplicates_suppressed: 0,
            slots: Vec::new(),
            prefix_len: 0,
            decided_at: Vec::new(),
        }
    }

    /// The contiguous decided prefix of the log.
    pub fn log(&self) -> Vec<Value> {
        self.slots[..self.prefix_len]
            .iter()
            .map(|s| s.expect("prefix is decided"))
            .collect()
    }

    /// Length of the contiguous decided prefix (O(1)).
    pub fn log_len(&self) -> usize {
        self.prefix_len
    }

    /// The decided value of `instance`, if any (including beyond a hole).
    pub fn decided(&self, instance: u64) -> Option<Value> {
        self.slots.get(instance as usize).copied().flatten()
    }

    /// Whether the proposal workload has been fully consumed.
    pub fn workload_drained(&self) -> bool {
        self.next_cmd >= self.workload.len()
    }

    /// Appends run-time routed commands to the proposal workload.
    pub fn submit(&mut self, cmds: &mut Vec<Value>) {
        self.workload.append(cmds);
    }

    /// Folds a key-range migration snapshot into the dedup seen-set (the
    /// ids the source group already committed for the sealed range).
    pub fn install_snapshot(&mut self, seen: Vec<u64>) {
        if self.dedup {
            self.seen_cmds.extend(seen);
        }
    }

    /// Fills `out` with up to `batch` fresh workload commands for the
    /// round proposing instances `first_instance ..`, consuming workload
    /// slots and skipping already-seen ids when dedup is on. `barred`
    /// marks instances that must not be filled from the workload (a
    /// recovered value waits there); filling stops at the first barred
    /// instance. `pending` marks values already carried by an unsettled
    /// in-flight round (a pipelined leader's earlier slots, or adopted
    /// recovery values not yet re-committed) — with dedup on they are
    /// suppressed exactly like seen ids, since at window 1 every such
    /// value settles into `seen_cmds` before a fresh fill can observe
    /// it. When everything available was a duplicate, a no-op filler is
    /// emitted so the round still advances the log.
    pub fn fill_own(
        &mut self,
        batch: usize,
        first_instance: u64,
        barred: impl Fn(u64) -> bool,
        pending: impl Fn(Value) -> bool,
        out: &mut Vec<Value>,
    ) {
        self.own_consumed = 0;
        self.own_suppressed = 0;
        while out.len() < batch && self.next_cmd + self.own_consumed < self.workload.len() {
            // A recovered value downstream ends the batch: it must
            // head its own round.
            if barred(first_instance + out.len() as u64) {
                break;
            }
            let v = self.workload[self.next_cmd + self.own_consumed];
            self.own_consumed += 1;
            // Session dedup: skip commands already seen decided (the
            // router's at-least-once failover re-submissions). The
            // skipped slot is still consumed from the workload — on
            // commit, `next_cmd` advances past it.
            if self.dedup && v != Value(u64::MAX) && (self.seen_cmds.contains(&v.0) || pending(v)) {
                self.own_suppressed += 1;
                continue;
            }
            out.push(v);
        }
        if out.is_empty() {
            // No command of our own (or all remaining were
            // duplicates): commit a no-op filler.
            out.push(Value(u64::MAX));
        }
    }

    /// Commits the accounting of a round that proposed its own commands:
    /// every consumed workload slot advances the cursor (proposed values
    /// equal consumed slots minus dedup-suppressed ones — without dedup
    /// the two counts coincide).
    pub fn commit_own_round(&mut self) {
        self.next_cmd += self.own_consumed;
        self.duplicates_suppressed += self.own_suppressed;
        self.own_consumed = 0;
        self.own_suppressed = 0;
    }

    /// Takes ownership of the in-flight round's accounting so another
    /// round can start while this one is still replicating (the pipelined
    /// leader's per-slot bookkeeping): advances the workload cursor past
    /// the consumed slots — the next [`LogCore::fill_own`] reads fresh
    /// commands — and returns `(consumed, suppressed)` for the slot to
    /// carry. On commit the owner banks the suppression count
    /// ([`LogCore::bank_suppressed`]); on abandonment it rolls the cursor
    /// back ([`LogCore::unconsume`]).
    pub fn take_own_round(&mut self) -> (usize, u64) {
        let taken = (self.own_consumed, self.own_suppressed);
        self.next_cmd += self.own_consumed;
        self.own_consumed = 0;
        self.own_suppressed = 0;
        taken
    }

    /// Banks a committed pipelined round's dedup-suppression count (the
    /// cursor already advanced in [`LogCore::take_own_round`]).
    pub fn bank_suppressed(&mut self, suppressed: u64) {
        self.duplicates_suppressed += suppressed;
    }

    /// Rolls the workload cursor back over an abandoned pipelined round's
    /// consumed slots, so a later round re-proposes them.
    pub fn unconsume(&mut self, consumed: usize) {
        debug_assert!(consumed <= self.next_cmd, "rollback past the cursor");
        self.next_cmd -= consumed.min(self.next_cmd);
    }

    /// Marks `instance` decided as `v` (first decision wins). Returns
    /// true if the slot was newly decided — the owner then records the
    /// kernel decision mark and notifies its observers.
    pub fn settle(&mut self, now: Time, instance: u64, v: Value) -> bool {
        let idx = instance as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].is_some() {
            return false;
        }
        self.slots[idx] = Some(v);
        if self.dedup && v != Value(u64::MAX) {
            self.seen_cmds.insert(v.0);
        }
        while self.prefix_len < self.slots.len() && self.slots[self.prefix_len].is_some() {
            self.prefix_len += 1;
        }
        self.decided_at.push((instance, now));
        true
    }

    /// Applies a contiguous decided run `first .. first + values.len()`
    /// in one pass: one log resize, one decided-prefix walk for the whole
    /// batch. Slots already decided are skipped, exactly as per-entry
    /// [`LogCore::settle`] would. Returns true if anything was new.
    pub fn settle_many(&mut self, now: Time, first: u64, values: &[Value]) -> bool {
        let end = first as usize + values.len();
        if end > self.slots.len() {
            self.slots.resize(end, None);
        }
        self.decided_at.reserve(values.len());
        let mut any_new = false;
        for (j, &v) in values.iter().enumerate() {
            let idx = first as usize + j;
            if self.slots[idx].is_none() {
                self.slots[idx] = Some(v);
                if self.dedup && v != Value(u64::MAX) {
                    self.seen_cmds.insert(v.0);
                }
                self.decided_at.push((idx as u64, now));
                any_new = true;
            }
        }
        if any_new {
            while self.prefix_len < self.slots.len() && self.slots[self.prefix_len].is_some() {
                self.prefix_len += 1;
            }
        }
        any_new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settle_prefix_and_holes() {
        let mut c = LogCore::new(Vec::new());
        assert!(c.settle(Time(1), 0, Value(10)));
        assert!(c.settle(Time(2), 2, Value(30)));
        assert_eq!(c.log(), vec![Value(10)]);
        assert_eq!(c.log_len(), 1);
        assert!(c.settle(Time(3), 1, Value(20)));
        assert_eq!(c.log(), vec![Value(10), Value(20), Value(30)]);
        // First decision wins.
        assert!(!c.settle(Time(4), 1, Value(99)));
        assert_eq!(c.decided(1), Some(Value(20)));
    }

    #[test]
    fn fill_own_dedups_and_fills_noop() {
        let mut c = LogCore::new(vec![Value(1), Value(2), Value(3)]);
        c.dedup = true;
        c.seen_cmds.insert(1);
        c.seen_cmds.insert(2);
        c.seen_cmds.insert(3);
        let mut out = Vec::new();
        c.fill_own(4, 0, |_| false, |_| false, &mut out);
        assert_eq!(out, vec![Value(u64::MAX)], "all duplicates -> filler");
        assert_eq!(c.own_consumed, 3);
        assert_eq!(c.own_suppressed, 3);
        c.commit_own_round();
        assert_eq!(c.next_cmd, 3);
        assert_eq!(c.duplicates_suppressed, 3);
        assert!(c.workload_drained());
    }

    #[test]
    fn fill_own_stops_at_barred_instance() {
        let mut c = LogCore::new(vec![Value(1), Value(2), Value(3)]);
        let mut out = Vec::new();
        c.fill_own(4, 10, |i| i == 12, |_| false, &mut out);
        assert_eq!(out, vec![Value(1), Value(2)]);
        assert_eq!(c.own_consumed, 2);
    }
}
