//! State machine replication over Protected Memory Paxos.
//!
//! The paper's crash-consensus algorithm is single-decree, but its closing
//! remark points at exactly this construction: *"the code shows one
//! instance of consensus, with p1 as initial leader. With many consensus
//! instances, the leader terminates one instance and becomes the default
//! leader in the next."* [`SmrNode`] implements that: a totally-ordered
//! command log where slot `i` is decided by Protected Memory Paxos instance
//! `i` over the same memories (slot registers are instance-indexed), and
//! the decider of instance `i` starts instance `i+1` phase-1-free.
//!
//! This is the shape of the RDMA replication systems the paper inspired
//! (DARE, APUS, and later Mu): a stable leader commits one log entry per
//! *single* replicated write — two network delays per command.
//!
//! **Write batching.** With [`SmrNode::with_batch`], a stable leader packs
//! up to `batch` pending commands into consecutive instances and commits
//! them with one scatter-gather write per memory
//! ([`rdma_sim::MemRequest::WriteMany`]): one memory round trip — and one
//! `DecidedMany` message per follower — amortized over `batch` log
//! entries. `batch = 1` (the default) takes the exact single-write wire
//! path and is schedule-identical to the pre-batching implementation; the
//! golden-schedule tests pin that. Takeover scans see batched entries as
//! ordinary per-instance slot registers; runs of *consecutive* recovered
//! instances are re-committed as one scatter-gather round (each instance
//! still carries its own highest-accepted value, so Paxos safety is
//! untouched), and followers apply a `DecidedMany` batch in one pass —
//! one log resize, one decided-prefix walk and one decision mark per
//! batch rather than per entry.
//!
//! **Sharded service hooks.** A node may also receive commands at run time
//! ([`Msg::Submit`], routed by the sharded service layer in
//! [`crate::sharded`]) and may carry *observers* — actors outside the
//! replica ring (the sharded router) that receive the same decision
//! notifications followers do. Both default to off and change nothing for
//! single-group deployments.
//!
//! **Migration control entries.** Key-range migrations
//! ([`crate::sharded::rebalance`]) ride the log as ordinary values: the
//! source group commits a *seal* entry ending the range's history there,
//! the destination commits an *install* entry starting it. Replicas treat
//! them as opaque ids — total order is all the protocol owes them. The
//! migration's state snapshot arrives out of the log
//! ([`Msg::InstallSnapshot`]) and lands in the session-dedup seen-set, so
//! a command the source already committed is suppressed if it is ever
//! re-proposed at the destination.
//!
//! Failure handling: when Ω nominates a new leader, it runs the full
//! three-step acquisition (permission grab, ballot write, **whole-log slot
//! scan**); every value a previous leader may have accepted anywhere in the
//! log is recovered and re-committed under the new leader's epoch before
//! fresh commands continue, so no decided entry is ever lost. Ballots are
//! `(epoch, pid)` with one epoch per leadership term — the standard
//! Multi-Paxos discipline that keeps a deposed leader's in-flight writes
//! below every later term.

use std::collections::BTreeMap;

use rdma_sim::{MemResponse, MemoryClient, Permission};
use simnet::{Actor, ActorId, Context, Duration, EventKind, Time};

use crate::protected::{slot_reg, REGION};
use crate::types::{Ballot, Instance, Msg, PaxSlot, Pid, RegVal, Value};

pub mod byz;
pub mod core;

pub use byz::{byz_memory_actor, ByzSmrNode};
pub use core::LogCore;

const RETRY_TAG: u64 = 50;

/// Max scan-row buffers kept in the per-node scratch pool.
const SLOT_POOL_CAP: usize = 8;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StepKind {
    Perm,
    Write1,
    Scan,
    Write2,
}

#[derive(Clone, Copy, Debug)]
struct ScannedSlot {
    instance: u64,
    slot: PaxSlot,
}

#[derive(Clone, Debug, Default)]
struct MemIter {
    write1: Option<bool>,
    slots: Option<Vec<ScannedSlot>>,
    write2: Option<bool>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Idle,
    One,
    Two,
}

/// A replica serving a totally-ordered command log.
#[derive(Debug)]
pub struct SmrNode {
    me: Pid,
    procs: Vec<Pid>,
    mems: Vec<ActorId>,
    /// Actors outside the replica ring (e.g. the sharded router) that also
    /// receive `Decided`/`DecidedMany` notifications from this node when it
    /// commits as leader.
    observers: Vec<ActorId>,
    f_m: usize,
    retry_every: Duration,
    /// Max log entries committed per replicated write (≥ 1).
    batch: usize,
    client: MemoryClient<RegVal, Msg>,
    /// The protocol-independent log/workload state machine (decided
    /// slots, session dedup, batching cursors) shared with the Byzantine
    /// node — see [`LogCore`]. Commands carry their session tag in the
    /// value itself (the sharded router's dense 1-based command id is the
    /// single client's sequence number), so the dedup seen-set is just
    /// the decided ids.
    core: LogCore,
    // Leadership / proposer state for the current instance.
    is_leader: bool,
    /// True once this leader has acquired permissions since its election
    /// (the grab covers the whole region, i.e. all instances).
    holds_permission: bool,
    instance: u64,
    attempt: u64,
    /// This leadership term's epoch (ballot round, fixed for the term).
    epoch: u64,
    max_epoch_seen: u64,
    /// Values recovered from the takeover scan: instance → highest
    /// accepted (ballot, value); must be re-committed before new commands.
    recover: BTreeMap<u64, (Ballot, Value)>,
    ballot: Option<Ballot>,
    phase: Phase,
    /// Values proposed this round for instances
    /// `instance .. instance + values.len()` (empty when idle).
    values: Vec<Value>,
    proposing_own: bool,
    /// Adaptive doorbell-batch cap; `0` = fixed `batch` only (see
    /// [`SmrNode::with_adaptive_batch`]).
    adaptive_cap: usize,
    /// Per-memory progress of the current round. Small linear vec: its
    /// capacity survives the per-round `clear()`, unlike a map's nodes.
    iters: Vec<(ActorId, MemIter)>,
    /// In-flight op → (attempt, memory, step). Linear small-vec for the
    /// same reason; at most a few entries per memory.
    op_map: Vec<(rdma_sim::OpId, (u64, ActorId, StepKind))>,
    /// Scratch pool for takeover-scan row buffers (the swmr recycle
    /// pattern): `Vec<ScannedSlot>` capacity is returned here when a round
    /// ends instead of being dropped, so repeated takeover scans stop
    /// allocating per response.
    spare_slots: Vec<Vec<ScannedSlot>>,
}

impl SmrNode {
    /// Creates a replica. `workload` is the sequence of commands this node
    /// proposes when it leads; `initial_leader` owns the instance-0
    /// permissions.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: Pid,
        procs: Vec<Pid>,
        mems: Vec<ActorId>,
        initial_leader: Pid,
        workload: Vec<Value>,
        f_m: usize,
        retry_every: Duration,
    ) -> SmrNode {
        SmrNode {
            me,
            procs,
            mems,
            observers: Vec::new(),
            f_m,
            retry_every,
            batch: 1,
            adaptive_cap: 0,
            client: MemoryClient::new(),
            core: LogCore::new(workload),
            is_leader: me == initial_leader,
            holds_permission: me == initial_leader,
            instance: 0,
            attempt: 0,
            epoch: 0,
            max_epoch_seen: 0,
            recover: BTreeMap::new(),
            ballot: None,
            phase: Phase::Idle,
            values: Vec::new(),
            proposing_own: false,
            iters: Vec::new(),
            op_map: Vec::new(),
            spare_slots: Vec::new(),
        }
    }

    /// Sets how many log entries a stable leader commits per replicated
    /// write (clamped to ≥ 1). `1` reproduces the unbatched protocol
    /// exactly, down to the wire.
    pub fn with_batch(mut self, batch: usize) -> SmrNode {
        self.batch = batch.max(1);
        self
    }

    /// Enables adaptive doorbell batching: each round packs however many
    /// commands are actually pending, up to `cap` work requests per
    /// posting, instead of the fixed [`SmrNode::with_batch`] size. A
    /// shallow backlog commits immediately in a small burst (latency); a
    /// deep one fills the cap and amortizes the doorbell (throughput).
    /// Only meaningful under [`simnet::DelayModel::Rdma`], where a burst
    /// of `k` writes is charged one doorbell plus `k` per-WR increments;
    /// `0` (the default) disables it.
    pub fn with_adaptive_batch(mut self, cap: usize) -> SmrNode {
        self.adaptive_cap = cap;
        self
    }

    /// Enables client-session dedup: this node, when leading, suppresses
    /// proposals of command ids it has already seen decided. Upgrades the
    /// sharded router's at-least-once re-submission to exactly-once *in
    /// the log* for the common failover path (a command committed by the
    /// crashed leader, learned by the successor through its takeover
    /// scan, then re-submitted by the router). A narrow race remains —
    /// a command recovered-but-not-yet-recommitted can be proposed into
    /// an earlier hole before its recovered copy settles — so the state
    /// machine contract stays "observably exactly-once, log may rarely
    /// duplicate"; [`SmrNode::duplicates_suppressed`] counts the
    /// suppressions. Off by default: single-group deployments have no
    /// retrying client, and dedup off reproduces the pre-dedup schedule
    /// bit-for-bit.
    pub fn with_session_dedup(mut self) -> SmrNode {
        self.core.dedup = true;
        self
    }

    /// Duplicate proposals suppressed so far (see
    /// [`SmrNode::with_session_dedup`]).
    pub fn duplicates_suppressed(&self) -> u64 {
        self.core.duplicates_suppressed
    }

    /// Registers an observer: an actor outside the replica ring that
    /// receives this node's `Decided`/`DecidedMany` notifications when it
    /// commits as leader (the sharded router tracks per-group commit
    /// progress this way).
    pub fn with_observer(mut self, observer: ActorId) -> SmrNode {
        self.observers.push(observer);
        self
    }

    /// The contiguous decided prefix of the log.
    pub fn log(&self) -> Vec<Value> {
        self.core.log()
    }

    /// Length of the contiguous decided prefix (O(1)).
    pub fn log_len(&self) -> usize {
        self.core.log_len()
    }

    /// The decided value of `instance`, if any (including beyond a hole).
    pub fn decided(&self, instance: u64) -> Option<Value> {
        self.core.decided(instance)
    }

    /// Number of own commands committed so far.
    pub fn committed_own(&self) -> usize {
        self.core.next_cmd
    }

    /// `(instance, time)` each log slot was decided at this node, in
    /// decision order (instance order under a stable leader).
    pub fn decided_at(&self) -> &[(u64, Time)] {
        &self.core.decided_at
    }

    fn quorum(&self) -> usize {
        self.mems.len() - self.f_m
    }

    /// Fills `values` for the round starting at `self.instance`. Recovered
    /// values (from the takeover scan) take precedence over new commands:
    /// a run of *consecutive* recovered instances is re-committed as one
    /// batch — each instance still carries its own highest-accepted value,
    /// so this is ordinary per-instance Paxos phase 2, just amortized onto
    /// one scatter-gather write. Fresh commands fill a batch but stop
    /// before any recovered instance (which must head its own round). When
    /// neither is available but the caller decided to propose anyway (a
    /// hole below pending recovered values), a no-op fills the slot.
    fn fill_values(&mut self) {
        self.values.clear();
        // Adaptive mode lets the round grow to the backlog (capped);
        // otherwise the configured fixed batch applies.
        let limit = if self.adaptive_cap > 0 {
            self.adaptive_cap
        } else {
            self.batch
        };
        if self.recover.contains_key(&self.instance) {
            self.proposing_own = false;
            for j in 0..limit as u64 {
                match self.recover.get(&(self.instance + j)) {
                    Some((_, v)) => self.values.push(*v),
                    None => break,
                }
            }
        } else {
            self.proposing_own = true;
            let recover = &self.recover;
            self.core.fill_own(
                limit,
                self.instance,
                |i| recover.contains_key(&i),
                |_| false, // one slot in flight: settles before the next fill
                &mut self.values,
            );
        }
    }

    /// Whether the takeover scan left values at or above the current
    /// instance still waiting to be re-committed.
    fn recovery_pending(&self) -> bool {
        self.recover.range(self.instance..).next_back().is_some()
    }

    /// Picks the next undecided instance and proposes (leader only).
    fn drive(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.is_leader || self.phase != Phase::Idle {
            return;
        }
        // Move past instances already known decided.
        while self.decided(self.instance).is_some() {
            self.instance += 1;
        }
        if self.core.workload_drained() && self.holds_permission && !self.recovery_pending() {
            // Nothing left to propose and nothing to recover; stay quiet.
            // (A fuller system would no-op-fill holes; our workload model
            // always proposes.) Without the recovery check a leader whose
            // own workload drained — e.g. a sharded follower promoted
            // before the router re-submits — would stall mid-recovery.
            return;
        }
        self.attempt += 1;
        self.reset_iters();
        if self.holds_permission {
            // Steady state: straight to phase 2.
            let b = Ballot {
                round: self.epoch,
                pid: self.me,
            };
            self.ballot = Some(b);
            self.fill_values();
            self.phase = Phase::Two;
            self.send_phase2(ctx);
            return;
        }
        // Takeover: acquire permission, stamp the new epoch into this
        // instance's slot, and scan the WHOLE log for values to recover.
        self.epoch = self.epoch.max(self.max_epoch_seen) + 1;
        let b = Ballot {
            round: self.epoch,
            pid: self.me,
        };
        self.ballot = Some(b);
        self.phase = Phase::One;
        let reg = slot_reg(Instance(self.instance), self.me);
        for i in 0..self.mems.len() {
            let mem = self.mems[i];
            self.iters.push((mem, MemIter::default()));
            let p =
                self.client
                    .change_perm(ctx, mem, REGION, Permission::exclusive_writer(self.me));
            self.op_map.push((p, (self.attempt, mem, StepKind::Perm)));
            let w = self
                .client
                .write(ctx, mem, REGION, reg, RegVal::Slot(PaxSlot::phase1(b)));
            self.op_map.push((w, (self.attempt, mem, StepKind::Write1)));
            let r = self.client.read_range(ctx, mem, REGION, None);
            self.op_map.push((r, (self.attempt, mem, StepKind::Scan)));
        }
    }

    /// Ends the current round's per-memory progress, returning scan-row
    /// buffers to the scratch pool instead of dropping them.
    fn reset_iters(&mut self) {
        let mut iters = std::mem::take(&mut self.iters);
        for (_, it) in iters.drain(..) {
            if let Some(mut s) = it.slots {
                if self.spare_slots.len() < SLOT_POOL_CAP {
                    s.clear();
                    self.spare_slots.push(s);
                }
            }
        }
        self.iters = iters;
    }

    fn send_phase2(&mut self, ctx: &mut Context<'_, Msg>) {
        let b = self.ballot.expect("phase 2 without ballot");
        assert!(!self.values.is_empty(), "phase 2 without values");
        for (j, v) in self.values.iter().enumerate() {
            ctx.obs_mark(v.0, crate::spans::STAGE_PROPOSE, self.instance + j as u64);
        }
        self.reset_iters();
        for i in 0..self.mems.len() {
            let mem = self.mems[i];
            self.iters.push((mem, MemIter::default()));
            let w = if self.values.len() == 1 {
                // Unbatched: the exact pre-batching wire request.
                let reg = slot_reg(Instance(self.instance), self.me);
                let slot = RegVal::Slot(PaxSlot::phase2(b, self.values[0]));
                self.client.write(ctx, mem, REGION, reg, slot)
            } else {
                // One scatter-gather round trip covering the whole batch.
                let writes: Vec<_> = self
                    .values
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| {
                        let reg = slot_reg(Instance(self.instance + j as u64), self.me);
                        (reg, RegVal::Slot(PaxSlot::phase2(b, v)))
                    })
                    .collect();
                self.client.write_many(ctx, mem, REGION, writes)
            };
            self.op_map.push((w, (self.attempt, mem, StepKind::Write2)));
        }
    }

    fn abandon(&mut self) {
        self.phase = Phase::Idle;
        self.holds_permission = false; // be conservative: re-acquire
    }

    fn phase1_step(&mut self, ctx: &mut Context<'_, Msg>) {
        let complete: Vec<&MemIter> = self
            .iters
            .iter()
            .map(|(_, i)| i)
            .filter(|i| i.write1.is_some() && i.slots.is_some())
            .collect();
        if complete.len() < self.quorum() {
            return;
        }
        let ballot = self.ballot.expect("phase without ballot");
        if complete.iter().any(|i| i.write1 == Some(false)) {
            self.abandon();
            return;
        }
        // Whole-log recovery: for every instance, remember the value
        // accepted at the highest ballot (quorum intersection guarantees
        // any decided value appears here).
        self.recover.clear();
        let mut higher = false;
        for it in &complete {
            for (reg, s) in it
                .slots
                .as_ref()
                .expect("filtered")
                .iter()
                .map(|s| (s.instance, s.slot))
            {
                self.max_epoch_seen = self.max_epoch_seen.max(s.min_prop.round);
                if s.min_prop > ballot {
                    higher = true;
                }
                if let (Some(ap), Some(v)) = (s.acc_prop, s.value) {
                    let entry = self.recover.entry(reg).or_insert((ap, v));
                    if ap > entry.0 {
                        *entry = (ap, v);
                    }
                }
            }
        }
        if higher {
            self.abandon();
            return;
        }
        self.fill_values();
        // The acquisition succeeded on a quorum; phase-2 writes will tell
        // us if anyone raced us.
        self.holds_permission = true;
        self.phase = Phase::Two;
        self.attempt += 1;
        self.send_phase2(ctx);
    }

    fn phase2_step(&mut self, ctx: &mut Context<'_, Msg>) {
        let complete: Vec<&MemIter> = self
            .iters
            .iter()
            .map(|(_, i)| i)
            .filter(|i| i.write2.is_some())
            .collect();
        if complete.len() < self.quorum() {
            return;
        }
        if complete.iter().any(|i| i.write2 == Some(false)) {
            self.abandon();
            return;
        }
        assert!(!self.values.is_empty(), "phase 2 without values");
        let first = self.instance;
        let values = std::mem::take(&mut self.values);
        self.settle_many(ctx, first, &values);
        if self.proposing_own {
            // Every consumed workload slot advances the cursor: proposed
            // values equal consumed slots minus dedup-suppressed ones
            // (without dedup the two counts coincide, reproducing the
            // pre-dedup accounting exactly).
            self.core.commit_own_round();
        }
        self.phase = Phase::Idle;
        for i in 0..self.procs.len() + self.observers.len() {
            let q = if i < self.procs.len() {
                self.procs[i]
            } else {
                self.observers[i - self.procs.len()]
            };
            if q == self.me {
                continue;
            }
            if values.len() == 1 {
                ctx.send(
                    q,
                    Msg::Decided {
                        instance: Instance(first),
                        value: values[0],
                    },
                );
            } else {
                ctx.send(
                    q,
                    Msg::DecidedMany {
                        first: Instance(first),
                        values: values.clone(),
                    },
                );
            }
        }
        // Steady state: next instance immediately.
        self.drive(ctx);
    }

    fn settle(&mut self, ctx: &mut Context<'_, Msg>, instance: u64, v: Value) {
        if self.core.settle(ctx.now(), instance, v) {
            ctx.obs_mark(v.0, crate::spans::STAGE_DECIDE, instance);
            ctx.mark_decided();
        }
    }

    /// Applies a contiguous decided run `first .. first + values.len()` in
    /// one pass (one log resize, one decided-prefix walk and one decision
    /// mark for the whole batch — see [`LogCore::settle_many`]). Slots
    /// already decided (a raced `Decided` from another path) are skipped,
    /// exactly as per-entry [`SmrNode::settle`] would.
    fn settle_many(&mut self, ctx: &mut Context<'_, Msg>, first: u64, values: &[Value]) {
        if self.core.settle_many(ctx.now(), first, values) {
            for (j, v) in values.iter().enumerate() {
                ctx.obs_mark(v.0, crate::spans::STAGE_DECIDE, first + j as u64);
            }
            ctx.mark_decided();
        }
    }
}

impl Actor<Msg> for SmrNode {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                self.drive(ctx);
                ctx.set_timer(self.retry_every, RETRY_TAG);
            }
            EventKind::Timer { tag: RETRY_TAG, .. } => {
                if self.is_leader && self.phase == Phase::Idle {
                    self.drive(ctx);
                }
                ctx.set_timer(self.retry_every, RETRY_TAG);
            }
            EventKind::Timer { .. } => {}
            EventKind::LeaderChange { leader } => {
                let was = self.is_leader;
                self.is_leader = leader == self.me;
                if self.is_leader && !was {
                    self.holds_permission = false; // must re-acquire
                    self.phase = Phase::Idle;
                    self.drive(ctx);
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                let Some(c) = self.client.on_wire(ctx, from, wire) else {
                    return;
                };
                let Some(op_ix) = self.op_map.iter().position(|&(op, _)| op == c.op) else {
                    return;
                };
                let (_, (attempt, mem, step)) = self.op_map.swap_remove(op_ix);
                if attempt != self.attempt || self.phase == Phase::Idle {
                    return;
                }
                let Some((_, iter)) = self.iters.iter_mut().find(|(m, _)| *m == mem) else {
                    return;
                };
                match (step, c.resp) {
                    (StepKind::Perm, _) => {}
                    (StepKind::Write1, MemResponse::Ack) => iter.write1 = Some(true),
                    (StepKind::Write1, _) => iter.write1 = Some(false),
                    (StepKind::Scan, MemResponse::Range(rows)) => {
                        // Reuse a pooled row buffer: takeover scans arrive
                        // once per memory per attempt and their capacity
                        // recurs, so the pool makes them allocation-free
                        // once warm.
                        let mut slots = self.spare_slots.pop().unwrap_or_default();
                        slots.extend(rows.into_iter().filter_map(|(reg, v)| match v {
                            RegVal::Slot(s) => Some(ScannedSlot {
                                instance: reg.a,
                                slot: s,
                            }),
                            _ => None,
                        }));
                        iter.slots = Some(slots);
                    }
                    (StepKind::Scan, _) => {
                        iter.slots = Some(self.spare_slots.pop().unwrap_or_default())
                    }
                    (StepKind::Write2, MemResponse::Ack) => iter.write2 = Some(true),
                    (StepKind::Write2, _) => iter.write2 = Some(false),
                }
                match self.phase {
                    Phase::One => self.phase1_step(ctx),
                    Phase::Two => self.phase2_step(ctx),
                    Phase::Idle => {}
                }
            }
            EventKind::Msg {
                msg: Msg::Decided { instance, value },
                ..
            } => {
                self.settle(ctx, instance.0, value);
                if self.is_leader && self.phase == Phase::Idle {
                    self.drive(ctx);
                }
            }
            EventKind::Msg {
                msg: Msg::DecidedMany { first, values },
                ..
            } => {
                self.settle_many(ctx, first.0, &values);
                if self.is_leader && self.phase == Phase::Idle {
                    self.drive(ctx);
                }
            }
            EventKind::Msg {
                msg: Msg::InstallSnapshot { seen, .. },
                ..
            } => {
                // A key-range migration's snapshot (this node is in the
                // destination group): prime session dedup with the ids the
                // source group already committed for the sealed range.
                self.core.install_snapshot(seen);
            }
            EventKind::Msg {
                msg: Msg::Submit { mut cmds },
                ..
            } => {
                // Routed client commands (sharded service): append to the
                // proposal workload and, if we lead and are idle, propose
                // immediately.
                self.core.submit(&mut cmds);
                if self.is_leader && self.phase == Phase::Idle {
                    self.drive(ctx);
                }
            }
            EventKind::Msg { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protected::memory_actor;
    use simnet::Simulation;

    fn build(
        n: u32,
        m: u32,
        seed: u64,
        cmds_per_node: usize,
    ) -> (Simulation<Msg>, Vec<Pid>, Vec<ActorId>) {
        build_batched(n, m, seed, cmds_per_node, 1)
    }

    fn build_batched(
        n: u32,
        m: u32,
        seed: u64,
        cmds_per_node: usize,
        batch: usize,
    ) -> (Simulation<Msg>, Vec<Pid>, Vec<ActorId>) {
        let mut sim = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        for i in 0..n {
            let workload: Vec<Value> = (0..cmds_per_node)
                .map(|c| Value(1000 * (i as u64 + 1) + c as u64))
                .collect();
            sim.add(
                SmrNode::new(
                    ActorId(i),
                    procs.clone(),
                    mems.clone(),
                    ActorId(0),
                    workload,
                    (m as usize - 1) / 2,
                    Duration::from_delays(25),
                )
                .with_batch(batch),
            );
        }
        for _ in 0..m {
            sim.add(memory_actor(ActorId(0)));
        }
        (sim, procs, mems)
    }

    #[test]
    fn stable_leader_commits_at_two_delays_per_entry() {
        let (mut sim, procs, _) = build(3, 3, 1, 5);
        sim.run_until(Time::from_delays(200), |s| {
            s.actor_as::<SmrNode>(procs[0]).unwrap().log_len() >= 5
        });
        let leader = sim.actor_as::<SmrNode>(procs[0]).unwrap();
        assert_eq!(leader.log_len(), 5);
        // Entry i decided at 2·(i+1) delays: one replicated write each.
        for (i, (_, t)) in leader.decided_at().iter().enumerate() {
            assert_eq!(t.as_delays(), 2.0 * (i as f64 + 1.0), "entry {i}");
        }
        // All of the leader's own commands, in order.
        assert_eq!(
            leader.log(),
            vec![
                Value(1000),
                Value(1001),
                Value(1002),
                Value(1003),
                Value(1004)
            ]
        );
    }

    #[test]
    fn batched_leader_amortizes_one_write_over_k_entries() {
        let (mut sim, procs, _) = build_batched(3, 3, 1, 8, 4);
        sim.run_until(Time::from_delays(200), |s| {
            s.actor_as::<SmrNode>(procs[0]).unwrap().log_len() >= 8
        });
        let leader = sim.actor_as::<SmrNode>(procs[0]).unwrap();
        assert_eq!(leader.log_len(), 8);
        // Two batched rounds of 4: entries 0..4 decide at 2 delays,
        // entries 4..8 at 4 — still one round trip per *write*, now
        // amortized over 4 entries each.
        for (i, (_, t)) in leader.decided_at().iter().enumerate() {
            let round = (i / 4 + 1) as f64;
            assert_eq!(t.as_delays(), 2.0 * round, "entry {i}");
        }
        // Same committed values and order as the unbatched protocol.
        let expected: Vec<Value> = (0..8).map(|c| Value(1000 + c)).collect();
        assert_eq!(leader.log(), expected);
        // 2 batched write rounds × 3 memories, instead of 8 × 3.
        assert_eq!(sim.metrics().mem_writes, 6);
    }

    #[test]
    fn batched_followers_learn_the_same_log() {
        let (mut sim, procs, _) = build_batched(3, 3, 2, 10, 3);
        sim.run_until(Time::from_delays(300), |s| {
            procs
                .iter()
                .all(|&p| s.actor_as::<SmrNode>(p).unwrap().log_len() >= 10)
        });
        let logs: Vec<Vec<Value>> = procs
            .iter()
            .map(|&p| sim.actor_as::<SmrNode>(p).unwrap().log())
            .collect();
        assert_eq!(logs[0].len(), 10);
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[1], logs[2]);
    }

    #[test]
    fn batched_leader_crash_recovery_preserves_log() {
        let (mut sim, procs, _) = build_batched(3, 3, 3, 12, 4);
        sim.crash_at(ActorId(0), Time::from_delays(3)); // one batch in
        sim.announce_leader(Time::from_delays(20), &procs, ActorId(1));
        sim.run_until(Time::from_delays(2000), |s| {
            s.actor_as::<SmrNode>(procs[1]).unwrap().log_len() >= 10
        });
        let l1 = sim.actor_as::<SmrNode>(procs[1]).unwrap().log();
        let l2 = sim.actor_as::<SmrNode>(procs[2]).unwrap().log();
        assert!(l1.len() >= 10, "new leader made progress: {l1:?}");
        let common = l1.len().min(l2.len());
        assert_eq!(l1[..common], l2[..common]);
        // The crashed leader's first batch survived the takeover scan.
        assert_eq!(l1[0], Value(1000));
    }

    #[test]
    fn takeover_recommits_consecutive_recovered_entries_in_one_round() {
        // The leader's first batch lands on the memories but the leader
        // crashes before learning; the successor's takeover scan recovers
        // all four entries and re-commits them as ONE scatter-gather round.
        let (mut sim, procs, _) = build_batched(3, 3, 4, 4, 4);
        sim.crash_at(ActorId(0), Time::from_delays(2));
        sim.announce_leader(Time::from_delays(20), &procs, ActorId(1));
        sim.run_until(Time::from_delays(2000), |s| {
            s.actor_as::<SmrNode>(procs[1]).unwrap().log_len() >= 8
        });
        let l1 = sim.actor_as::<SmrNode>(procs[1]).unwrap();
        let log = l1.log();
        assert_eq!(
            &log[..4],
            &[Value(1000), Value(1001), Value(1002), Value(1003)],
            "crashed leader's batch survived"
        );
        let at = |inst: u64| {
            l1.decided_at()
                .iter()
                .find(|&&(i, _)| i == inst)
                .expect("instance decided")
                .1
        };
        // A single decision timestamp covers instances 0..4 on the new
        // leader: the recovery was batched, not one instance at a time.
        for i in 1..4 {
            assert_eq!(at(i), at(0), "instance {i} recovered in a later round");
        }
        // The successor's own four commands follow in the next rounds.
        assert_eq!(
            &log[4..8],
            &(0..4).map(|c| Value(2000 + c)).collect::<Vec<_>>()[..]
        );
    }

    #[test]
    fn submitted_commands_are_proposed_and_batched() {
        // Nodes start with empty workloads; a scripted Submit supplies the
        // leader's commands at run time (the sharded router's path).
        let (mut sim, procs, _) = build_batched(3, 3, 1, 0, 4);
        sim.schedule(
            Time::from_delays(5),
            procs[0],
            EventKind::Msg {
                from: ActorId(99),
                msg: Msg::Submit {
                    cmds: vec![Value(7), Value(8), Value(9)],
                },
            },
        );
        sim.run_until(Time::from_delays(100), |s| {
            s.actor_as::<SmrNode>(procs[0]).unwrap().log_len() >= 3
        });
        let leader = sim.actor_as::<SmrNode>(procs[0]).unwrap();
        assert_eq!(leader.log(), vec![Value(7), Value(8), Value(9)]);
        // All three commands fit one batch: one shared decision timestamp.
        assert_eq!(leader.decided_at().len(), 3);
        let t0 = leader.decided_at()[0].1;
        assert!(leader.decided_at().iter().all(|&(_, t)| t == t0));
    }

    /// Records decision notifications, standing in for the sharded router.
    struct Observer {
        decided: Vec<(u64, Vec<Value>)>,
    }
    impl simnet::Actor<Msg> for Observer {
        fn on_event(&mut self, _ctx: &mut simnet::Context<'_, Msg>, ev: EventKind<Msg>) {
            match ev {
                EventKind::Msg {
                    msg: Msg::Decided { instance, value },
                    ..
                } => self.decided.push((instance.0, vec![value])),
                EventKind::Msg {
                    msg: Msg::DecidedMany { first, values },
                    ..
                } => self.decided.push((first.0, values)),
                _ => {}
            }
        }
    }

    #[test]
    fn observers_receive_decision_notifications() {
        let n = 3u32;
        let m = 3u32;
        let mut sim = Simulation::new(9);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        let observer_id = ActorId(n + m);
        for i in 0..n {
            let workload: Vec<Value> = (0..6).map(|c| Value(1000 * (i as u64 + 1) + c)).collect();
            sim.add(
                SmrNode::new(
                    ActorId(i),
                    procs.clone(),
                    mems.clone(),
                    ActorId(0),
                    workload,
                    1,
                    Duration::from_delays(25),
                )
                .with_batch(3)
                .with_observer(observer_id),
            );
        }
        for _ in 0..m {
            sim.add(memory_actor(ActorId(0)));
        }
        let obs = sim.add(Observer {
            decided: Vec::new(),
        });
        assert_eq!(obs, observer_id);
        sim.run_until(Time::from_delays(200), |s| {
            s.actor_as::<Observer>(obs)
                .unwrap()
                .decided
                .iter()
                .map(|(_, vs)| vs.len())
                .sum::<usize>()
                >= 6
        });
        let observer = sim.actor_as::<Observer>(obs).unwrap();
        let seen: Vec<Value> = observer
            .decided
            .iter()
            .flat_map(|(_, vs)| vs.iter().copied())
            .collect();
        assert_eq!(seen, (0..6).map(|c| Value(1000 + c)).collect::<Vec<_>>());
    }

    #[test]
    fn followers_learn_the_same_log() {
        let (mut sim, procs, _) = build(3, 3, 2, 4);
        sim.run_until(Time::from_delays(300), |s| {
            procs
                .iter()
                .all(|&p| s.actor_as::<SmrNode>(p).unwrap().log_len() >= 4)
        });
        let logs: Vec<Vec<Value>> = procs
            .iter()
            .map(|&p| sim.actor_as::<SmrNode>(p).unwrap().log())
            .collect();
        assert_eq!(logs[0].len(), 4);
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[1], logs[2]);
    }

    #[test]
    fn leader_crash_preserves_log_prefix_and_new_leader_continues() {
        let (mut sim, procs, _) = build(3, 3, 3, 10);
        sim.crash_at(ActorId(0), Time::from_delays(7)); // ~3 entries in
        sim.announce_leader(Time::from_delays(20), &procs, ActorId(1));
        sim.run_until(Time::from_delays(2000), |s| {
            s.actor_as::<SmrNode>(procs[1]).unwrap().log_len() >= 8
        });
        let l1 = sim.actor_as::<SmrNode>(procs[1]).unwrap().log();
        let l2 = sim.actor_as::<SmrNode>(procs[2]).unwrap().log();
        // The new leader made progress past the crash point...
        assert!(l1.len() >= 8, "new leader made progress: {l1:?}");
        // ...logs agree on the shared prefix (the last entry may still be
        // in flight to the other follower)...
        let common = l1.len().min(l2.len());
        assert!(common + 1 >= l1.len().min(8));
        assert_eq!(l1[..common], l2[..common]);
        // ...and the old leader's committed entries survived the takeover.
        assert_eq!(l1[0], Value(1000));
    }

    #[test]
    fn competing_leaders_never_fork_the_log() {
        for seed in 0..10 {
            let (mut sim, procs, _) = build(3, 3, seed, 6);
            sim.announce_leader(Time::from_delays(4), &procs[1..2], ActorId(1));
            sim.announce_leader(Time::from_delays(9), &procs[..1], ActorId(0));
            sim.announce_leader(Time::from_delays(40), &procs, ActorId(1));
            sim.run_to_quiescence(Time::from_delays(4000));
            let logs: Vec<Vec<Value>> = procs
                .iter()
                .map(|&p| sim.actor_as::<SmrNode>(p).unwrap().log())
                .collect();
            for a in &logs {
                for b in &logs {
                    let common = a.len().min(b.len());
                    assert_eq!(a[..common], b[..common], "seed {seed}: fork {logs:?}");
                }
            }
        }
    }
}
