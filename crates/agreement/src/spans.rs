//! Command-lifecycle spans over the sharded service.
//!
//! Every client command of a sharded run traverses the same stages:
//! **submit** (the router stamps its latency clock), **route** (the
//! router sends it to a group leader in a `Submit` batch), **propose**
//! (the leader writes it to the memories — crash PMP's phase-2 write or
//! Byzantine mode's non-equivocating broadcast), **decide** (a replica
//! settles it into the log) and **confirm** (the router counts it
//! committed — immediately for crash groups, at the `f + 1` quorum for
//! Byzantine ones). Byzantine groups additionally mark **deliver** — the
//! leader's own broadcast coming back around (self-delivery, or the
//! fast path's write ack) — making the pipeline's overlap visible
//! between propose and decide; crash groups never emit it.
//!
//! The protocol actors emit one [`simnet::obs::EventBody::Mark`] per
//! stage transition through [`simnet::Context::obs_mark`] — span id =
//! the command's dense 1-based id, `data` = the routing group where the
//! router knows it. Marks are strictly read-only observations: with the
//! recorder disabled (the default) they cost one branch, and enabling
//! them never draws randomness or perturbs the schedule, so traced and
//! untraced runs are bit-identical.
//!
//! [`aggregate_spans`] reduces a run's merged event stream to per-group,
//! per-stage latency histograms ([`GroupSpanStats`]), surfaced by the
//! harness as [`crate::harness::ShardedRunReport::span_stats`]. The
//! histograms use fixed power-of-two buckets, so aggregation is
//! deterministic and replay/thread-count invariant like everything else
//! in a run report.

use simnet::obs::{Event, EventBody};

/// Stage code of a command's first submission (router, latency stamp).
pub const STAGE_SUBMIT: u8 = 0;
/// Stage code of a router → leader `Submit` send (first or re-route).
pub const STAGE_ROUTE: u8 = 1;
/// Stage code of the leader's replicated proposal (phase-2 write or
/// Byzantine broadcast).
pub const STAGE_PROPOSE: u8 = 2;
/// Stage code of a replica settling the command into its log.
pub const STAGE_DECIDE: u8 = 3;
/// Stage code of the router counting the command committed.
pub const STAGE_CONFIRM: u8 = 4;
/// Stage code of a Byzantine leader's broadcast coming back around:
/// self-delivery (read + copy + audit), or the fast path's write ack.
/// Sits between propose and decide in the lifecycle; crash groups never
/// emit it, so their histograms are untouched.
pub const STAGE_DELIVER: u8 = 5;

/// Number of distinct stage codes.
const STAGES: usize = 6;

/// Log2 bucket count: bucket `b` holds durations in
/// `[2^(b-1), 2^b)` ticks (bucket 0 holds 0-tick durations); the last
/// bucket absorbs everything larger.
const BUCKETS: usize = 32;

/// A deterministic fixed-bucket latency histogram (power-of-two bucket
/// bounds, see [`LatencyHistogram::record`]). Identical inputs produce
/// identical histograms regardless of arrival order, so span statistics
/// stay replay- and thread-count-invariant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Bucket `b` counts durations in `[2^(b-1), 2^b)` ticks.
    buckets: [u64; BUCKETS],
    /// Total durations recorded.
    count: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// The bucket index of a duration.
    fn bucket_of(ticks: u64) -> usize {
        (u64::BITS - ticks.leading_zeros()).min(BUCKETS as u32 - 1) as usize
    }

    /// The representative (upper-bound) duration of bucket `b`, in ticks.
    fn bucket_bound(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << b.min(63)
        }
    }

    /// Records one duration.
    pub fn record(&mut self, ticks: u64) {
        self.buckets[Self::bucket_of(ticks)] += 1;
        self.count += 1;
    }

    /// Total durations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `p`-th percentile (0.0 ..= 100.0) by nearest rank over the
    /// bucket upper bounds (0 when empty). Bucketed, so an approximation
    /// within a factor of two — deterministic and cheap, which is what a
    /// run report needs.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_bound(b);
            }
        }
        Self::bucket_bound(BUCKETS - 1)
    }

    /// Median duration, in ticks (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 99th-percentile duration, in ticks (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

/// One stage-transition latency distribution of a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageLatency {
    /// Transition name: `"route"`, `"propose"`, `"deliver"` (Byzantine
    /// broadcast self-delivery), `"decide"`, `"confirm"` or `"total"`
    /// (submit → confirm).
    pub stage: &'static str,
    /// Latency distribution of the transition, in ticks.
    pub hist: LatencyHistogram,
}

/// Per-group command-lifecycle statistics of one sharded run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSpanStats {
    /// The group these commands were confirmed in.
    pub group: usize,
    /// Commands attributed to this group (with at least a submit and a
    /// confirm mark).
    pub spans: u64,
    /// One entry per stage transition, fixed order:
    /// route, propose, deliver, decide, confirm, total.
    pub stages: Vec<StageLatency>,
}

impl GroupSpanStats {
    fn new(group: usize) -> GroupSpanStats {
        GroupSpanStats {
            group,
            spans: 0,
            stages: TRANSITIONS
                .iter()
                .map(|&(_, _, stage)| StageLatency {
                    stage,
                    hist: LatencyHistogram::new(),
                })
                .collect(),
        }
    }

    /// The named transition's histogram, if present.
    pub fn stage(&self, name: &str) -> Option<&LatencyHistogram> {
        self.stages
            .iter()
            .find(|s| s.stage == name)
            .map(|s| &s.hist)
    }
}

/// The stage transitions a span report carries: `(from, to, name)`.
/// `deliver` (propose → broadcast self-delivery) only populates for
/// Byzantine groups; `decide` keeps its propose → decide endpoints so
/// crash-group histograms are identical with or without the stage.
const TRANSITIONS: [(u8, u8, &str); 6] = [
    (STAGE_SUBMIT, STAGE_ROUTE, "route"),
    (STAGE_ROUTE, STAGE_PROPOSE, "propose"),
    (STAGE_PROPOSE, STAGE_DELIVER, "deliver"),
    (STAGE_PROPOSE, STAGE_DECIDE, "decide"),
    (STAGE_DECIDE, STAGE_CONFIRM, "confirm"),
    (STAGE_SUBMIT, STAGE_CONFIRM, "total"),
];

/// Reduces a run's merged event stream to per-group span statistics.
///
/// For every client command id in `1 ..= total_cmds`, the *first* mark
/// per stage wins (re-routes and follower re-settles only ever move a
/// stage later, and the merged stream is time-ordered). A command is
/// attributed to the group its confirm mark carries (falling back to its
/// submit mark's group), so migrated commands land at their destination.
/// Commands missing a transition endpoint simply don't contribute to
/// that transition's histogram.
pub fn aggregate_spans(events: &[Event], groups: usize, total_cmds: usize) -> Vec<GroupSpanStats> {
    // first_mark[id][stage] = (ticks, group) of the id's earliest mark.
    let mut first_mark: Vec<[Option<(u64, u64)>; STAGES]> = vec![[None; STAGES]; total_cmds + 1];
    for ev in events {
        let EventBody::Mark { span, stage, data } = ev.body else {
            continue;
        };
        let (id, stage) = (span as usize, stage as usize);
        if id == 0 || id > total_cmds || stage >= STAGES {
            continue;
        }
        if first_mark[id][stage].is_none() {
            first_mark[id][stage] = Some((ev.at.0, data));
        }
    }
    let mut stats: Vec<GroupSpanStats> = (0..groups).map(GroupSpanStats::new).collect();
    for marks in &first_mark[1..] {
        let confirm = marks[STAGE_CONFIRM as usize];
        let submit = marks[STAGE_SUBMIT as usize];
        let Some((_, group)) = confirm.or(submit) else {
            continue;
        };
        let g = group as usize;
        if g >= groups {
            continue;
        }
        if submit.is_some() && confirm.is_some() {
            stats[g].spans += 1;
        }
        for (t, &(from, to, _)) in TRANSITIONS.iter().enumerate() {
            let (Some((at_from, _)), Some((at_to, _))) = (marks[from as usize], marks[to as usize])
            else {
                continue;
            };
            if at_to >= at_from {
                stats[g].stages[t].hist.record(at_to - at_from);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ActorId, Time};

    fn mark(at: u64, span: u64, stage: u8, data: u64) -> Event {
        Event {
            at: Time(at),
            partition: 0,
            seq: at,
            actor: ActorId(99),
            body: EventBody::Mark { span, stage, data },
        }
    }

    #[test]
    fn histogram_percentiles_are_bucketed() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket [64, 128) → bound 128
        }
        h.record(10_000); // bucket [8192, 16384) → bound 16384
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 128);
        assert_eq!(h.p99(), 128);
        assert_eq!(h.percentile(100.0), 16_384);
        assert_eq!(LatencyHistogram::new().p50(), 0);
    }

    #[test]
    fn zero_ticks_land_in_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.p50(), 0);
    }

    #[test]
    fn spans_aggregate_by_confirm_group_with_first_mark_wins() {
        let events = vec![
            mark(10, 1, STAGE_SUBMIT, 0),
            mark(10, 1, STAGE_ROUTE, 0),
            mark(20, 1, STAGE_PROPOSE, 0),
            mark(30, 1, STAGE_DECIDE, 0),
            mark(35, 1, STAGE_DECIDE, 0),  // follower re-settle: ignored
            mark(40, 1, STAGE_CONFIRM, 1), // confirmed at group 1 (migrated)
            // Command 2 never confirms: contributes route only.
            mark(12, 2, STAGE_SUBMIT, 0),
            mark(14, 2, STAGE_ROUTE, 0),
            // Out-of-range ids are ignored.
            mark(5, 99, STAGE_SUBMIT, 0),
        ];
        let stats = aggregate_spans(&events, 2, 2);
        assert_eq!(stats.len(), 2);
        // Command 1 landed in group 1 (its confirm group).
        assert_eq!(stats[1].spans, 1);
        assert_eq!(stats[1].stage("total").unwrap().count(), 1);
        assert_eq!(stats[1].stage("decide").unwrap().count(), 1);
        // Decide took 10 ticks → bucket bound 16.
        assert_eq!(stats[1].stage("decide").unwrap().p50(), 16);
        // Command 2 stayed in group 0 and only routed.
        assert_eq!(stats[0].spans, 0);
        assert_eq!(stats[0].stage("route").unwrap().count(), 1);
        assert_eq!(stats[0].stage("total").unwrap().count(), 0);
    }

    #[test]
    fn aggregation_is_input_order_invariant_for_distinct_times() {
        let a = vec![mark(10, 1, STAGE_SUBMIT, 0), mark(20, 1, STAGE_CONFIRM, 0)];
        let b: Vec<Event> = a.iter().rev().cloned().collect();
        // The merged stream is always time-ordered in practice; even
        // reversed, first-mark-wins keys on the recorded times here
        // because the stages differ.
        assert_eq!(aggregate_spans(&a, 1, 1), aggregate_spans(&b, 1, 1));
    }
}
