//! Trusted message passing — T-send / T-receive (Algorithm 3, after
//! Clement et al. \[20\]).
//!
//! The Robust Backup transformation needs channels over which a Byzantine
//! process is *confined to crash behaviour*: it can stay silent, but it
//! cannot equivocate or send messages the protocol would never send. Two
//! mechanisms combine to give this:
//!
//! 1. **Non-equivocating broadcast** carries every message, so all correct
//!    processes agree on the sequence of messages each sender emitted
//!    (`crate::nebcast`).
//! 2. **Signed histories**: each message carries its sender's full history
//!    (sends and receives). Receivers verify that (a) every claimed receive
//!    bears the original sender's signature — unforgeable, so receives
//!    cannot be invented; (b) claimed past sends match what the sender
//!    *actually* broadcast (nebcast delivers in order, so the receiver has
//!    already seen them all); and (c) the sent sequence is **protocol
//!    conformant** — the [`PaxosChecker`] re-derives, from the history, that
//!    each send was one the crash-tolerant protocol `A` could have made
//!    (promise only after prepare, accept only with a promise quorum and
//!    the forced value rule, one accept per ballot, ...).
//!
//! A message failing any check is dropped; since every subsequent message
//! embeds the same history prefix, a process that cheats once is ignored
//! forever — i.e., it has crashed as far as correct processes are
//! concerned. This is the paper's reduction of Byzantine failures to crash
//! failures with only `n ≥ 2·f_P + 1`.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

use rdma_sim::MemoryClient;
use sigsim::{SigVerifier, Signature};
use simnet::Context;

use crate::nebcast::NebEngine;
use crate::paxos::{Dest, PaxosMsg};
use crate::types::{sigtags, Msg, Pid, RegVal, UnanimityProof, Value};

/// Evidence attached to a Preferential Paxos set-up value. Receivers
/// *compute* the Definition-3 priority class from the evidence — a
/// Byzantine sender cannot claim a class it cannot prove.
#[derive(Clone, PartialEq, Eq, Debug, Hash, Default)]
pub struct SetupEvidence {
    /// A unanimity proof (class T if it verifies).
    pub proof: Option<UnanimityProof>,
    /// The Cheap Quorum leader's signature over the value (class M if it
    /// verifies and there is no proof).
    pub leader_sig: Option<sigsim::Signature>,
}

/// Application payloads carried over trusted channels: the Preferential
/// Paxos set-up exchange and the Robust Backup Paxos traffic.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum RbPayload {
    /// Preferential Paxos set-up (Algorithm 8): the sender's input plus
    /// priority evidence.
    Setup {
        /// The input value.
        value: Value,
        /// Evidence determining the priority class.
        evidence: SetupEvidence,
    },
    /// Robust Backup Paxos traffic.
    Paxos(PaxosMsg),
    /// A Byzantine-mode replicated-log batch
    /// ([`crate::smr::ByzSmrNode`]): the leader of epoch `epoch` proposes
    /// `values[j]` for instance `first + j`. Carried over plain
    /// non-equivocating broadcast (not the trusted-history channels), so
    /// the Paxos conformance checker simply rejects it.
    LogEntries {
        /// First instance of the contiguous proposed range.
        first: u64,
        /// The proposing leader's epoch (its takeover count).
        epoch: u64,
        /// The proposed values, in instance order.
        values: Vec<Value>,
    },
}

/// One entry of a process's trusted history.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum HistEntry {
    /// "I broadcast (k, dest, payload)".
    Sent {
        /// Sequence number of the broadcast.
        k: u64,
        /// Addressee tag.
        dest: Dest,
        /// The payload.
        payload: RbPayload,
    },
    /// "I received (k, dest, payload) from `from`", with the original
    /// broadcaster's signature as unforgeable evidence.
    Recv {
        /// The original broadcaster.
        from: Pid,
        /// Its sequence number.
        k: u64,
        /// Addressee tag.
        dest: Dest,
        /// The payload.
        payload: RbPayload,
        /// Digest of the broadcaster's attached history (part of the signed
        /// view).
        hd: u64,
        /// The broadcaster's signature over its [`TWire::sign_view`].
        sig: Signature,
    },
}

/// What travels inside a non-equivocating broadcast: the addressed payload
/// plus the sender's full history at send time.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct TWire {
    /// Addressee tag (everyone sees every message; non-addressees record
    /// but do not act).
    pub dest: Dest,
    /// The payload.
    pub payload: RbPayload,
    /// The sender's history before this send.
    pub history: Vec<HistEntry>,
}

/// Digest of a history (keeps signed views O(1) instead of nesting whole
/// histories recursively, which Clement et al.'s presentation glosses over).
pub fn hist_digest(history: &[HistEntry]) -> u64 {
    let mut h = DefaultHasher::new();
    history.hash(&mut h);
    h.finish()
}

/// The signed view of a broadcast: what the broadcaster's signature covers.
#[derive(Hash)]
pub struct SignView<'a> {
    tag: u64,
    k: u64,
    dest: &'a Dest,
    payload: &'a RbPayload,
    hd: u64,
}

impl TWire {
    /// The view signed by the broadcaster for sequence number `k`.
    pub fn sign_view(&self, k: u64) -> SignView<'_> {
        SignView {
            tag: sigtags::NEB,
            k,
            dest: &self.dest,
            payload: &self.payload,
            hd: hist_digest(&self.history),
        }
    }
}

/// A validated, addressed-to-us delivery out of the trusted layer.
#[derive(Clone, Debug)]
pub struct TDelivery {
    /// The (validated) sender.
    pub from: Pid,
    /// The payload.
    pub payload: RbPayload,
}

/// Re-derives protocol conformance of a sender's history (check (c) above).
#[derive(Clone, Debug)]
pub struct PaxosChecker {
    /// All processes (quorum arithmetic).
    pub procs: Vec<Pid>,
    /// Owner of the phase-1-free initial ballot, if any.
    pub initial_leader: Option<Pid>,
}

#[derive(Default)]
struct CheckState {
    any_sent: bool,
    setup_sent: bool,
    last_prepare_round: Option<u64>,
    promised: Option<crate::types::Ballot>,
    accepted: Option<(crate::types::Ballot, Value)>,
    accepts_sent: BTreeMap<crate::types::Ballot, Value>,
    prepares_recv: BTreeSet<crate::types::Ballot>,
    promises_recv:
        BTreeMap<crate::types::Ballot, BTreeMap<Pid, Option<(crate::types::Ballot, Value)>>>,
    accepts_recv: BTreeSet<(crate::types::Ballot, Value)>,
}

impl PaxosChecker {
    fn majority(&self) -> usize {
        self.procs.len() / 2 + 1
    }

    /// Validates that `history` followed by a send of `next` is a legal
    /// behaviour of the wrapped crash-tolerant protocol for `sender`.
    pub fn conforms(&self, sender: Pid, history: &[HistEntry], next: &RbPayload) -> bool {
        let mut st = CheckState::default();
        for entry in history {
            match entry {
                HistEntry::Sent { payload, .. } => {
                    if !self.check_send(sender, &mut st, payload) {
                        return false;
                    }
                }
                HistEntry::Recv { from, payload, .. } => self.apply_recv(&mut st, *from, payload),
            }
        }
        self.check_send(sender, &mut st, next)
    }

    fn apply_recv(&self, st: &mut CheckState, from: Pid, payload: &RbPayload) {
        let RbPayload::Paxos(m) = payload else { return };
        match *m {
            PaxosMsg::Prepare { b } if b.pid == from => {
                st.prepares_recv.insert(b);
            }
            PaxosMsg::Promise { b, accepted } => {
                st.promises_recv
                    .entry(b)
                    .or_default()
                    .insert(from, accepted);
            }
            PaxosMsg::Accept { b, v } if b.pid == from => {
                st.accepts_recv.insert((b, v));
            }
            _ => {}
        }
    }

    fn check_send(&self, sender: Pid, st: &mut CheckState, payload: &RbPayload) -> bool {
        match payload {
            RbPayload::Setup { .. } => {
                // The set-up exchange is each process's first and only
                // non-Paxos send.
                if st.any_sent || st.setup_sent {
                    return false;
                }
                st.setup_sent = true;
                st.any_sent = true;
                true
            }
            // Log batches never ride the trusted-history channels; a
            // process claiming one in a Paxos history is non-conformant.
            RbPayload::LogEntries { .. } => false,
            RbPayload::Paxos(m) => {
                st.any_sent = true;
                match *m {
                    PaxosMsg::Prepare { b } => {
                        if b.pid != sender || b.round == 0 {
                            return false;
                        }
                        if st.last_prepare_round.is_some_and(|r| b.round <= r) {
                            return false;
                        }
                        st.last_prepare_round = Some(b.round);
                        true
                    }
                    PaxosMsg::Promise { b, accepted } => {
                        if !st.prepares_recv.contains(&b) {
                            return false;
                        }
                        if st.promised.is_some_and(|p| p > b) {
                            return false;
                        }
                        if accepted != st.accepted {
                            return false;
                        }
                        st.promised = Some(b);
                        true
                    }
                    PaxosMsg::Accept { b, v } => {
                        if b.pid != sender {
                            return false;
                        }
                        // One value per ballot, ever (anti-equivocation).
                        if let Some(prev) = st.accepts_sent.get(&b) {
                            return *prev == v;
                        }
                        if b.round == 0 {
                            // The phase-1-free initial ballot: value free.
                            if self.initial_leader != Some(sender) {
                                return false;
                            }
                        } else {
                            let Some(promises) = st.promises_recv.get(&b) else {
                                return false;
                            };
                            if promises.len() < self.majority() {
                                return false;
                            }
                            let forced = promises
                                .values()
                                .flatten()
                                .max_by_key(|(ab, _)| *ab)
                                .map(|(_, fv)| *fv);
                            if let Some(fv) = forced {
                                if fv != v {
                                    return false;
                                }
                            }
                        }
                        st.accepts_sent.insert(b, v);
                        true
                    }
                    PaxosMsg::Accepted { b, v } => {
                        if !st.accepts_recv.contains(&(b, v)) {
                            return false;
                        }
                        if st.promised.is_some_and(|p| p > b) {
                            return false;
                        }
                        st.promised = Some(b);
                        st.accepted = Some((b, v));
                        true
                    }
                    // Nack is advisory; Decide is ignored by untrusting
                    // engines. Neither can corrupt state.
                    PaxosMsg::Nack { .. } | PaxosMsg::Decide { .. } => true,
                }
            }
        }
    }
}

/// The trusted endpoint of one process: T-send / T-receive over
/// non-equivocating broadcast, with history validation.
pub struct TrustedPeer {
    me: Pid,
    verifier: SigVerifier,
    checker: PaxosChecker,
    neb: NebEngine,
    history: Vec<HistEntry>,
    /// What each sender actually broadcast, by sequence number (used to
    /// cross-check claimed histories; filled in delivery order).
    got: BTreeMap<(Pid, u64), (Dest, RbPayload)>,
    /// Senders that failed validation (ignored thereafter).
    distrusted: BTreeSet<Pid>,
}

impl std::fmt::Debug for TrustedPeer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrustedPeer")
            .field("me", &self.me)
            .field("history_len", &self.history.len())
            .field("distrusted", &self.distrusted)
            .finish()
    }
}

impl TrustedPeer {
    /// Creates the endpoint.
    pub fn new(me: Pid, verifier: SigVerifier, checker: PaxosChecker, neb: NebEngine) -> Self {
        TrustedPeer {
            me,
            verifier,
            checker,
            neb,
            history: Vec::new(),
            got: BTreeMap::new(),
            distrusted: BTreeSet::new(),
        }
    }

    /// T-send: broadcast `(dest, payload)` with the full history attached.
    pub fn t_send(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        dest: Dest,
        payload: RbPayload,
    ) {
        let wire = TWire {
            dest,
            payload: payload.clone(),
            history: self.history.clone(),
        };
        let k = self.neb.broadcast(ctx, client, wire);
        self.history.push(HistEntry::Sent { k, dest, payload });
    }

    /// Drives delivery attempts (call on a poll timer).
    pub fn poll(&mut self, ctx: &mut Context<'_, Msg>, client: &mut MemoryClient<RegVal, Msg>) {
        self.neb.poll(ctx, client);
    }

    /// Routes a memory completion into the broadcast layer. Returns true if
    /// it was consumed.
    pub fn on_completion(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        client: &mut MemoryClient<RegVal, Msg>,
        completion: rdma_sim::Completion<RegVal>,
    ) -> bool {
        self.neb.on_completion(ctx, client, completion)
    }

    /// T-receive: validates and returns newly delivered messages addressed
    /// to this process. Also appends matching `Recv` entries to the local
    /// history, in delivery order.
    pub fn drain(&mut self) -> Vec<TDelivery> {
        let mut out = Vec::new();
        for d in self.neb.take_deliveries() {
            let from = d.from;
            // Record what the sender actually broadcast regardless of
            // validity: later history cross-checks need it.
            self.got
                .insert((from, d.k), (d.wire.dest, d.wire.payload.clone()));
            if self.distrusted.contains(&from) {
                continue;
            }
            if !self.validate(from, d.k, &d.wire) {
                self.distrusted.insert(from);
                continue;
            }
            let addressed_to_me = match d.wire.dest {
                Dest::All => true,
                Dest::One(p) => p == self.me,
            };
            // Everyone records every validated broadcast it saw (the
            // history must justify counting quorums of broadcast votes).
            self.history.push(HistEntry::Recv {
                from,
                k: d.k,
                dest: d.wire.dest,
                payload: d.wire.payload.clone(),
                hd: hist_digest(&d.wire.history),
                sig: d.sig,
            });
            if addressed_to_me {
                out.push(TDelivery {
                    from,
                    payload: d.wire.payload,
                });
            }
        }
        out
    }

    /// Validation steps (a), (b), (c) from the module docs.
    fn validate(&self, from: Pid, k: u64, wire: &TWire) -> bool {
        // (a) Claimed receives carry genuine signatures.
        for entry in &wire.history {
            if let HistEntry::Recv {
                from: f,
                k,
                dest,
                payload,
                hd,
                sig,
            } = entry
            {
                // Rebuild the signed view with the claimed history digest.
                let v = SignView {
                    tag: sigtags::NEB,
                    k: *k,
                    dest,
                    payload,
                    hd: *hd,
                };
                if !self.verifier.valid(*f, &v, sig) {
                    return false;
                }
            }
        }
        // (b) Claimed sends are exactly the sender's actual broadcasts
        // 1..k-1, in order.
        let mut expect_k = 1;
        for entry in &wire.history {
            if let HistEntry::Sent {
                k: sk,
                dest,
                payload,
            } = entry
            {
                if *sk != expect_k {
                    return false;
                }
                match self.got.get(&(from, *sk)) {
                    Some((gd, gp)) if gd == dest && gp == payload => {}
                    _ => return false,
                }
                expect_k += 1;
            }
        }
        if expect_k != k {
            return false; // skipped or invented sends
        }
        // (c) Protocol conformance of the send sequence, ending with this
        // message.
        self.checker.conforms(from, &wire.history, &wire.payload)
    }

    /// Number of distrusted (caught-cheating) senders.
    pub fn distrusted(&self) -> &BTreeSet<Pid> {
        &self.distrusted
    }

    /// The local history length (diagnostic).
    pub fn history_len(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ballot;
    use simnet::ActorId;

    fn checker(n: u32) -> PaxosChecker {
        PaxosChecker {
            procs: (0..n).map(ActorId).collect(),
            initial_leader: Some(ActorId(0)),
        }
    }

    fn b(round: u64, pid: u32) -> Ballot {
        Ballot {
            round,
            pid: ActorId(pid),
        }
    }

    #[test]
    fn initial_leader_may_accept_freely() {
        let c = checker(3);
        let next = RbPayload::Paxos(PaxosMsg::Accept {
            b: b(0, 0),
            v: Value(7),
        });
        assert!(c.conforms(ActorId(0), &[], &next));
        // ...but nobody else may use round 0.
        assert!(!c.conforms(ActorId(1), &[], &next));
    }

    #[test]
    fn promise_requires_received_prepare() {
        let c = checker(3);
        let next = RbPayload::Paxos(PaxosMsg::Promise {
            b: b(1, 0),
            accepted: None,
        });
        assert!(!c.conforms(ActorId(1), &[], &next));
        let hist = [HistEntry::Recv {
            from: ActorId(0),
            k: 1,
            dest: Dest::All,
            payload: RbPayload::Paxos(PaxosMsg::Prepare { b: b(1, 0) }),
            hd: 0,
            sig: Signature::forged(ActorId(0), 0),
        }];
        assert!(c.conforms(ActorId(1), &hist, &next));
    }

    #[test]
    fn promise_must_report_true_accepted_state() {
        let c = checker(3);
        // Sender accepted (b0, v7) earlier, then promises b1 claiming None.
        let hist = [
            HistEntry::Recv {
                from: ActorId(0),
                k: 1,
                dest: Dest::All,
                payload: RbPayload::Paxos(PaxosMsg::Accept {
                    b: b(0, 0),
                    v: Value(7),
                }),
                hd: 0,
                sig: Signature::forged(ActorId(0), 0),
            },
            HistEntry::Sent {
                k: 1,
                dest: Dest::All,
                payload: RbPayload::Paxos(PaxosMsg::Accepted {
                    b: b(0, 0),
                    v: Value(7),
                }),
            },
            HistEntry::Recv {
                from: ActorId(2),
                k: 1,
                dest: Dest::All,
                payload: RbPayload::Paxos(PaxosMsg::Prepare { b: b(1, 2) }),
                hd: 0,
                sig: Signature::forged(ActorId(2), 0),
            },
        ];
        let lie = RbPayload::Paxos(PaxosMsg::Promise {
            b: b(1, 2),
            accepted: None,
        });
        assert!(!c.conforms(ActorId(1), &hist, &lie));
        let truth = RbPayload::Paxos(PaxosMsg::Promise {
            b: b(1, 2),
            accepted: Some((b(0, 0), Value(7))),
        });
        assert!(c.conforms(ActorId(1), &hist, &truth));
    }

    #[test]
    fn accept_requires_promise_quorum_and_forced_value() {
        let c = checker(3);
        let ballot = b(1, 1);
        let mk_promise = |from: u32, acc| HistEntry::Recv {
            from: ActorId(from),
            k: 1,
            dest: Dest::One(ActorId(1)),
            payload: RbPayload::Paxos(PaxosMsg::Promise {
                b: ballot,
                accepted: acc,
            }),
            hd: 0,
            sig: Signature::forged(ActorId(from), 0),
        };
        // No quorum: reject.
        let h1 = [mk_promise(0, None)];
        let acc = RbPayload::Paxos(PaxosMsg::Accept {
            b: ballot,
            v: Value(5),
        });
        assert!(!c.conforms(ActorId(1), &h1, &acc));
        // Quorum, no prior accepts: free choice allowed.
        let h2 = [mk_promise(0, None), mk_promise(2, None)];
        assert!(c.conforms(ActorId(1), &h2, &acc));
        // Quorum with a reported accepted value: forced.
        let h3 = [
            mk_promise(0, Some((b(0, 0), Value(9)))),
            mk_promise(2, None),
        ];
        assert!(!c.conforms(ActorId(1), &h3, &acc));
        let forced = RbPayload::Paxos(PaxosMsg::Accept {
            b: ballot,
            v: Value(9),
        });
        assert!(c.conforms(ActorId(1), &h3, &forced));
    }

    #[test]
    fn two_accepts_same_ballot_different_values_rejected() {
        let c = checker(3);
        let ballot = b(1, 1);
        let mk_promise = |from: u32| HistEntry::Recv {
            from: ActorId(from),
            k: 1,
            dest: Dest::One(ActorId(1)),
            payload: RbPayload::Paxos(PaxosMsg::Promise {
                b: ballot,
                accepted: None,
            }),
            hd: 0,
            sig: Signature::forged(ActorId(from), 0),
        };
        let hist = [
            mk_promise(0),
            mk_promise(2),
            HistEntry::Sent {
                k: 1,
                dest: Dest::All,
                payload: RbPayload::Paxos(PaxosMsg::Accept {
                    b: ballot,
                    v: Value(5),
                }),
            },
        ];
        let equivocation = RbPayload::Paxos(PaxosMsg::Accept {
            b: ballot,
            v: Value(6),
        });
        assert!(!c.conforms(ActorId(1), &hist, &equivocation));
        let repeat = RbPayload::Paxos(PaxosMsg::Accept {
            b: ballot,
            v: Value(5),
        });
        assert!(c.conforms(ActorId(1), &hist, &repeat));
    }

    #[test]
    fn accepted_requires_received_accept() {
        let c = checker(3);
        let fake = RbPayload::Paxos(PaxosMsg::Accepted {
            b: b(1, 0),
            v: Value(3),
        });
        assert!(!c.conforms(ActorId(1), &[], &fake));
    }

    #[test]
    fn promise_after_higher_promise_rejected() {
        let c = checker(3);
        let hist = [
            HistEntry::Recv {
                from: ActorId(2),
                k: 1,
                dest: Dest::All,
                payload: RbPayload::Paxos(PaxosMsg::Prepare { b: b(5, 2) }),
                hd: 0,
                sig: Signature::forged(ActorId(2), 0),
            },
            HistEntry::Recv {
                from: ActorId(0),
                k: 2,
                dest: Dest::All,
                payload: RbPayload::Paxos(PaxosMsg::Prepare { b: b(1, 0) }),
                hd: 0,
                sig: Signature::forged(ActorId(0), 0),
            },
            HistEntry::Sent {
                k: 1,
                dest: Dest::One(ActorId(2)),
                payload: RbPayload::Paxos(PaxosMsg::Promise {
                    b: b(5, 2),
                    accepted: None,
                }),
            },
        ];
        let backslide = RbPayload::Paxos(PaxosMsg::Promise {
            b: b(1, 0),
            accepted: None,
        });
        assert!(!c.conforms(ActorId(1), &hist, &backslide));
    }

    #[test]
    fn setup_only_first() {
        let c = checker(3);
        let setup = RbPayload::Setup {
            value: Value(1),
            evidence: SetupEvidence::default(),
        };
        assert!(c.conforms(ActorId(1), &[], &setup));
        let hist = [HistEntry::Sent {
            k: 1,
            dest: Dest::All,
            payload: setup.clone(),
        }];
        assert!(!c.conforms(ActorId(1), &hist, &setup));
    }
}
