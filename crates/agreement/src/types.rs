//! Shared vocabulary of the agreement protocols: process ids, values,
//! ballots, register layouts and the unified simulation message type.

use std::fmt;

use rdma_sim::{MemEmbed, MemWire};
use sigsim::Signature;
use simnet::ActorId;

/// A process identity (an actor id that the harness designated a process).
pub type Pid = ActorId;

/// A proposable value.
///
/// Protocols are agnostic to payload semantics, so a compact numeric id
/// keeps simulations deterministic and cheap; applications (see the
/// `replicated_log` example) map ids to real commands out of band.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(pub u64);

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A Paxos-style ballot (proposal number), totally ordered with the owning
/// process id as tie-breaker so two processes never share a ballot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ballot {
    /// Monotone per-proposer round counter.
    pub round: u64,
    /// The proposer owning this ballot.
    pub pid: Pid,
}

impl Ballot {
    /// The initial ballot owned by the default leader, letting it skip
    /// phase 1 ("the leader terminates one instance and becomes the default
    /// leader in the next").
    pub fn initial(leader: Pid) -> Ballot {
        Ballot {
            round: 0,
            pid: leader,
        }
    }
}

impl fmt::Debug for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.pid.0)
    }
}

/// A consensus instance id, for running many instances (state machine
/// replication) over the same memories.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instance(pub u64);

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst{}", self.0)
    }
}

/// Register namespaces (the `space` coordinate of [`rdma_sim::RegId`]).
pub mod spaces {
    /// Non-equivocating broadcast slots `slots[p, k, q]`.
    pub const NEB: u16 = 1;
    /// Cheap Quorum per-process registers (`b` picks Value/Panic/Proof).
    pub const CQ: u16 = 2;
    /// Cheap Quorum leader proposal register.
    pub const CQ_LEADER: u16 = 3;
    /// Protected Memory Paxos slots `slot[instance, p]`.
    pub const PMP: u16 = 4;
    /// Disk Paxos blocks `block[instance, p]`.
    pub const DISK: u16 = 5;
    /// Aligned Paxos memory slots `slot[instance, p]`.
    pub const ALN: u16 = 6;
    /// Lower-bound strawman flags `flag[p]`.
    pub const LB: u16 = 7;
}

/// The slot record of Protected Memory Paxos and Aligned Paxos
/// (Algorithm 7: `(minProp, accProp, value)`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct PaxSlot {
    /// Highest proposal number written in phase 1.
    pub min_prop: Ballot,
    /// Proposal number of the accepted value, if any.
    pub acc_prop: Option<Ballot>,
    /// The accepted value, if any.
    pub value: Option<Value>,
}

impl PaxSlot {
    /// A phase-1 slot: `{propNr, ⊥, ⊥}`.
    pub fn phase1(prop: Ballot) -> PaxSlot {
        PaxSlot {
            min_prop: prop,
            acc_prop: None,
            value: None,
        }
    }

    /// A phase-2 slot: `{propNr, propNr, value}`.
    pub fn phase2(prop: Ballot, value: Value) -> PaxSlot {
        PaxSlot {
            min_prop: prop,
            acc_prop: Some(prop),
            value: Some(value),
        }
    }
}

/// The block record of Disk Paxos (Gafni–Lamport): `(mbal, bal, inp)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct DiskBlock {
    /// The ballot the process is currently trying.
    pub mbal: Ballot,
    /// The ballot at which `inp` was committed to, if any.
    pub bal: Option<Ballot>,
    /// The value carried, if any.
    pub inp: Option<Value>,
}

/// A value signed for Cheap Quorum: carries the leader's signature (class-M
/// evidence for Definition 3) and the copying process's own signature (one
/// share of a unanimity proof).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct CqSigned {
    /// The proposed value.
    pub value: Value,
    /// The leader's signature over `(CQ_VALUE_TAG, value)`.
    pub leader_sig: Signature,
    /// The writing process's signature over `(CQ_VALUE_TAG, value)`.
    pub own_sig: Signature,
}

/// Domain-separation tags for signatures.
pub mod sigtags {
    /// Cheap Quorum value signatures.
    pub const CQ_VALUE: u64 = 0xC0_01;
    /// Cheap Quorum unanimity proof (outer signature).
    pub const CQ_PROOF: u64 = 0xC0_02;
    /// Non-equivocating broadcast slot signatures.
    pub const NEB: u64 = 0xC0_03;
}

/// Definition 3's priority classes for the inputs Preferential Paxos
/// receives after a Cheap Quorum abort. Higher is stronger:
/// `Proven` (contains a correct unanimity proof) > `LeaderSigned` (carries
/// the leader's signature) > `Bare` (everything else).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PriorityClass {
    /// Set `B`: no evidence.
    Bare = 0,
    /// Set `M`: signed by the Cheap Quorum leader.
    LeaderSigned = 1,
    /// Set `T`: accompanied by a correct unanimity proof.
    Proven = 2,
}

/// A Cheap Quorum unanimity proof: the same value signed by all `n`
/// processes, assembled and counter-signed by one process (§4.2).
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct UnanimityProof {
    /// The unanimous value.
    pub value: Value,
    /// `(process, signature over (CQ_VALUE, value))` for every process.
    pub shares: Vec<(Pid, Signature)>,
    /// Who assembled the proof.
    pub assembler: Pid,
    /// The assembler's signature over `(CQ_PROOF, value, shares)`.
    pub outer_sig: Signature,
}

/// Everything a register can hold across all protocols in this crate.
///
/// A register holds whatever its writer put there; readers pattern-match and
/// treat unexpected variants the way they treat garbage from a Byzantine
/// writer (ignore / nak-equivalent).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RegVal {
    /// A non-equivocating broadcast slot (signed `(k, body)`).
    Neb(crate::nebcast::NebSlot),
    /// A Cheap Quorum Value register.
    CqValue(CqSigned),
    /// A Cheap Quorum Panic register.
    CqPanic(bool),
    /// A Cheap Quorum Proof register.
    CqProof(UnanimityProof),
    /// A Protected Memory Paxos / Aligned Paxos slot.
    Slot(PaxSlot),
    /// A Disk Paxos block.
    Disk(DiskBlock),
    /// A lower-bound strawman flag.
    LbFlag(Value),
}

/// The unified simulation message type for every protocol in this crate.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Memory wire protocol (requests/responses to [`rdma_sim::MemoryActor`]).
    Mem(MemWire<RegVal>),
    /// Message-passing Paxos (baseline).
    Paxos(crate::paxos::PaxosMsg),
    /// Fast Paxos (baseline).
    FastPaxos(crate::fast_paxos::FpMsg),
    /// Aligned Paxos process-acceptor traffic.
    Aligned(crate::aligned::AlMsg),
    /// Cheap Quorum panic relay ("Panic messages can be relayed using RDMA
    /// message sends", §7).
    Panic {
        /// The panicking process.
        who: Pid,
    },
    /// Decision dissemination so every correct process decides.
    Decided {
        /// Consensus instance.
        instance: Instance,
        /// The decided value.
        value: Value,
    },
    /// Batched decision dissemination: `values[j]` decided instance
    /// `first + j`. Sent by an SMR leader committing multiple log entries
    /// per replicated write (`batch > 1`), amortizing dissemination the
    /// same way the write itself is amortized.
    DecidedMany {
        /// First instance of the contiguous decided range.
        first: Instance,
        /// The decided values, in instance order.
        values: Vec<Value>,
    },
    /// A batch of client commands routed to a group leader by the sharded
    /// service's router ([`crate::sharded`]). The receiving replica appends
    /// them to its proposal workload; commands are committed at-least-once
    /// (the router re-submits in-flight commands on failover).
    Submit {
        /// The routed commands, in submission order.
        cmds: Vec<Value>,
    },
    /// A key-range migration's state snapshot, sent by the router to every
    /// replica of the *destination* group once the source group committed
    /// the seal entry (see [`crate::sharded::rebalance`]). Carries the ids
    /// of the migrating range's commands already observed committed at the
    /// source; replicas fold them into their session-dedup seen-set so a
    /// source-committed command is never re-applied at the destination.
    InstallSnapshot {
        /// The migration this snapshot belongs to.
        mig: u64,
        /// Sorted ids decided at the source for the sealed range.
        seen: Vec<u64>,
    },
}

impl MemEmbed<RegVal> for Msg {
    fn from_wire(wire: MemWire<RegVal>) -> Self {
        Msg::Mem(wire)
    }
    fn into_wire(self) -> Result<MemWire<RegVal>, Self> {
        match self {
            Msg::Mem(w) => Ok(w),
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_ordering() {
        let p0 = ActorId(0);
        let p1 = ActorId(1);
        assert!(Ballot { round: 1, pid: p0 } > Ballot { round: 0, pid: p1 });
        assert!(Ballot { round: 1, pid: p1 } > Ballot { round: 1, pid: p0 });
        assert_eq!(Ballot::initial(p0), Ballot { round: 0, pid: p0 });
    }

    #[test]
    fn slot_constructors() {
        let b = Ballot {
            round: 3,
            pid: ActorId(1),
        };
        let s1 = PaxSlot::phase1(b);
        assert_eq!(s1.acc_prop, None);
        let s2 = PaxSlot::phase2(b, Value(9));
        assert_eq!(s2.acc_prop, Some(b));
        assert_eq!(s2.value, Some(Value(9)));
    }

    #[test]
    fn msg_wire_embedding() {
        let wire: MemWire<RegVal> = MemWire::Resp {
            op: rdma_sim::OpId(1),
            resp: rdma_sim::MemResponse::Ack,
        };
        let msg = Msg::from_wire(wire.clone());
        match msg.into_wire() {
            Ok(w) => assert_eq!(w, wire),
            Err(_) => panic!("round trip failed"),
        }
        let non_wire = Msg::Panic { who: ActorId(0) };
        assert!(non_wire.into_wire().is_err());
    }
}
