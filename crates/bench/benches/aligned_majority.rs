//! Experiment E4 — §5.2: Aligned Paxos is live iff a majority of the
//! combined agent set (processes + memories) survives. Prints the full
//! failure grid with the theoretical boundary marked.

use bench::{section, tick};
use criterion::{criterion_group, criterion_main, Criterion};

use agreement::aligned::MemoryMode;
use agreement::harness::{run_aligned, Scenario};

fn print_grid(n: usize, m: usize) {
    let majority = (n + m) / 2 + 1;
    section(&format!(
        "E4: Aligned Paxos failure grid — n={n} procs + m={m} mems (majority {majority})"
    ));
    println!("rows: dead processes (leader kept alive); cols: dead memories");
    print!("{:>8}", "");
    for dm in 0..=m {
        print!("{dm:>8}");
    }
    println!();
    for dp in 0..n {
        print!("{dp:>8}");
        for dm in 0..=m {
            let alive = n + m - dp - dm;
            let mut s = Scenario::common_case(n, m, (dp * 13 + dm) as u64);
            s.crash_procs = (1..=dp).map(|i| (i, 0)).collect();
            s.crash_mems = (0..dm).map(|j| (j, 0)).collect();
            s.max_delays = 2_000;
            let r = run_aligned(&s, MemoryMode::DiskStyle);
            let expect = alive >= majority;
            let got = r.all_decided;
            let cell = match (expect, got) {
                (true, true) => "live",
                (false, false) => "block",
                _ => "?!",
            };
            assert!(r.agreement, "safety violated at dp={dp} dm={dm}");
            assert_eq!(expect, got, "boundary mismatch at dp={dp} dm={dm}");
            print!("{cell:>8}");
        }
        println!();
    }
    println!(
        "expected boundary: alive agents >= {majority} ⇔ live — {}",
        tick(true)
    );
}

fn bench(c: &mut Criterion) {
    print_grid(3, 2);
    print_grid(2, 5);
    let mut g = c.benchmark_group("aligned");
    g.sample_size(10);
    g.bench_function("common_case_n3_m2", |b| {
        b.iter(|| run_aligned(&Scenario::common_case(3, 2, 1), MemoryMode::DiskStyle))
    });
    g.bench_function("mixed_failures_n3_m2", |b| {
        b.iter(|| {
            let mut s = Scenario::common_case(3, 2, 2);
            s.crash_procs = vec![(2, 0)];
            s.crash_mems = vec![(1, 0)];
            s.max_delays = 2_000;
            run_aligned(&s, MemoryMode::DiskStyle)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
