//! Experiment E3 — Theorem 5.1's resilience: Protected Memory Paxos keeps
//! deciding in 2 delays with `n = f_P + 1` processes (kill all but one)
//! and `m = 2·f_M + 1` memories (kill a minority), while the message-
//! passing baseline needs a process majority.

use bench::{fmt_delay, section, tick};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agreement::harness::{run_mp_paxos, run_protected, Scenario};

fn print_table() {
    section("E3: crash resilience sweep (n processes, dead = crashed at t=0)");
    println!(
        "{:<26} {:>4} {:>6} {:>6} {:>12} {:>8}",
        "protocol", "n", "dead_p", "dead_m", "all decided", "delays"
    );
    for n in [2usize, 3, 5] {
        for dead_p in 0..n {
            let mut s = Scenario::common_case(n, 5, 5);
            s.crash_procs = (1..=dead_p).map(|i| (i, 0)).collect();
            s.crash_mems = vec![(0, 0), (2, 0)];
            s.max_delays = 2_000;
            let r = run_protected(&s);
            println!(
                "{:<26} {:>4} {:>6} {:>6} {:>12} {:>8}",
                "Protected Memory Paxos",
                n,
                dead_p,
                2,
                tick(r.all_decided),
                fmt_delay(r.first_decision_delays)
            );
        }
    }
    // The contrast: MP Paxos dies at a process minority.
    for dead_p in [1usize, 2, 3] {
        let mut s = Scenario::common_case(5, 0, 6);
        s.crash_procs = (1..=dead_p).map(|i| (i, 0)).collect();
        s.max_delays = 1_200;
        let r = run_mp_paxos(&s);
        println!(
            "{:<26} {:>4} {:>6} {:>6} {:>12} {:>8}",
            "Paxos (messages)",
            5,
            dead_p,
            0,
            tick(r.all_decided),
            fmt_delay(r.first_decision_delays)
        );
    }
    println!("\npaper: PMP lives with a single surviving process (n >= f_P + 1);");
    println!("message passing needs n >= 2 f_P + 1.");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("crash_recovery");
    g.sample_size(10);
    for crash_at in [0u64, 3] {
        g.bench_with_input(
            BenchmarkId::new("pmp_leader_crash_takeover", crash_at),
            &crash_at,
            |b, &t| {
                b.iter(|| {
                    let mut s = Scenario::common_case(3, 3, 7);
                    s.crash_procs = vec![(0, t)];
                    s.announce = vec![(15, 1)];
                    s.max_delays = 4_000;
                    run_protected(&s)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
