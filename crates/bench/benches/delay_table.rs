//! Experiment E2 — the headline figure: common-case decision latency (in
//! the paper's network-delay metric) for every protocol, as a series over
//! cluster size. The *shape* to reproduce: Protected Memory Paxos, Cheap
//! Quorum / Fast & Robust, Fast Paxos and leader-Paxos sit at 2 delays;
//! Disk Paxos at 4; Robust Backup pays ≥6 per broadcast hop and grows
//! with n (history verification traffic).
//!
//! Criterion additionally records the wall-clock cost of simulating each
//! protocol's common case (E10's companion metric).

use bench::{fmt_delay, section};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agreement::aligned::MemoryMode;
use agreement::harness::{
    run_aligned, run_disk_paxos, run_fast_paxos, run_fast_robust, run_mp_paxos, run_protected,
    run_robust_backup, Scenario,
};

fn print_table() {
    section("E2: common-case decision delays (network-delay metric)");
    println!(
        "{:<26} {:>6} {:>6} {:>6} {:>6}",
        "protocol", "n=3", "n=5", "n=7", "n=9"
    );
    let ns = [3usize, 5, 7, 9];
    let cell = |f: &dyn Fn(usize) -> Option<f64>| {
        ns.iter()
            .map(|&n| format!("{:>6}", fmt_delay(f(n))))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!(
        "{:<26} {}",
        "Paxos (leader)",
        cell(&|n| run_mp_paxos(&Scenario::common_case(n, 3, 1)).first_decision_delays)
    );
    println!(
        "{:<26} {}",
        "Fast Paxos",
        cell(&|n| run_fast_paxos(&Scenario::common_case(n, 3, 1), 1).first_decision_delays)
    );
    println!(
        "{:<26} {}",
        "Disk Paxos",
        cell(&|n| run_disk_paxos(&Scenario::common_case(n, 3, 1)).first_decision_delays)
    );
    println!(
        "{:<26} {}",
        "Protected Memory Paxos",
        cell(&|n| run_protected(&Scenario::common_case(n, 3, 1)).first_decision_delays)
    );
    println!(
        "{:<26} {}",
        "Aligned Paxos (disk mode)",
        cell(&|n| {
            run_aligned(&Scenario::common_case(n, 3, 1), MemoryMode::DiskStyle)
                .first_decision_delays
        })
    );
    println!(
        "{:<26} {}",
        "Aligned Paxos (perm mode)",
        cell(&|n| {
            run_aligned(&Scenario::common_case(n, 3, 1), MemoryMode::Protected)
                .first_decision_delays
        })
    );
    println!(
        "{:<26} {}",
        "Fast & Robust",
        cell(&|n| run_fast_robust(&Scenario::common_case(n, 3, 1), 60)
            .0
            .first_decision_delays)
    );
    println!(
        "{:<26} {}",
        "Robust Backup (slow path)",
        cell(&|n| run_robust_backup(&Scenario::common_case(n, 3, 1))
            .0
            .first_decision_delays)
    );
    println!("\npaper: PMP/F&R/FastPaxos = 2; Disk Paxos >= 4; nebcast hop >= 6");

    section("E2 ablation: dynamic permissions vs verification read (m sweep)");
    println!(
        "{:<10} {:>14} {:>12}",
        "memories", "PMP (delays)", "Disk (delays)"
    );
    for m in [3usize, 5, 7] {
        let s = Scenario::common_case(3, m, 1);
        println!(
            "{:<10} {:>14} {:>12}",
            m,
            fmt_delay(run_protected(&s).first_decision_delays),
            fmt_delay(run_disk_paxos(&s).first_decision_delays),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("common_case_sim");
    g.sample_size(20);
    for n in [3usize, 5, 7] {
        g.bench_with_input(BenchmarkId::new("protected", n), &n, |b, &n| {
            b.iter(|| run_protected(&Scenario::common_case(n, 3, 1)))
        });
        g.bench_with_input(BenchmarkId::new("disk_paxos", n), &n, |b, &n| {
            b.iter(|| run_disk_paxos(&Scenario::common_case(n, 3, 1)))
        });
        g.bench_with_input(BenchmarkId::new("mp_paxos", n), &n, |b, &n| {
            b.iter(|| run_mp_paxos(&Scenario::common_case(n, 3, 1)))
        });
        g.bench_with_input(BenchmarkId::new("fast_robust", n), &n, |b, &n| {
            b.iter(|| run_fast_robust(&Scenario::common_case(n, 3, 1), 60))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
