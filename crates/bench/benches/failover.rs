//! Experiment E7 — the composition under fire (Figure 6): recovery latency
//! of Fast & Robust as a function of when the leader crashes, and the
//! share of runs that decide via the fast path vs the backup.

use bench::{fmt_delay, section};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agreement::harness::{run_fast_robust, Scenario};

fn run(crash_at: Option<u64>, timeout: u64, seed: u64) -> agreement::harness::RunReport {
    let mut s = Scenario::common_case(3, 3, seed);
    if let Some(t) = crash_at {
        s.crash_procs = vec![(0, t)];
        s.announce = vec![(60, 1)];
    }
    s.max_delays = 60_000;
    run_fast_robust(&s, timeout).0
}

fn print_table() {
    section("E7: Fast & Robust failover — decision latency vs leader crash time");
    println!("timeout = 15 delays; Ω re-elects at t=60\n");
    println!(
        "{:<14} {:>14} {:>12} {:>10}",
        "leader crash", "1st decision", "all decided", "agreement"
    );
    let r = run(None, 15, 1);
    println!(
        "{:<14} {:>14} {:>12} {:>10}",
        "never",
        fmt_delay(r.first_decision_delays),
        r.all_decided,
        r.agreement
    );
    for crash_at in [0u64, 1, 2, 3, 5, 8] {
        let r = run(Some(crash_at), 15, 1);
        println!(
            "{:<14} {:>14} {:>12} {:>10}",
            format!("t={crash_at}"),
            fmt_delay(r.first_decision_delays),
            r.all_decided,
            r.agreement
        );
        assert!(r.agreement);
    }
    println!("\nshape: crash after the leader's write (t >= 2) leaves a 2-delay fast");
    println!("decision in place; earlier crashes push everyone through panic +");
    println!("Preferential Paxos, costing timeout + backup rounds.");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("failover");
    g.sample_size(10);
    g.bench_function("no_failure", |b| b.iter(|| run(None, 15, 1)));
    for crash_at in [0u64, 3] {
        g.bench_with_input(
            BenchmarkId::new("leader_crash", crash_at),
            &crash_at,
            |b, &t| b.iter(|| run(Some(t), 15, 1)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
