//! Experiment E5 — Theorem 6.1: the adversarial schedule splits any
//! 2-deciding static-permission algorithm; the identical schedule cannot
//! split Protected Memory Paxos (dynamic permissions). Prints the
//! contrast over seeds.

use bench::{section, tick};
use criterion::{criterion_group, criterion_main, Criterion};

use agreement::lower_bound::{run_protected_contrast, run_strawman_demo};

fn print_table() {
    section("E5: Theorem 6.1 schedule — static vs dynamic permissions");
    println!(
        "{:<6} {:>26} {:>26}",
        "seed", "static 2-decider violated?", "PMP violated? (same sched)"
    );
    let mut broke = 0;
    let mut held = 0;
    for seed in 0..10u64 {
        let a = run_strawman_demo(seed);
        let b = run_protected_contrast(seed);
        if a.agreement_violated {
            broke += 1;
        }
        if !b.agreement_violated {
            held += 1;
        }
        println!(
            "{:<6} {:>26} {:>26}",
            seed,
            tick(a.agreement_violated),
            tick(b.agreement_violated)
        );
    }
    println!("\nstatic-permission strawman split {broke}/10 runs (theorem: always);");
    println!("Protected Memory Paxos held agreement in {held}/10 runs (theorem: always).");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("lower_bound");
    g.sample_size(30);
    g.bench_function("strawman_schedule", |b| b.iter(|| run_strawman_demo(1)));
    g.bench_function("protected_contrast", |b| {
        b.iter(|| run_protected_contrast(1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
