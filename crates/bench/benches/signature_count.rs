//! Experiment E6 — §4.2's efficiency claim: the Cheap Quorum fast path
//! needs **one signature** for a fast decision, versus `6·f_P + 2` for the
//! best prior 2-deciding Byzantine protocol [7]. Prints signatures
//! created up to the first decision and for the full run, over n.

use bench::section;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agreement::cheap_quorum::{memory_actor, CheapQuorumActor};
use agreement::harness::{run_fast_robust, Scenario};
use agreement::types::{Msg, Pid, Value};
use sigsim::SigAuthority;
use simnet::{ActorId, Duration, Simulation, Time};

/// Runs Cheap Quorum until the first (leader) decision and reports
/// signatures created by then, then runs to full completion.
fn count_signatures(n: u32, seed: u64) -> (u64, u64, f64) {
    let m = 3u32;
    let mut sim: Simulation<Msg> = Simulation::new(seed);
    let procs: Vec<Pid> = (0..n).map(ActorId).collect();
    let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
    let mut auth = SigAuthority::new(seed);
    for i in 0..n {
        let signer = auth.register(ActorId(i));
        sim.add(CheapQuorumActor::new(
            ActorId(i),
            procs.clone(),
            mems.clone(),
            ActorId(0),
            Value(100),
            signer,
            auth.verifier(),
            Duration::from_delays(1),
            Duration::from_delays(200),
        ));
    }
    for _ in 0..m {
        sim.add(memory_actor(&procs, ActorId(0)));
    }
    sim.run_until(Time::from_delays(5_000), |s| {
        s.metrics().first_decision().is_some()
    });
    let at_first_decision = auth.signatures_created();
    let first_delay = sim.metrics().first_decision_delays().unwrap_or(f64::NAN);
    sim.run_until(Time::from_delays(5_000), |s| {
        (0..n).all(|i| {
            s.actor_as::<CheapQuorumActor>(ActorId(i))
                .is_some_and(|a| a.decision().is_some())
        })
    });
    (at_first_decision, auth.signatures_created(), first_delay)
}

fn print_table() {
    section("E6: signatures on the Cheap Quorum fast path");
    println!(
        "{:<4} {:>18} {:>16} {:>14} {:>12}",
        "n", "sigs @ 1st decide", "sigs full run", "prior work*", "delays"
    );
    for n in [3u32, 5, 7] {
        let f = (n - 1) / 2_u32;
        let (first, full, delay) = count_signatures(n, 11);
        println!(
            "{:<4} {:>18} {:>16} {:>14} {:>12.1}",
            n,
            first,
            full,
            6 * f + 2,
            delay
        );
    }
    println!("\n* best prior 2-deciding Byzantine protocol needs 6f+2 signatures [7];");
    println!("  Cheap Quorum's fast decision needs exactly 1 (the leader's sign(v)).");

    section("E6b: signature totals for the full Fast & Robust composition");
    for n in [3usize, 5] {
        let (r, auth) = run_fast_robust(&Scenario::common_case(n, 3, 3), 60);
        println!(
            "n={n}: created {:>4}, verified {:>5}, first decision {:.1} delays",
            auth.signatures_created(),
            auth.verifications(),
            r.first_decision_delays.unwrap()
        );
    }
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("signatures");
    g.sample_size(20);
    for n in [3u32, 5] {
        g.bench_with_input(BenchmarkId::new("cheap_quorum_full", n), &n, |b, &n| {
            b.iter(|| count_signatures(n, 11))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
