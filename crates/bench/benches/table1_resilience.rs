//! Experiment E1 — Table 1's new row, regenerated: weak Byzantine
//! agreement with `n = 2·f_P + 1` in an asynchronous system with
//! signatures and RDMA non-equivocation. The table prints, per (n, f),
//! whether all correct processes decided and agreed with `f` silent
//! Byzantine processes — at the bound and one past it.

use bench::{section, tick};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agreement::harness::{run_fast_robust, run_robust_backup, Scenario};

fn print_table() {
    section("E1: Table 1 row — Byzantine resilience at n = 2f+1 (RDMA non-equiv)");
    println!(
        "{:<16} {:>4} {:>4} {:>12} {:>10} {:>10}",
        "protocol", "n", "f", "all decided", "agreement", "at bound?"
    );
    for &(n, f) in &[(3usize, 1usize), (5, 2), (7, 3)] {
        let mut s = Scenario::common_case(n, 3, 42 + n as u64);
        s.byz_silent = (n - f..n).collect();
        s.max_delays = 40_000;
        let (r, _) = run_fast_robust(&s, 25);
        println!(
            "{:<16} {:>4} {:>4} {:>12} {:>10} {:>10}",
            "Fast & Robust",
            n,
            f,
            tick(r.all_decided),
            tick(r.agreement),
            "n = 2f+1"
        );
    }
    for &(n, f) in &[(3usize, 1usize), (5, 2)] {
        let mut s = Scenario::common_case(n, 3, 17 + n as u64);
        s.byz_silent = (n - f..n).collect();
        s.max_delays = 40_000;
        let (r, _) = run_robust_backup(&s);
        println!(
            "{:<16} {:>4} {:>4} {:>12} {:>10} {:>10}",
            "Robust Backup",
            n,
            f,
            tick(r.all_decided),
            tick(r.agreement),
            "n = 2f+1"
        );
    }
    // Past the bound: correct processes cannot all terminate, but must
    // stay consistent.
    let mut s = Scenario::common_case(3, 3, 99);
    s.byz_silent = vec![1, 2];
    s.max_delays = 3_000;
    let (r, _) = run_fast_robust(&s, 25);
    println!(
        "{:<16} {:>4} {:>4} {:>12} {:>10} {:>10}",
        "Fast & Robust",
        3,
        2,
        tick(r.all_decided),
        tick(r.agreement),
        "f = n-1 !"
    );
    println!("\npaper: async + signatures + non-equivocation => 2f+1 (Table 1, last row);");
    println!("message passing alone would need 3f+1 even with signatures [15].");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("byzantine_at_bound");
    g.sample_size(10);
    for n in [3usize, 5] {
        let f = (n - 1) / 2;
        g.bench_with_input(BenchmarkId::new("fast_robust_f_byz", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = Scenario::common_case(n, 3, 42);
                s.byz_silent = (n - f..n).collect();
                s.max_delays = 40_000;
                run_fast_robust(&s, 25)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
