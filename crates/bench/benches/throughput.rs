//! Experiment E10 — end-to-end cost comparison on the simulated substrate:
//! wall-clock per decided instance (Criterion) and, for the replicated log,
//! virtual-time throughput (entries per 100 delays). Sanity shape: PMP
//! beats Disk Paxos; the Byzantine slow path is an order of magnitude
//! heavier than the fast path.

use bench::section;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agreement::harness::{
    run_disk_paxos, run_fast_robust, run_mp_paxos, run_protected, run_robust_backup, Scenario,
};
use agreement::protected::memory_actor;
use agreement::smr::SmrNode;
use agreement::types::{Msg, Value};
use simnet::{ActorId, Duration, Simulation, Time};

/// Virtual-time SMR throughput: committed entries within a delay budget.
fn smr_entries_within(budget_delays: u64, n: u32, m: u32) -> usize {
    let mut sim: Simulation<Msg> = Simulation::new(5);
    let procs: Vec<ActorId> = (0..n).map(ActorId).collect();
    let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
    for i in 0..n {
        let workload: Vec<Value> = (0..10_000).map(Value).collect();
        sim.add(SmrNode::new(
            ActorId(i),
            procs.clone(),
            mems.clone(),
            ActorId(0),
            workload,
            (m as usize - 1) / 2,
            Duration::from_delays(20),
        ));
    }
    for _ in 0..m {
        sim.add(memory_actor(ActorId(0)));
    }
    sim.run_to_quiescence(Time::from_delays(budget_delays));
    sim.actor_as::<SmrNode>(ActorId(0)).unwrap().log_len()
}

fn print_table() {
    section("E10: protocol cost in the common case (n=3, m=3)");
    let s = Scenario::common_case(3, 3, 1);
    println!(
        "{:<26} {:>8} {:>10} {:>10}",
        "protocol", "delays", "messages", "mem ops"
    );
    let rows: Vec<(&str, agreement::harness::RunReport)> = vec![
        ("Paxos (messages)", run_mp_paxos(&s)),
        ("Disk Paxos", run_disk_paxos(&s)),
        ("Protected Memory Paxos", run_protected(&s)),
        ("Fast & Robust", run_fast_robust(&s, 60).0),
        ("Robust Backup", run_robust_backup(&s).0),
    ];
    for (name, r) in rows {
        println!(
            "{:<26} {:>8.1} {:>10} {:>10}",
            name,
            r.first_decision_delays.unwrap_or(f64::NAN),
            r.messages,
            r.mem_ops
        );
    }

    section("E10b: replicated-log throughput (virtual time)");
    for budget in [100u64, 500, 1000] {
        let entries = smr_entries_within(budget, 3, 3);
        println!(
            "{budget:>5} delays -> {entries:>4} entries ({:.2} delays/entry)",
            budget as f64 / entries.max(1) as f64
        );
    }
    println!("\nshape: steady-state SMR commits one entry per ~2 delays (one");
    println!("replicated write each), matching Theorem 5.1's common case.");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);
    let s = Scenario::common_case(3, 3, 1);
    g.bench_function("mp_paxos_decide", |b| b.iter(|| run_mp_paxos(&s)));
    g.bench_function("disk_paxos_decide", |b| b.iter(|| run_disk_paxos(&s)));
    g.bench_function("protected_decide", |b| b.iter(|| run_protected(&s)));
    g.bench_function("fast_robust_decide", |b| b.iter(|| run_fast_robust(&s, 60)));
    g.bench_function("robust_backup_decide", |b| b.iter(|| run_robust_backup(&s)));
    for budget in [200u64, 1000] {
        g.bench_with_input(BenchmarkId::new("smr_log", budget), &budget, |b, &t| {
            b.iter(|| smr_entries_within(t, 3, 3))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
