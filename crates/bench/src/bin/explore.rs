//! Systematic schedule-exploration driver (see `agreement::explore`).
//!
//! ```text
//! cargo run --release --bin explore -- --scenario NAME \
//!     [--max-schedules N] [--max-depth N] [--strict] [--naive]
//! ```
//!
//! Scenarios:
//!
//! - `tiny_pmp` — n=3 crash-mode PMP group, two commands. Exhaustively
//!   enumerable: every inequivalent same-tick delivery order runs.
//! - `tiny_byz` — n=3 Byzantine-mode group (signed broadcasts), two
//!   commands.
//! - `tiny_migration` — two groups with a scripted key-range migration
//!   racing a leader failover.
//! - `dedup` — the historical duplicate-commit bug
//!   (`disable_session_dedup`) on a failover schedule: the explorer must
//!   *find* failing interleavings, shrink the first to a minimal choice
//!   vector, and write its timeline under `target/explore-artifacts/`.
//! - `medium` — a budgeted (non-exhaustive) sweep of a larger config.
//! - `all` — the CI lane: every scenario above with its expected
//!   outcome enforced.
//!
//! `--strict` (the CI gate) additionally enforces, per scenario: the
//! expected violations (none, or some for `dedup`), exhaustiveness where
//! promised, bit-deterministic repeat runs, and that sleep-set pruning
//! is load-bearing (prunes > 0 and at least halves the naive schedule
//! count). `--naive` disables pruning for one-off measurements.

use std::path::Path;
use std::process::ExitCode;

use agreement::explore::{
    explore, render_schedule_timeline, shrink_choices, ExploreConfig, ExploreReport,
};
use agreement::harness::ShardedScenario;
use agreement::sharded::{GroupMode, KeyRange, ScriptedMigration};

/// What strict mode requires of a target's sweep.
#[derive(Clone, Copy, PartialEq)]
enum Expect {
    /// Frontier drained, nothing truncated, zero violations: the whole
    /// schedule space is enumerated and safe.
    Exhaustive,
    /// Frontier drained within the depth cap (truncated runs allowed),
    /// zero violations: every schedule of the bounded prefix region.
    BoundedExhaustive,
    /// Budgeted sample, zero violations.
    Budgeted,
    /// The injected bug: exhaustive, and the oracle must reject some
    /// schedules *and* pass others — the violation is genuinely
    /// schedule-dependent, invisible to a single default run.
    FindsBug,
}

/// A named exploration target with its strict-mode expectations.
struct Target {
    name: &'static str,
    scenario: ShardedScenario,
    /// Depth-cap override (`tiny_byz`'s space is unbounded-ish in
    /// practice; a cap makes its prefix region enumerable).
    max_depth: Option<usize>,
    expect: Expect,
}

/// n=3 crash-mode PMP group, two commands: the hand-countable config.
fn tiny_pmp() -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(1, 3, 1, 7);
    sc.total_cmds = 2;
    sc.window = 1;
    sc.max_delays = 4_000;
    sc
}

/// n=3 Byzantine-mode group, two commands.
fn tiny_byz() -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(1, 3, 1, 9);
    sc.group_modes = vec![GroupMode::Byzantine];
    sc.total_cmds = 2;
    sc.window = 1;
    sc.max_delays = 8_000;
    sc
}

/// Two groups; a scripted migration of group 0's keys races group 0's
/// leader failover.
fn tiny_migration() -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(2, 3, 1, 11);
    sc.total_cmds = 4;
    sc.window = 2;
    sc.max_delays = 8_000;
    sc.crash_leaders = vec![(0, 20)];
    sc.announce = vec![(0, 1, 40)];
    sc.migrations = vec![ScriptedMigration {
        at_delays: 25,
        range: KeyRange { lo: 0, hi: 512 },
        to: 1,
    }];
    sc
}

/// The reintroduced duplicate-commit bug on a failover schedule, tuned
/// so the *default* `(time, seq)` schedule passes: only systematic
/// exploration of the same-tick orders around the crash exposes the
/// missing session dedup (about half of the 79 inequivalent schedules
/// commit a command twice).
fn dedup() -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(1, 3, 1, 33);
    sc.total_cmds = 4;
    sc.window = 1;
    sc.max_delays = 8_000;
    sc.crash_leaders = vec![(0, 9)];
    sc.announce = vec![(0, 1, 23)];
    sc.disable_session_dedup = true;
    sc
}

/// A larger config the sweep only samples (budgeted, never exhaustive).
fn medium() -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(2, 3, 3, 5);
    sc.total_cmds = 24;
    sc.window = 4;
    sc.max_delays = 20_000;
    sc.crash_leaders = vec![(1, 25)];
    sc.announce = vec![(1, 1, 60)];
    sc
}

fn targets(which: &str) -> Vec<Target> {
    let all = [
        Target {
            name: "tiny_pmp",
            scenario: tiny_pmp(),
            max_depth: None,
            expect: Expect::Exhaustive,
        },
        Target {
            name: "tiny_byz",
            scenario: tiny_byz(),
            max_depth: Some(10),
            expect: Expect::BoundedExhaustive,
        },
        Target {
            name: "tiny_migration",
            scenario: tiny_migration(),
            max_depth: None,
            expect: Expect::Exhaustive,
        },
        Target {
            name: "dedup",
            scenario: dedup(),
            max_depth: None,
            expect: Expect::FindsBug,
        },
        Target {
            name: "medium",
            scenario: medium(),
            max_depth: None,
            expect: Expect::Budgeted,
        },
    ];
    all.into_iter()
        .filter(|t| which == "all" || t.name == which)
        .collect()
}

fn print_report(name: &str, r: &ExploreReport) {
    println!(
        "{name}: {} schedules ({} redundant, {} truncated), {} pruned, \
         exhausted: {}, oracle: {} pass / {} fail, {} fingerprints, \
         max branching {}, {} choice points",
        r.schedules_run,
        r.schedules_redundant,
        r.truncated_runs,
        r.schedules_pruned,
        r.frontier_exhausted,
        r.oracle_pass,
        r.failures_found,
        r.fingerprints.len(),
        r.max_branching,
        r.choice_points,
    );
}

/// Writes a failing schedule's timeline exports. I/O errors are
/// reported, never fatal — the violation itself already counted.
fn write_artifacts(dir: &Path, name: &str, sc: &ShardedScenario, choices: &[usize], title: &str) {
    let art = render_schedule_timeline(sc, choices, title);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("  (could not create {}: {e})", dir.display());
        return;
    }
    let stem = dir.join(name);
    for (ext, body) in [
        ("jsonl", &art.jsonl),
        ("trace.json", &art.chrome),
        ("html", &art.html),
    ] {
        let path = stem.with_extension(ext);
        match std::fs::write(&path, body) {
            Ok(()) => println!("  timeline: {}", path.display()),
            Err(e) => eprintln!("  (could not write {}: {e})", path.display()),
        }
    }
    println!("  ({} events traced)", art.events);
}

fn main() -> ExitCode {
    let mut which = String::from("all");
    let mut cfg = ExploreConfig::default();
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => {
                which = args.next().expect("--scenario needs a name");
            }
            "--max-schedules" => {
                cfg.max_schedules = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-schedules needs an integer");
            }
            "--max-depth" => {
                cfg.max_depth = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-depth needs an integer");
            }
            "--strict" => strict = true,
            "--naive" => cfg.prune = false,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let targets = targets(&which);
    if targets.is_empty() {
        eprintln!("unknown scenario: {which}");
        return ExitCode::FAILURE;
    }

    let artifact_dir = Path::new("target").join("explore-artifacts");
    let mut failed = false;
    for t in &targets {
        let tcfg = ExploreConfig {
            max_depth: t.max_depth.unwrap_or(cfg.max_depth),
            ..cfg
        };
        let report = explore(&t.scenario, &tcfg);
        print_report(t.name, &report);

        for f in &report.failures {
            println!("  VIOLATION {}: {} @ {:?}", t.name, f.violation, f.choices);
        }
        if let Some(first) = report.failures.first() {
            let (min, v) = shrink_choices(&t.scenario, &first.choices);
            println!(
                "  shrunk {} -> {} choices: {v} @ {min:?}",
                first.choices.len(),
                min.len()
            );
            write_artifacts(
                &artifact_dir,
                t.name,
                &t.scenario,
                &min,
                &format!("explore {}: {v}", t.name),
            );
        }

        if !strict {
            continue;
        }
        let mut bad = |msg: String| {
            eprintln!("  STRICT {}: {msg}", t.name);
            failed = true;
        };
        // Expected outcome.
        match t.expect {
            Expect::Exhaustive | Expect::BoundedExhaustive | Expect::Budgeted => {
                if report.failures_found > 0 {
                    bad(format!("{} unexpected violations", report.failures_found));
                }
            }
            Expect::FindsBug => {
                if report.failures_found == 0 {
                    bad("injected bug not found".into());
                }
                if report.oracle_pass == 0 {
                    bad("bug not schedule-dependent (every schedule failed)".into());
                }
            }
        }
        let exhaustive = report.frontier_exhausted && report.truncated_runs == 0;
        match t.expect {
            Expect::Exhaustive | Expect::FindsBug if !exhaustive => {
                bad(format!(
                    "expected exhaustive (exhausted: {}, truncated: {})",
                    report.frontier_exhausted, report.truncated_runs
                ));
            }
            Expect::BoundedExhaustive if !report.frontier_exhausted => {
                bad("expected depth-bounded frontier to drain".into());
            }
            _ => {}
        }
        // Determinism: a repeat sweep reproduces counts and outcomes.
        let again = explore(&t.scenario, &tcfg);
        if again.schedules_run != report.schedules_run
            || again.schedules_pruned != report.schedules_pruned
            || again.fingerprints != report.fingerprints
            || again.failures_found != report.failures_found
        {
            bad("repeat sweep diverged".into());
        }
        // Pruning is load-bearing: at least twice the naive schedule
        // count is saved (the naive sweep shares the budget, so the
        // bound holds even when naive alone would blow it).
        if tcfg.prune {
            if report.schedules_pruned == 0 {
                bad("pruning never fired".into());
            }
            let naive = explore(
                &t.scenario,
                &ExploreConfig {
                    prune: false,
                    ..tcfg
                },
            );
            println!(
                "  naive: {} schedules (exhausted: {}, truncated: {})",
                naive.schedules_run, naive.frontier_exhausted, naive.truncated_runs
            );
            let useful = report.schedules_run - report.schedules_redundant;
            if naive.schedules_run < 2 * useful {
                bad(format!(
                    "pruning not load-bearing ({} naive vs {} useful pruned)",
                    naive.schedules_run, useful
                ));
            }
            // Sound reduction: when both sweeps are complete, the pruned
            // frontier reaches every final state the naive one reaches.
            if exhaustive
                && naive.frontier_exhausted
                && naive.truncated_runs == 0
                && report.fingerprints != naive.fingerprints
            {
                bad("pruned/naive fingerprint sets differ".into());
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
