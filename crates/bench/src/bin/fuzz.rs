//! Scenario-fuzzer driver: generate, check, and shrink seeded sharded
//! scenarios from the command line (see `agreement::fuzz`).
//!
//! ```text
//! cargo run --release --bin fuzz -- [--start N] [--cases N] [--strict] [--no-shrink]
//! ```
//!
//! - `--start N` / `--cases N`: the contiguous case-seed range to fuzz
//!   (defaults 0 and 1000). The same range always reproduces the same
//!   campaign bit-for-bit.
//! - `--strict`: exit nonzero when any case fails — the CI gate mode.
//! - `--no-shrink`: report raw failures without minimizing them (faster
//!   triage sweeps).
//!
//! Every failure prints its case seed, the violation, the shrunk
//! scenario's fault count, and a Rust block expression rebuilding the
//! minimal scenario — paste it into `tests/fuzz_regressions.rs` to pin
//! the bug. Each failure also re-runs its shrunk scenario with tracing
//! enabled and writes the timeline next to the repro under
//! `target/fuzz-artifacts/` (`seed-N.jsonl`, `seed-N.trace.json`,
//! `seed-N.html`) so the violating schedule can be inspected in a
//! browser or Perfetto.

use std::path::Path;
use std::process::ExitCode;

use agreement::fuzz::{
    campaign_exit_code, fault_count, render_timeline, run_campaign, CaseFailure, FuzzConfig,
};

/// Writes the shrunk scenario's timeline exports for one failure.
/// Artifact I/O must never mask the violation itself, so errors are
/// reported and swallowed.
fn write_artifacts(dir: &Path, failure: &CaseFailure) {
    let title = format!(
        "fuzz seed {}: {}",
        failure.case_seed, failure.shrunk_violation
    );
    let art = render_timeline(&failure.shrunk, &title);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("  (could not create {}: {e})", dir.display());
        return;
    }
    let stem = dir.join(format!("seed-{}", failure.case_seed));
    for (ext, body) in [
        ("jsonl", &art.jsonl),
        ("trace.json", &art.chrome),
        ("html", &art.html),
    ] {
        let path = stem.with_extension(ext);
        match std::fs::write(&path, body) {
            Ok(()) => println!("  timeline: {}", path.display()),
            Err(e) => eprintln!("  (could not write {}: {e})", path.display()),
        }
    }
    println!("  ({} events traced)", art.events);
}

fn main() -> ExitCode {
    let mut cfg = FuzzConfig {
        start_seed: 0,
        cases: 1000,
        shrink: true,
        replay_every: 16,
        sweep_every: 8,
    };
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--start" => {
                cfg.start_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--start needs an integer");
            }
            "--cases" => {
                cfg.cases = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cases needs an integer");
            }
            "--strict" => strict = true,
            "--no-shrink" => cfg.shrink = false,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "fuzzing seeds {}..{} (shrink: {}, strict: {strict})",
        cfg.start_seed,
        cfg.start_seed + cfg.cases,
        cfg.shrink
    );
    let report = run_campaign(&cfg);
    println!(
        "{} cases: {} crash, {} adversarial, {} migrating, {} rebalancing, \
         {} paced, {} partitioned, {} jittered",
        report.cases,
        report.crash_cases,
        report.adversary_cases,
        report.migration_cases,
        report.rebalance_cases,
        report.paced_cases,
        report.partitioned_cases,
        report.jittered_cases,
    );
    println!(
        "{} commands committed; {} determinism replays, {} thread sweeps",
        report.commands_committed, report.replays, report.sweeps
    );

    if report.shrink_budget_exhausted > 0 {
        eprintln!(
            "WARNING: {} shrink(s) ran out of budget before reaching a \
             fixed point (repros below may not be minimal)",
            report.shrink_budget_exhausted
        );
    }
    if report.failures.is_empty() {
        println!("no violations");
    } else {
        let artifact_dir = Path::new("target").join("fuzz-artifacts");
        for failure in &report.failures {
            println!();
            println!(
                "VIOLATION seed={} : {}",
                failure.case_seed, failure.violation
            );
            println!(
                "  shrunk to {} fault(s) ({}){}, repro:",
                fault_count(&failure.shrunk),
                failure.shrunk_violation,
                if failure.shrink_budget_exhausted {
                    " [shrink budget exhausted]"
                } else {
                    ""
                }
            );
            println!("{}", failure.repro);
            write_artifacts(&artifact_dir, failure);
        }
        println!();
        println!("{} of {} cases failed", report.failures.len(), report.cases);
    }
    // Exit-code contract (pinned by `agreement::fuzz` unit tests):
    // 0 clean, 1 strict-mode violations, 2 shrink budget exhausted.
    ExitCode::from(campaign_exit_code(strict, &report))
}
