//! Headless perf-trajectory recorder: runs the E10 cost table, the E10b
//! replicated-log workload, and a kernel queue-stress microbench on both
//! kernel profiles, then writes machine-readable `BENCH_PR1.json` at the
//! repo root.
//!
//! Reported quantities:
//!
//! * **entries/sec** — committed log entries per wall-clock second on the
//!   E10b workload; the end-to-end replicated-log throughput and the
//!   headline speedup (the pre-PR kernel cannot batch, so this captures
//!   the combined kernel + SMR-pipeline overhaul).
//! * **events/sec** — kernel events dispatched per wall-clock second; the
//!   direct dispatch-overhead measure, reported at batch=1 (identical
//!   event streams on both kernels) and on the queue-stress gossip where
//!   tens of thousands of events are in flight.
//! * **allocs/event** — global allocations per dispatched event, the
//!   zero-alloc-dispatch proxy.
//!
//! `Legacy` is the faithful pre-overhaul kernel (binary-heap queue,
//! per-send delay-model clone, eager trace strings, tombstone timer set,
//! per-dispatch pending buffer); `Optimized` is the current one. Both
//! produce identical virtual-time results — the golden-schedule tests pin
//! that — so every difference below is wall-clock only.
//!
//! ```sh
//! cargo run --release -p bench --bin perf_snapshot
//! PERF_SNAPSHOT_CMDS=200000 cargo run --release -p bench --bin perf_snapshot
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use agreement::harness::{
    run_disk_paxos, run_fast_robust, run_mp_paxos, run_protected, run_robust_backup, run_smr,
    RunReport, Scenario, SmrRunReport,
};
use simnet::{
    Actor, ActorId, Context, DelayModel, Duration, EventKind, KernelProfile, Simulation, Time,
};

/// Allocation-counting wrapper around the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measured E10b run.
struct Measured {
    label: &'static str,
    report: SmrRunReport,
    wall_secs: f64,
    allocs: u64,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        self.report.events_dispatched as f64 / self.wall_secs
    }
    fn entries_per_sec(&self) -> f64 {
        self.report.entries as f64 / self.wall_secs
    }
    fn allocs_per_event(&self) -> f64 {
        self.allocs as f64 / self.report.events_dispatched.max(1) as f64
    }
}

fn measure_smr(label: &'static str, kernel: KernelProfile, batch: usize, cmds: usize) -> Measured {
    let mut s = Scenario::common_case(3, 3, 5);
    s.kernel = kernel;
    s.batch = batch;
    // Budget: just enough virtual time to commit everything (2 delays per
    // batched write round) plus slack, so the run measures the commit
    // pipeline rather than a post-workload timer tail.
    s.max_delays = 2 * (cmds as u64).div_ceil(batch as u64) + 50;
    let before = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    let report = run_smr(&s, cmds);
    let wall_secs = start.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        report.entries, cmds,
        "{label}: workload did not fully commit"
    );
    assert!(report.logs_agree, "{label}: replicas diverged");
    Measured {
        label,
        report,
        wall_secs,
        allocs,
    }
}

/// Queue-stress gossip: `n` actors, deep in-flight queues (tens of
/// thousands of scheduled events), jittered delays. This is where the
/// event-queue structure itself dominates: the legacy heap pays
/// O(log queue) payload moves per operation, the wheel O(1).
#[derive(Clone, Debug)]
struct Pkt {
    _pad: [u64; 12],
    hops: u32,
}

struct GossipNode {
    peers: u32,
    fanout: u32,
}

impl Actor<Pkt> for GossipNode {
    fn on_event(&mut self, ctx: &mut Context<'_, Pkt>, ev: EventKind<Pkt>) {
        match ev {
            EventKind::Start => {
                for i in 0..self.fanout {
                    let to = ActorId((ctx.me().0 + i + 1) % self.peers);
                    ctx.send(
                        to,
                        Pkt {
                            _pad: [0; 12],
                            hops: 12,
                        },
                    );
                }
            }
            EventKind::Msg { msg, .. } if msg.hops > 0 => {
                // Cheap deterministic peer scatter.
                let mix = (ctx.me().0 as u64)
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(msg.hops as u64 * 40_503)
                    .wrapping_add(ctx.now().0);
                let to = ActorId((mix % self.peers as u64) as u32);
                ctx.send(
                    to,
                    Pkt {
                        _pad: msg._pad,
                        hops: msg.hops - 1,
                    },
                );
            }
            _ => {}
        }
    }
}

fn stress_run(profile: KernelProfile, n: u32, fanout: u32) -> (f64, u64) {
    let mut sim: Simulation<Pkt> = Simulation::with_profile(7, profile);
    sim.set_default_delay(DelayModel::Uniform {
        lo: Duration::from_delays(1),
        hi: Duration::from_delays(8),
    });
    for _ in 0..n {
        sim.add(GossipNode { peers: n, fanout });
    }
    let start = Instant::now();
    sim.run_to_quiescence(Time::from_delays(1_000_000));
    (
        start.elapsed().as_secs_f64(),
        sim.metrics().events_dispatched,
    )
}

struct StressResult {
    n: u32,
    events: u64,
    legacy_events_per_sec: f64,
    optimized_events_per_sec: f64,
}

fn measure_stress(n: u32, fanout: u32) -> StressResult {
    let _ = stress_run(KernelProfile::Optimized, n, fanout); // warmup
    let (tl, el) = stress_run(KernelProfile::Legacy, n, fanout);
    let (to, eo) = stress_run(KernelProfile::Optimized, n, fanout);
    assert_eq!(el, eo, "profiles dispatched different event counts");
    StressResult {
        n,
        events: el,
        legacy_events_per_sec: el as f64 / tl,
        optimized_events_per_sec: eo as f64 / to,
    }
}

fn smr_json(m: &Measured) -> String {
    format!(
        "{{\n      \"label\": \"{}\",\n      \"entries\": {},\n      \"events_dispatched\": {},\n      \"wall_secs\": {:.6},\n      \"events_per_sec\": {:.0},\n      \"entries_per_sec\": {:.0},\n      \"allocations\": {},\n      \"allocs_per_event\": {:.3},\n      \"messages\": {},\n      \"mem_ops\": {},\n      \"elapsed_delays\": {:.1},\n      \"delays_per_entry\": {:.3}\n    }}",
        m.label,
        m.report.entries,
        m.report.events_dispatched,
        m.wall_secs,
        m.events_per_sec(),
        m.entries_per_sec(),
        m.allocs,
        m.allocs_per_event(),
        m.report.messages,
        m.report.mem_ops,
        m.report.elapsed_delays,
        m.report.delays_per_entry,
    )
}

fn protocol_json(name: &str, r: &RunReport) -> String {
    format!(
        "{{ \"protocol\": \"{}\", \"first_decision_delays\": {}, \"messages\": {}, \"mem_ops\": {}, \"all_decided\": {}, \"agreement\": {} }}",
        name,
        r.first_decision_delays.map_or("null".to_string(), |d| format!("{d:.1}")),
        r.messages,
        r.mem_ops,
        r.all_decided,
        r.agreement,
    )
}

fn main() {
    let cmds: usize = std::env::var("PERF_SNAPSHOT_CMDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);

    println!("perf_snapshot: E10 common-case table (n=3, m=3, seed=1)");
    let s = Scenario::common_case(3, 3, 1);
    let table: Vec<(&str, RunReport)> = vec![
        ("mp_paxos", run_mp_paxos(&s)),
        ("disk_paxos", run_disk_paxos(&s)),
        ("protected_memory_paxos", run_protected(&s)),
        ("fast_robust", run_fast_robust(&s, 60).0),
        ("robust_backup", run_robust_backup(&s).0),
    ];
    for (name, r) in &table {
        println!(
            "  {name:<24} {:>6} delays {:>8} msgs {:>6} mem ops",
            r.first_decision_delays
                .map_or("-".into(), |d| format!("{d:.1}")),
            r.messages,
            r.mem_ops
        );
    }

    println!("\nperf_snapshot: E10b replicated log, {cmds} commands (n=3, m=3)");
    // Warm-up run so cold-start effects (page faults, lazy init) do not
    // land on the first measured configuration.
    let _ = measure_smr("warmup", KernelProfile::Optimized, 1, cmds.min(10_000));

    let legacy = measure_smr("legacy_kernel_batch1", KernelProfile::Legacy, 1, cmds);
    let optimized = measure_smr("optimized_kernel_batch1", KernelProfile::Optimized, 1, cmds);
    let batched8 = measure_smr("optimized_kernel_batch8", KernelProfile::Optimized, 8, cmds);
    let batched32 = measure_smr(
        "optimized_kernel_batch32",
        KernelProfile::Optimized,
        32,
        cmds,
    );

    for m in [&legacy, &optimized, &batched8, &batched32] {
        println!(
            "  {:<26} {:>11.0} events/s {:>11.0} entries/s {:>7.3} allocs/event ({:.3}s)",
            m.label,
            m.events_per_sec(),
            m.entries_per_sec(),
            m.allocs_per_event(),
            m.wall_secs
        );
    }

    let speedup_events = optimized.events_per_sec() / legacy.events_per_sec();
    let speedup_b8 = batched8.entries_per_sec() / legacy.entries_per_sec();
    let speedup_b32 = batched32.entries_per_sec() / legacy.entries_per_sec();
    println!("\n  dispatch speedup (events/sec, batch=1):   {speedup_events:.2}x");
    println!("  workload speedup (entries/sec, batch=8):  {speedup_b8:.2}x");
    println!("  workload speedup (entries/sec, batch=32): {speedup_b32:.2}x");

    println!("\nperf_snapshot: kernel queue stress (gossip, deep in-flight queues)");
    let stress: Vec<StressResult> = vec![measure_stress(5_000, 40), measure_stress(20_000, 60)];
    for r in &stress {
        println!(
            "  n={:<6} events={:<9} legacy {:>9.0} ev/s, optimized {:>9.0} ev/s ({:.2}x)",
            r.n,
            r.events,
            r.legacy_events_per_sec,
            r.optimized_events_per_sec,
            r.optimized_events_per_sec / r.legacy_events_per_sec
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench-snapshot-v1\",\n");
    json.push_str("  \"pr\": 1,\n");
    json.push_str(&format!("  \"workload_commands\": {cmds},\n"));
    json.push_str("  \"e10_common_case\": [\n");
    let rows: Vec<String> = table
        .iter()
        .map(|(name, r)| format!("    {}", protocol_json(name, r)))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"e10b_replicated_log\": {\n");
    let _ = writeln!(json, "    \"legacy_kernel_batch1\": {},", smr_json(&legacy));
    let _ = writeln!(
        json,
        "    \"optimized_kernel_batch1\": {},",
        smr_json(&optimized)
    );
    let _ = writeln!(
        json,
        "    \"optimized_kernel_batch8\": {},",
        smr_json(&batched8)
    );
    let _ = writeln!(
        json,
        "    \"optimized_kernel_batch32\": {},",
        smr_json(&batched32)
    );
    let _ = writeln!(
        json,
        "    \"speedup_events_per_sec_batch1\": {speedup_events:.3},"
    );
    let _ = writeln!(
        json,
        "    \"speedup_entries_per_sec_batch8\": {speedup_b8:.3},"
    );
    let _ = writeln!(
        json,
        "    \"speedup_entries_per_sec_batch32\": {speedup_b32:.3}"
    );
    json.push_str("  },\n");
    json.push_str("  \"kernel_queue_stress\": [\n");
    let rows: Vec<String> = stress
        .iter()
        .map(|r| {
            format!(
                "    {{ \"actors\": {}, \"events\": {}, \"legacy_events_per_sec\": {:.0}, \"optimized_events_per_sec\": {:.0}, \"speedup\": {:.3} }}",
                r.n,
                r.events,
                r.legacy_events_per_sec,
                r.optimized_events_per_sec,
                r.optimized_events_per_sec / r.legacy_events_per_sec
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR1.json");
    std::fs::write(out, &json).expect("write BENCH_PR1.json");
    println!("\nwrote {out}");
}
