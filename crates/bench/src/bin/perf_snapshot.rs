//! Headless perf-trajectory recorder: runs the E10 cost table, the E10b
//! replicated-log workload, the sharded multi-group log service at
//! G ∈ {1, 4, 16, 64}, the RDMA cost-model sweep (verb-cost grid ×
//! doorbell batch size), and a kernel queue-stress microbench, then writes
//! machine-readable `BENCH_PR10.json` at the repo root — and gates against
//! the newest prior `BENCH_PR*.json` (same workload size): >10% worsening
//! of a deterministic virtual-time metric or >50% wall-clock entries/sec
//! drop exits non-zero; wall-clock drops of 10–50% warn in every mode
//! (cross-machine noise band). `PERF_GATE=strict` hard-fails the
//! machine-independent extras — retired labels, the thread-sweep speedup
//! expectation — `warn` never fails, `off` skips the gate. A label the
//! prior snapshot measured
//! but this run no longer emits is a *retired label*: the gate warns
//! loudly (coverage silently lost is how regressions hide) and under
//! `PERF_GATE=strict` fails unless the comma-separated allowlist
//! `PERF_GATE_RETIRED_OK` names it.
//!
//! Reported quantities:
//!
//! * **entries/sec** — committed log entries per wall-clock second on the
//!   E10b workload; the end-to-end replicated-log throughput.
//! * **events/sec** — kernel events dispatched per wall-clock second; the
//!   direct dispatch-overhead measure, reported at batch=1 and on the
//!   queue-stress gossip where tens of thousands of events are in flight.
//! * **allocs/event** — global allocations per dispatched event, the
//!   zero-alloc-dispatch proxy.
//!
//! (Earlier snapshots also measured the retired pre-overhaul `Legacy`
//! kernel profile; its labels simply stop appearing from PR 6 on, which
//! the gate treats as a re-baseline, not a regression.)
//!
//! ```sh
//! cargo run --release -p bench --bin perf_snapshot
//! PERF_SNAPSHOT_CMDS=200000 cargo run --release -p bench --bin perf_snapshot
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use agreement::harness::{
    run_disk_paxos, run_fast_robust, run_mp_paxos, run_protected, run_robust_backup, run_sharded,
    run_smr, RunReport, Scenario, ShardedRunReport, ShardedScenario, SmrRunReport,
};
use agreement::sharded::{group_of_key, GroupMode, RebalanceConfig, WorkloadSpec};
use simnet::{
    Actor, ActorId, Context, DelayModel, Duration, EventKind, RdmaCost, Simulation, Time,
    TICKS_PER_DELAY,
};

/// This snapshot's PR number (names the output file and anchors the gate).
const PR: u32 = 10;

/// Allocation-counting wrapper around the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measured E10b run.
struct Measured {
    label: String,
    report: SmrRunReport,
    wall_secs: f64,
    allocs: u64,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        self.report.events_dispatched as f64 / self.wall_secs
    }
    fn entries_per_sec(&self) -> f64 {
        self.report.entries as f64 / self.wall_secs
    }
    fn allocs_per_event(&self) -> f64 {
        self.allocs as f64 / self.report.events_dispatched.max(1) as f64
    }
}

/// Measured runs repeat `trials()` times and keep the fastest: the gate
/// compares against a committed snapshot from a possibly quieter moment,
/// so each configuration's noise *floor* is the comparable quantity.
fn trials() -> usize {
    std::env::var("PERF_SNAPSHOT_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

fn measure_smr(label: &'static str, batch: usize, cmds: usize) -> Measured {
    let mut s = Scenario::common_case(3, 3, 5);
    s.batch = batch;
    // Budget: just enough virtual time to commit everything (2 delays per
    // batched write round) plus slack, so the run measures the commit
    // pipeline rather than a post-workload timer tail.
    s.max_delays = 2 * (cmds as u64).div_ceil(batch as u64) + 50;
    measure_smr_scenario(label.to_string(), &s, cmds)
}

/// Best-of-`trials()` measurement of one explicit E10b-style scenario
/// (the cost-model sweep tweaks the delay model, so it cannot use
/// [`measure_smr`]'s synchronous 2-delays-per-round budget).
fn measure_smr_scenario(label: String, s: &Scenario, cmds: usize) -> Measured {
    let mut best: Option<Measured> = None;
    for _ in 0..trials() {
        let before = ALLOCS.load(Ordering::Relaxed);
        let start = Instant::now();
        let report = run_smr(s, cmds);
        let wall_secs = start.elapsed().as_secs_f64();
        let allocs = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(
            report.entries, cmds,
            "{label}: workload did not fully commit"
        );
        assert!(report.logs_agree, "{label}: replicas diverged");
        if best.as_ref().is_none_or(|b| wall_secs < b.wall_secs) {
            best = Some(Measured {
                label: label.clone(),
                report,
                wall_secs,
                allocs,
            });
        }
    }
    best.expect("at least one trial")
}

/// One measured sharded-service run.
struct MeasuredShard {
    label: String,
    groups: usize,
    threads: usize,
    report: ShardedRunReport,
    wall_secs: f64,
    allocs: u64,
}

impl MeasuredShard {
    fn entries_per_sec(&self) -> f64 {
        self.report.committed as f64 / self.wall_secs
    }
    fn events_per_sec(&self) -> f64 {
        self.report.events_dispatched as f64 / self.wall_secs
    }
}

/// Best-of-`trials()` measurement of one sharded scenario; asserts every
/// trial completed safely before reporting it.
fn measure_scenario(label: String, sc: &ShardedScenario) -> MeasuredShard {
    let mut best: Option<MeasuredShard> = None;
    for _ in 0..trials() {
        let before = ALLOCS.load(Ordering::Relaxed);
        let start = Instant::now();
        let report = run_sharded(sc);
        let wall_secs = start.elapsed().as_secs_f64();
        let allocs = ALLOCS.load(Ordering::Relaxed) - before;
        assert!(report.all_committed, "{label}: workload did not complete");
        assert!(report.all_logs_agree, "{label}: replica logs diverged");
        assert!(report.no_cross_group_leak, "{label}: partition violated");
        if best.as_ref().is_none_or(|b| wall_secs < b.wall_secs) {
            best = Some(MeasuredShard {
                label: label.clone(),
                groups: sc.groups,
                threads: sc.threads,
                report,
                wall_secs,
                allocs,
            });
        }
    }
    best.expect("at least one trial")
}

/// Runs the sharded service (n=3, m=3 per group) and asserts the run was
/// complete and safe before reporting it. `partitions > 1` selects the
/// partitioned parallel kernel with `threads` workers.
#[allow(clippy::too_many_arguments)]
fn measure_sharded(
    label: String,
    groups: usize,
    batch: usize,
    window: usize,
    workload: WorkloadSpec,
    total_cmds: usize,
    partitions: usize,
    threads: usize,
) -> MeasuredShard {
    let mut sc = ShardedScenario::common_case(groups, 3, 3, 5);
    sc.batch = batch;
    sc.window = window;
    sc.workload = workload;
    sc.total_cmds = total_cmds;
    sc.partitions = partitions;
    sc.threads = threads;
    // Generous budget: the run stops at completion, not at the cap.
    sc.max_delays = 8 * (total_cmds as u64) / (groups as u64 * batch as u64).max(1) + 5_000;
    measure_scenario(label, &sc)
}

fn sharded_json(m: &MeasuredShard) -> String {
    format!(
        "{{ \"label\": \"{}\", \"groups\": {}, \"entries\": {}, \"total_log_entries\": {}, \"wall_secs\": {:.6}, \"entries_per_sec\": {:.0}, \"committed_per_delay\": {:.3}, \"elapsed_delays\": {:.1}, \"events_dispatched\": {}, \"events_per_sec\": {:.0}, \"peak_queue_len\": {}, \"allocations\": {} }}",
        m.label,
        m.groups,
        m.report.committed,
        m.report.total_entries,
        m.wall_secs,
        m.entries_per_sec(),
        m.report.committed_per_delay,
        m.report.elapsed_delays,
        m.report.events_dispatched,
        m.events_per_sec(),
        m.report.peak_queue_len,
        m.allocs,
    )
}

/// Queue-stress gossip: `n` actors, deep in-flight queues (tens of
/// thousands of scheduled events), jittered delays. This is where the
/// event-queue structure itself dominates: the legacy heap pays
/// O(log queue) payload moves per operation, the wheel O(1).
#[derive(Clone, Debug)]
struct Pkt {
    _pad: [u64; 12],
    hops: u32,
}

struct GossipNode {
    peers: u32,
    fanout: u32,
}

impl Actor<Pkt> for GossipNode {
    fn on_event(&mut self, ctx: &mut Context<'_, Pkt>, ev: EventKind<Pkt>) {
        match ev {
            EventKind::Start => {
                for i in 0..self.fanout {
                    let to = ActorId((ctx.me().0 + i + 1) % self.peers);
                    ctx.send(
                        to,
                        Pkt {
                            _pad: [0; 12],
                            hops: 12,
                        },
                    );
                }
            }
            EventKind::Msg { msg, .. } if msg.hops > 0 => {
                // Cheap deterministic peer scatter.
                let mix = (ctx.me().0 as u64)
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(msg.hops as u64 * 40_503)
                    .wrapping_add(ctx.now().0);
                let to = ActorId((mix % self.peers as u64) as u32);
                ctx.send(
                    to,
                    Pkt {
                        _pad: msg._pad,
                        hops: msg.hops - 1,
                    },
                );
            }
            _ => {}
        }
    }
}

fn stress_run(n: u32, fanout: u32) -> (f64, u64) {
    let mut sim: Simulation<Pkt> = Simulation::new(7);
    sim.set_default_delay(DelayModel::Uniform {
        lo: Duration::from_delays(1),
        hi: Duration::from_delays(8),
    });
    for _ in 0..n {
        sim.add(GossipNode { peers: n, fanout });
    }
    let start = Instant::now();
    sim.run_to_quiescence(Time::from_delays(1_000_000));
    (
        start.elapsed().as_secs_f64(),
        sim.metrics().events_dispatched,
    )
}

struct StressResult {
    n: u32,
    events: u64,
    events_per_sec: f64,
}

fn measure_stress(n: u32, fanout: u32) -> StressResult {
    let _ = stress_run(n, fanout); // warmup
    let (t, e) = stress_run(n, fanout);
    StressResult {
        n,
        events: e,
        events_per_sec: e as f64 / t,
    }
}

fn smr_json(m: &Measured) -> String {
    format!(
        "{{\n      \"label\": \"{}\",\n      \"entries\": {},\n      \"events_dispatched\": {},\n      \"wall_secs\": {:.6},\n      \"events_per_sec\": {:.0},\n      \"entries_per_sec\": {:.0},\n      \"allocations\": {},\n      \"allocs_per_event\": {:.3},\n      \"messages\": {},\n      \"mem_ops\": {},\n      \"elapsed_delays\": {:.1},\n      \"delays_per_entry\": {:.3}\n    }}",
        m.label,
        m.report.entries,
        m.report.events_dispatched,
        m.wall_secs,
        m.events_per_sec(),
        m.entries_per_sec(),
        m.allocs,
        m.allocs_per_event(),
        m.report.messages,
        m.report.mem_ops,
        m.report.elapsed_delays,
        m.report.delays_per_entry,
    )
}

/// One measured rebalance configuration, with the migration quantities
/// next to the usual service metrics (latencies reported in delays).
fn rebalance_json(m: &MeasuredShard) -> String {
    format!(
        "{{ \"label\": \"{}\", \"groups\": {}, \"threads\": {}, \"entries\": {}, \"wall_secs\": {:.6}, \"entries_per_sec\": {:.0}, \"committed_per_delay\": {:.3}, \"tail_committed_per_delay\": {:.3}, \"elapsed_delays\": {:.1}, \"service_p50_delays\": {:.1}, \"service_p99_delays\": {:.1}, \"migrations\": {}, \"rerouted_commands\": {}, \"routing_table_version\": {}, \"events_dispatched\": {}, \"allocations\": {} }}",
        m.label,
        m.groups,
        m.threads,
        m.report.committed,
        m.wall_secs,
        m.entries_per_sec(),
        m.report.committed_per_delay,
        m.report.tail_committed_per_delay,
        m.report.elapsed_delays,
        m.report.service_p50_latency_ticks as f64 / TICKS_PER_DELAY as f64,
        m.report.service_p99_latency_ticks as f64 / TICKS_PER_DELAY as f64,
        m.report.migrations_completed,
        m.report.rerouted_commands,
        m.report.routing_table_version,
        m.report.events_dispatched,
        m.allocs,
    )
}

fn protocol_json(name: &str, r: &RunReport) -> String {
    format!(
        "{{ \"protocol\": \"{}\", \"first_decision_delays\": {}, \"messages\": {}, \"mem_ops\": {}, \"all_decided\": {}, \"agreement\": {} }}",
        name,
        r.first_decision_delays.map_or("null".to_string(), |d| format!("{d:.1}")),
        r.messages,
        r.mem_ops,
        r.all_decided,
        r.agreement,
    )
}

fn main() {
    let cmds: usize = std::env::var("PERF_SNAPSHOT_CMDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    // PERF_GATE is parsed once; the thread-sweep expectation and the
    // end-of-run regression gate must agree on what the mode means.
    let gate_mode = std::env::var("PERF_GATE").unwrap_or_default();
    let gate_strict = gate_mode == "strict";

    println!("perf_snapshot: E10 common-case table (n=3, m=3, seed=1)");
    let s = Scenario::common_case(3, 3, 1);
    let table: Vec<(&str, RunReport)> = vec![
        ("mp_paxos", run_mp_paxos(&s)),
        ("disk_paxos", run_disk_paxos(&s)),
        ("protected_memory_paxos", run_protected(&s)),
        ("fast_robust", run_fast_robust(&s, 60).0),
        ("robust_backup", run_robust_backup(&s).0),
    ];
    for (name, r) in &table {
        println!(
            "  {name:<24} {:>6} delays {:>8} msgs {:>6} mem ops",
            r.first_decision_delays
                .map_or("-".into(), |d| format!("{d:.1}")),
            r.messages,
            r.mem_ops
        );
    }

    println!("\nperf_snapshot: E10b replicated log, {cmds} commands (n=3, m=3)");
    // Warm-up run so cold-start effects (page faults, lazy init) do not
    // land on the first measured configuration.
    let _ = measure_smr("warmup", 1, cmds.min(10_000));

    let optimized = measure_smr("optimized_kernel_batch1", 1, cmds);
    let batched8 = measure_smr("optimized_kernel_batch8", 8, cmds);
    let batched32 = measure_smr("optimized_kernel_batch32", 32, cmds);

    for m in [&optimized, &batched8, &batched32] {
        println!(
            "  {:<26} {:>11.0} events/s {:>11.0} entries/s {:>7.3} allocs/event ({:.3}s)",
            m.label,
            m.events_per_sec(),
            m.entries_per_sec(),
            m.allocs_per_event(),
            m.wall_secs
        );
    }

    let speedup_b8 = batched8.entries_per_sec() / optimized.entries_per_sec();
    let speedup_b32 = batched32.entries_per_sec() / optimized.entries_per_sec();
    println!("\n  batching speedup (entries/sec, batch=8 vs 1):  {speedup_b8:.2}x");
    println!("  batching speedup (entries/sec, batch=32 vs 1): {speedup_b32:.2}x");

    println!(
        "\nperf_snapshot: sharded log service, {cmds} total commands (3x3 per group, batch=8)"
    );
    let mut sharded: Vec<MeasuredShard> = Vec::new();
    for &groups in &[1usize, 4, 16, 64] {
        sharded.push(measure_sharded(
            format!("sharded_g{groups}_optimized"),
            groups,
            8,
            0, // open loop: the max-throughput configuration
            WorkloadSpec::uniform(),
            cmds,
            1,
            1,
        ));
    }
    // One closed-loop skewed config: the service-latency story.
    let zipf = measure_sharded(
        "sharded_g4_zipf_closed_loop".to_string(),
        4,
        8,
        16,
        WorkloadSpec::Zipf {
            keys: 4096,
            s: 0.99,
        },
        cmds,
        1,
        1,
    );
    for m in sharded.iter().chain([&zipf]) {
        println!(
            "  {:<28} {:>11.0} entries/s {:>8.2} cmds/delay {:>10.0} events/s  peak-q {:>6} ({:.3}s)",
            m.label,
            m.entries_per_sec(),
            m.report.committed_per_delay,
            m.events_per_sec(),
            m.report.peak_queue_len,
            m.wall_secs,
        );
    }
    let shard_of = |groups: usize| {
        sharded
            .iter()
            .find(|m| m.label == format!("sharded_g{groups}_optimized"))
            .expect("measured")
    };
    let g1_ratio = shard_of(1).entries_per_sec() / batched8.entries_per_sec();
    println!("\n  G=1 open loop vs E10b batch=8 (entries/sec):  {g1_ratio:.2}x");
    for &groups in &[1usize, 4, 16, 64] {
        let scaling =
            shard_of(groups).report.committed_per_delay / shard_of(1).report.committed_per_delay;
        println!("  G={groups:<2} virtual-time scaling {scaling:.2}x vs G=1");
    }

    // Partitioned-kernel thread sweep: the same open-loop service on the
    // partitioned parallel kernel (8 partitions, groups in contiguous
    // blocks, router on partition 0) with 1, 2, and 4 worker threads.
    // Virtual-time metrics must be bit-identical across the sweep (the
    // kernel's determinism contract); wall-clock entries/sec is where the
    // threads show up — on hardware that has cores to give. This container
    // may be single-core, so the ≥1.5x 4-thread expectation is enforced
    // only when the host actually exposes ≥4 CPUs (PERF_GATE=strict makes
    // a miss fatal there).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nperf_snapshot: partitioned kernel thread sweep, {cmds} commands \
         (8 partitions, host has {cores} cpus)"
    );
    let mut sweep: Vec<MeasuredShard> = Vec::new();
    for &groups in &[8usize, 16] {
        for &threads in &[1usize, 2, 4] {
            sweep.push(measure_sharded(
                format!("par_g{groups}_p8_t{threads}"),
                groups,
                8,
                0,
                WorkloadSpec::uniform(),
                cmds,
                8,
                threads,
            ));
        }
    }
    for m in &sweep {
        println!(
            "  {:<20} {:>11.0} entries/s {:>8.2} cmds/delay {:>10.0} events/s ({:.3}s)",
            m.label,
            m.entries_per_sec(),
            m.report.committed_per_delay,
            m.events_per_sec(),
            m.wall_secs,
        );
    }
    let sweep_of = |groups: usize, threads: usize| {
        sweep
            .iter()
            .find(|m| m.label == format!("par_g{groups}_p8_t{threads}"))
            .expect("measured")
    };
    let mut sweep_gate_failed = false;
    for &groups in &[8usize, 16] {
        let t1 = sweep_of(groups, 1);
        // Determinism across the sweep: everything virtual-time must match
        // the single-thread run exactly.
        for &threads in &[2usize, 4] {
            let tn = sweep_of(groups, threads);
            assert_eq!(
                t1.report.committed, tn.report.committed,
                "G={groups}: thread count changed committed"
            );
            assert_eq!(
                t1.report.elapsed_delays, tn.report.elapsed_delays,
                "G={groups}: thread count changed virtual time"
            );
            assert_eq!(
                t1.report.events_dispatched, tn.report.events_dispatched,
                "G={groups}: thread count changed the event schedule"
            );
            assert_eq!(
                t1.report.partition_peak_queue_lens, tn.report.partition_peak_queue_lens,
                "G={groups}: thread count changed queue dynamics"
            );
        }
        let s2 = sweep_of(groups, 2).entries_per_sec() / t1.entries_per_sec();
        let s4 = sweep_of(groups, 4).entries_per_sec() / t1.entries_per_sec();
        println!(
            "  G={groups:<2} virtual-time metrics thread-invariant; wall speedup \
             2t {s2:.2}x, 4t {s4:.2}x"
        );
        if s4 < 1.5 {
            if cores >= 4 {
                println!(
                    "  {}: G={groups} 4-thread speedup {s4:.2}x below the 1.5x \
                     target on a {cores}-cpu host",
                    if gate_strict { "REGRESSION" } else { "warning" },
                );
                sweep_gate_failed |= gate_strict;
            } else {
                println!(
                    "  note: G={groups} 4-thread speedup {s4:.2}x — host exposes \
                     only {cores} cpu(s), wall-clock scaling is not measurable here"
                );
            }
        }
    }
    // A strict-mode sweep miss is reported now but only fails the process
    // after the snapshot is written and the main regression gate has run,
    // so a failing run still leaves BENCH_PR*.json behind for diagnosis.

    // Rebalancing under skew. Two adversarial key streams, each measured
    // under the three placements (static hash, static range table, range
    // table + auto-rebalancer):
    //
    // * **zipf(0.99)** — the head ranks are *adjacent small keys*, so the
    //   even version-0 range table pins the whole head onto group 0
    //   (static hash dodges this one by scattering adjacent keys).
    // * **hot set** — 80% of traffic on 8 hot keys picked to collide on
    //   ONE group under the hash AND to sit inside one group's range: no
    //   static placement survives it; only per-key migration can isolate
    //   each hot key onto its own group ("the hot range splits").
    //
    // `tail_committed_per_delay` (the run's last virtual-time quartile)
    // is the post-convergence rate — recovery after the splits — while
    // committed_per_delay still averages in the skewed transient.
    let rebal_cmds = (cmds / 2).max(1_000);
    println!(
        "\nperf_snapshot: shard rebalancing, {rebal_cmds} commands \
         (G=8, batch=8, window=64)"
    );
    let rebal_scenario = |workload: WorkloadSpec| -> ShardedScenario {
        let mut sc = ShardedScenario::common_case(8, 3, 3, 5);
        sc.batch = 8;
        // A deep window lets queueing delay reach the hot leader (and
        // therefore the latency percentiles) instead of hiding entirely
        // in the router's backlog.
        sc.window = 64;
        sc.workload = workload;
        sc.total_cmds = rebal_cmds;
        // Offered load at half the balanced capacity (G·batch/2 = 32
        // cmds/delay): a balanced placement absorbs it easily, while a
        // group fed a hot set's 80%+ share saturates and its queue — and
        // therefore the service latency tail — grows until the hot range
        // splits.
        sc.arrival_rate_per_delay = 16.0;
        // The skewed static runs serialize most commands through one
        // group; budget for that worst case.
        sc.max_delays = rebal_cmds as u64 + 10_000;
        sc
    };
    // Hysteresis on (PR 6): a migrated range holds its new placement for
    // at least `min_hold_delays`, so an oscillating hot key cannot
    // ping-pong between groups. The auto labels carry a `_hold` suffix so
    // the gate re-baselines them instead of comparing against the
    // hysteresis-free PR 5 numbers.
    let auto_cfg = RebalanceConfig {
        check_every_delays: 40,
        cooldown_delays: 15,
        hot_group_permille: 250,
        hot_key_permille: 30,
        min_window_commits: 64,
        min_hold_delays: 120,
    };
    let zipf_wl = WorkloadSpec::Zipf {
        keys: 4096,
        s: 0.99,
    };
    // Eight keys inside the even table's group-0 range [0, 512) that all
    // hash to one group: hot under both static placements.
    let hash_target = group_of_key(0, 8);
    let hot_keys: Vec<u64> = (0..512)
        .filter(|&k| group_of_key(k, 8) == hash_target)
        .take(8)
        .collect();
    assert_eq!(hot_keys.len(), 8, "not enough hash-colliding keys");
    let hotset_wl = WorkloadSpec::HotSet {
        keys: 4096,
        hot_keys,
        hot_permille: 800,
    };
    let mut rebal: Vec<MeasuredShard> = Vec::new();
    for (wl_name, wl) in [("zipf", &zipf_wl), ("hotset", &hotset_wl)] {
        let sc = rebal_scenario(wl.clone());
        rebal.push(measure_scenario(
            format!("rebalance_{wl_name}_hash_static"),
            &sc,
        ));
        let mut sc = rebal_scenario(wl.clone());
        sc.range_routing = true;
        rebal.push(measure_scenario(
            format!("rebalance_{wl_name}_range_static"),
            &sc,
        ));
        let mut sc = rebal_scenario(wl.clone());
        sc.rebalance = Some(auto_cfg);
        rebal.push(measure_scenario(
            format!("rebalance_{wl_name}_range_auto_hold"),
            &sc,
        ));
    }
    // Determinism with migrations in flight: the hot-set auto config on
    // the partitioned kernel must be bit-identical across worker threads.
    let mut rebal_sweep: Vec<MeasuredShard> = Vec::new();
    for &threads in &[1usize, 2, 4] {
        let mut sc = rebal_scenario(hotset_wl.clone());
        sc.rebalance = Some(auto_cfg);
        sc.partitions = 4;
        sc.threads = threads;
        rebal_sweep.push(measure_scenario(
            format!("rebalance_auto_hold_p4_t{threads}"),
            &sc,
        ));
    }
    for m in rebal.iter().chain(&rebal_sweep) {
        println!(
            "  {:<30} {:>7.2} cmds/delay {:>7.2} tail {:>7.1} p99(d) {:>6.0} delays {:>3} migrations {:>5} rerouted ({:.3}s)",
            m.label,
            m.report.committed_per_delay,
            m.report.tail_committed_per_delay,
            m.report.service_p99_latency_ticks as f64 / TICKS_PER_DELAY as f64,
            m.report.elapsed_delays,
            m.report.migrations_completed,
            m.report.rerouted_commands,
            m.wall_secs,
        );
    }
    for (a, b) in [
        (&rebal_sweep[0], &rebal_sweep[1]),
        (&rebal_sweep[0], &rebal_sweep[2]),
    ] {
        assert_eq!(
            (
                a.report.committed,
                a.report.elapsed_delays,
                a.report.events_dispatched
            ),
            (
                b.report.committed,
                b.report.elapsed_delays,
                b.report.events_dispatched
            ),
            "rebalance: thread count changed the migrating run"
        );
        assert_eq!(
            (
                a.report.migrations_completed,
                a.report.routing_table_version
            ),
            (
                b.report.migrations_completed,
                b.report.routing_table_version
            ),
            "rebalance: thread count changed the migration history"
        );
    }
    let rebal_of = |label: &str| {
        rebal
            .iter()
            .find(|m| m.label == label)
            .expect("measured rebalance config")
    };
    let zipf_auto = rebal_of("rebalance_zipf_range_auto_hold");
    let zipf_static = rebal_of("rebalance_zipf_range_static");
    let hot_auto = rebal_of("rebalance_hotset_range_auto_hold");
    let hot_hash = rebal_of("rebalance_hotset_hash_static");
    assert!(
        zipf_auto.report.migrations_completed >= 1 && hot_auto.report.migrations_completed >= 1,
        "rebalance: the policy never triggered"
    );
    let zipf_recovery =
        zipf_auto.report.committed_per_delay / zipf_static.report.committed_per_delay;
    let hot_recovery = hot_auto.report.committed_per_delay / hot_hash.report.committed_per_delay;
    let hot_tail_recovery =
        hot_auto.report.tail_committed_per_delay / hot_hash.report.tail_committed_per_delay;
    let hot_p99_recovery = hot_hash.report.service_p99_latency_ticks as f64
        / hot_auto.report.service_p99_latency_ticks.max(1) as f64;
    println!(
        "\n  zipf: auto vs static range table {zipf_recovery:.2}x cmds/delay \
         ({} migrations)",
        zipf_auto.report.migrations_completed
    );
    println!(
        "  hot set: auto-rebalance vs static hash {hot_recovery:.2}x cmds/delay, \
         {hot_tail_recovery:.2}x tail, {hot_p99_recovery:.2}x p99 \
         ({} migrations, thread-sweep bit-identical)",
        hot_auto.report.migrations_completed
    );
    assert!(
        zipf_recovery > 1.10,
        "rebalance regressed: zipf auto only {zipf_recovery:.2}x of static range routing"
    );
    assert!(
        hot_recovery > 1.10,
        "rebalance regressed: hot-set auto only {hot_recovery:.2}x of static hashing"
    );

    // Byzantine-mode sharded service (new in PR 5): the same G=4 service
    // with every group replicating through signed non-equivocating
    // broadcast instead of crash PMP. Three configs against a same-sized
    // crash baseline: failure-free, f = 1 silent Byzantine replica per
    // group (the n = 2f+1 bound), and an equivocating leader suppressed
    // by the audit + confirmation quorum and replaced by scripted
    // failover. The crash/Byzantine throughput gap is the paper's
    // broadcast price (one delivery is ~6 delays, footnote 2) — recorded
    // here so the trajectory shows it honestly.
    let byz_cmds = (cmds / 10).max(1_000);
    println!(
        "\nperf_snapshot: Byzantine-mode sharded service, {byz_cmds} commands \
         (G=4, batch=8, window=16)"
    );
    let byz_scenario = |modes: Vec<GroupMode>| -> ShardedScenario {
        let mut sc = ShardedScenario::common_case(4, 3, 3, 5);
        sc.batch = 8;
        sc.window = 16;
        sc.total_cmds = byz_cmds;
        sc.group_modes = modes;
        // Byzantine commits cost ~10 delays per batch pipeline stage;
        // budget generously so the run ends at completion, not the cap.
        sc.max_delays = 60 * (byz_cmds as u64) / 32 + 10_000;
        sc
    };
    let all_byz = vec![GroupMode::Byzantine; 4];
    let byz_baseline = measure_scenario(
        "byzantine_g4_crash_baseline".to_string(),
        &byz_scenario(Vec::new()),
    );
    let byz_clean = measure_scenario(
        "byzantine_g4_clean".to_string(),
        &byz_scenario(all_byz.clone()),
    );
    let byz_silent = {
        let mut sc = byz_scenario(all_byz.clone());
        sc.byz_silent = (0..4).map(|g| (g, 2)).collect();
        measure_scenario("byzantine_g4_f1_silent".to_string(), &sc)
    };
    let byz_equiv = {
        let mut sc = byz_scenario(all_byz);
        sc.byz_equivocators = vec![(3, 0)];
        sc.announce = vec![(3, 1, 80)];
        measure_scenario("byzantine_g4_equivocating_leader".to_string(), &sc)
    };
    let byz_all = [&byz_baseline, &byz_clean, &byz_silent, &byz_equiv];
    for m in byz_all {
        println!(
            "  {:<32} {:>8.2} cmds/delay {:>7.1} p99(d) {:>7.0} delays {:>4} equiv-blocked {:>5} unconfirmed ({:.3}s)",
            m.label,
            m.report.committed_per_delay,
            m.report.service_p99_latency_ticks as f64 / TICKS_PER_DELAY as f64,
            m.report.elapsed_delays,
            m.report.equivocations_blocked,
            m.report.byz_unconfirmed_claims,
            m.wall_secs,
        );
    }
    let byz_price = byz_baseline.report.committed_per_delay / byz_clean.report.committed_per_delay;
    println!(
        "\n  crash PMP vs Byzantine broadcast (virtual-time throughput): {byz_price:.2}x \
         — the paper's non-equivocation price"
    );
    assert!(
        byz_equiv.report.equivocations_blocked > 0 && byz_equiv.report.byz_withheld_reports > 0,
        "byzantine: the adversary config exercised no suppression path"
    );

    // Pipelined signed broadcast (new in PR 8): the same G=4 all-Byzantine
    // service swept across pipeline windows {1, 2, 4, 8}, conservative
    // versus speculative fast-path commit, against a crash baseline at the
    // same router window. The router window is 64 here (not the section
    // above's 16): a 16-command window holds only two batches of 8 in
    // flight, which starves any pipeline deeper than 2 — the sweep would
    // plateau at the router, not the broadcast engine. Window 1
    // conservative is the classic one-slot engine (bit-identical to PR 7);
    // the headline config (window 8 + fast path) is gated at ≤3x the
    // crash baseline — the ISSUE 8 target for closing the Byzantine
    // throughput gap.
    println!(
        "\nperf_snapshot: pipelined Byzantine broadcast, {byz_cmds} commands \
         (G=4, batch=8, window=64)"
    );
    let pipe_scenario = |pipeline: usize, fast: bool| -> ShardedScenario {
        let mut sc = byz_scenario(vec![GroupMode::Byzantine; 4]);
        sc.window = 64;
        sc.byz_pipeline_window = pipeline;
        sc.byz_fast_path = fast;
        sc
    };
    let pipe_crash = {
        let mut sc = byz_scenario(Vec::new());
        sc.window = 64;
        measure_scenario("byz_pipeline_crash_baseline".to_string(), &sc)
    };
    let mut pipe: Vec<MeasuredShard> = Vec::new();
    for &w in &[1usize, 2, 4, 8] {
        for &fast in &[false, true] {
            let label = format!(
                "byz_pipeline_w{w}_{}",
                if fast { "fast" } else { "conservative" }
            );
            pipe.push(measure_scenario(label, &pipe_scenario(w, fast)));
        }
    }
    let pipe_gap =
        |m: &MeasuredShard| pipe_crash.report.committed_per_delay / m.report.committed_per_delay;
    println!(
        "  {:<28} {:>8.2} cmds/delay          (crash baseline)",
        pipe_crash.label, pipe_crash.report.committed_per_delay,
    );
    for m in &pipe {
        println!(
            "  {:<28} {:>8.2} cmds/delay {:>6.2}x gap {:>6} fast-commits {:>6} fast-confirms ({:.3}s)",
            m.label,
            m.report.committed_per_delay,
            pipe_gap(m),
            m.report.byz_fast_commits,
            m.report.byz_fast_confirms,
            m.wall_secs,
        );
    }
    let headline = pipe.last().expect("w8 fast measured");
    let headline_gap = pipe_gap(headline);
    println!(
        "\n  headline (window 8 + fast path): {headline_gap:.2}x of crash \
         (target ≤3x; window-1 conservative was {:.2}x)",
        pipe_gap(&pipe[0]),
    );
    assert!(
        headline_gap <= 3.0,
        "byz_pipeline: headline gap {headline_gap:.2}x exceeds the 3x target"
    );
    assert!(
        headline.report.byz_fast_commits > 0 && headline.report.byz_fast_confirms > 0,
        "byz_pipeline: the fast path never engaged in the headline config"
    );

    // Observability (new in PR 7): the same G=4 crash and Byzantine
    // services with command-lifecycle span recording switched on. Two
    // quantities: the per-stage latency histograms (where the Byzantine
    // broadcast price lands, stage by stage), and the wall-clock price of
    // tracing itself — the fully traced run (events + spans recorded)
    // re-measured against the untraced one. Tracing is read-only, so the
    // traced report stripped of its span stats must equal the untraced
    // report bit-for-bit; that is asserted here on every snapshot. The
    // *disabled*-instrumentation cost (span marks compiled in but guarded
    // off) is what every other configuration in this snapshot now pays,
    // so it is gated against BENCH_PR6 by the ordinary per-label gate.
    println!("\nperf_snapshot: observability, {byz_cmds} commands (G=4, batch=8, spans on)");
    let obs_crash_sc = byz_scenario(Vec::new());
    let obs_untraced =
        measure_scenario("observability_g4_crash_untraced".to_string(), &obs_crash_sc);
    let obs_traced = {
        let mut sc = obs_crash_sc.clone();
        sc.record_events = true;
        sc.record_spans = true;
        measure_scenario("observability_g4_crash_traced".to_string(), &sc)
    };
    {
        let mut stripped = obs_traced.report.clone();
        stripped.span_stats = Vec::new();
        assert_eq!(
            stripped, obs_untraced.report,
            "observability: tracing perturbed the run"
        );
    }
    let trace_overhead = obs_untraced.entries_per_sec() / obs_traced.entries_per_sec();
    let crash_spans = obs_traced.report.span_stats.clone();
    let byz_spans = {
        let mut sc = byz_scenario(vec![GroupMode::Byzantine; 4]);
        sc.record_spans = true;
        run_sharded(&sc).span_stats
    };
    println!(
        "  traced vs untraced (crash G=4): {:.0} vs {:.0} entries/s \
         ({trace_overhead:.2}x full-tracing cost; virtual-time bit-identical)",
        obs_traced.entries_per_sec(),
        obs_untraced.entries_per_sec(),
    );
    println!("  config     stage    group-0 p50(d)  p99(d)   (all groups in the JSON)");
    for (cfg, stats) in [("crash", &crash_spans), ("byzantine", &byz_spans)] {
        let g0 = stats.first().expect("G=4 span stats");
        for stage in &g0.stages {
            println!(
                "  {cfg:<9}  {:<8} {:>14.2}  {:>6.2}",
                stage.stage,
                stage.hist.p50() as f64 / TICKS_PER_DELAY as f64,
                stage.hist.p99() as f64 / TICKS_PER_DELAY as f64,
            );
        }
    }

    // RDMA cost model (new in PR 10): the E10b replicated log and the
    // sharded G=4 open-loop service re-measured under DelayModel::Rdma —
    // a verb-cost grid (baseline / write-optimized / congested) crossed
    // with doorbell batch sizes {1, 8}. Under this model the SMR write
    // path's batched rounds are genuinely RDMA-shaped: a burst of k slot
    // writes is one WriteMany posting charged one doorbell + k per-WR
    // increments + payload, so batching shows up as amortized *delay*,
    // not just fewer messages. The headline claim — doorbell-batched
    // writes beat per-slot writes on cmds/delay — is asserted per preset,
    // and a 1/2/4-thread partitioned sweep pins bit-identity under the
    // new model (its min_cost() is the lookahead the partitioned kernel
    // synchronizes on).
    let cost_cmds = (cmds / 10).max(1_000);
    println!(
        "\nperf_snapshot: RDMA cost model sweep, {cost_cmds} commands \
         (verb-cost grid x doorbell batch, E10b + sharded G=4)"
    );
    let cost_presets: [(&str, RdmaCost); 3] = [
        ("baseline", RdmaCost::baseline()),
        ("write_opt", RdmaCost::write_optimized()),
        ("congested", RdmaCost::congested()),
    ];
    let cost_batches = [1usize, 8];
    let mut cost_smr: Vec<Measured> = Vec::new();
    let mut cost_shard: Vec<MeasuredShard> = Vec::new();
    for (name, preset) in &cost_presets {
        for &batch in &cost_batches {
            let mut s = Scenario::common_case(3, 3, 5);
            s.delay = DelayModel::Rdma(preset.clone());
            s.batch = batch;
            // Worst preset charges ~3.5 delays per round trip; budget on
            // that ceiling so every run ends at completion, not the cap.
            s.max_delays = 8 * (cost_cmds as u64).div_ceil(batch as u64) + 500;
            cost_smr.push(measure_smr_scenario(
                format!("cost_{name}_b{batch}_e10b"),
                &s,
                cost_cmds,
            ));
            let mut sc = ShardedScenario::common_case(4, 3, 3, 5);
            sc.delay = DelayModel::Rdma(preset.clone());
            sc.batch = batch;
            sc.window = 0; // open loop: the max-throughput configuration
            sc.total_cmds = cost_cmds;
            sc.max_delays = 16 * (cost_cmds as u64) / (4 * batch as u64) + 5_000;
            cost_shard.push(measure_scenario(format!("cost_{name}_b{batch}_g4"), &sc));
        }
    }
    // Adaptive doorbell batching at the headline preset: a closed loop
    // whose backlog depth varies, so rounds pack min(backlog, cap) slots.
    let cost_adaptive = {
        let mut sc = ShardedScenario::common_case(4, 3, 3, 5);
        sc.delay = DelayModel::Rdma(RdmaCost::baseline());
        sc.batch = 1;
        sc.adaptive_batch = 16;
        sc.window = 16;
        sc.total_cmds = cost_cmds;
        sc.max_delays = 16 * (cost_cmds as u64) + 5_000;
        measure_scenario("cost_baseline_adaptive16_g4".to_string(), &sc)
    };
    for m in &cost_smr {
        println!(
            "  {:<26} {:>8.3} delays/entry {:>11.0} entries/s ({:.3}s)",
            m.label,
            m.report.delays_per_entry,
            m.entries_per_sec(),
            m.wall_secs
        );
    }
    for m in cost_shard.iter().chain([&cost_adaptive]) {
        println!(
            "  {:<26} {:>8.2} cmds/delay {:>11.0} entries/s ({:.3}s)",
            m.label,
            m.report.committed_per_delay,
            m.entries_per_sec(),
            m.wall_secs
        );
    }
    let cost_g4_of = |label: String| {
        cost_shard
            .iter()
            .find(|m| m.label == label)
            .expect("measured cost config")
    };
    let cost_e10b_of = |label: String| {
        cost_smr
            .iter()
            .find(|m| m.label == label)
            .expect("measured cost config")
    };
    let mut cost_ratios: Vec<String> = Vec::new();
    for (name, _) in &cost_presets {
        let b1 = cost_g4_of(format!("cost_{name}_b1_g4"));
        let b8 = cost_g4_of(format!("cost_{name}_b8_g4"));
        let ratio = b8.report.committed_per_delay / b1.report.committed_per_delay;
        println!("  {name}: doorbell-batched (b8) vs per-slot (b1) on G=4: {ratio:.2}x cmds/delay");
        assert!(
            ratio > 1.0,
            "cost_model: {name} batched writes did not beat per-slot writes ({ratio:.2}x)"
        );
        let e1 = cost_e10b_of(format!("cost_{name}_b1_e10b"));
        let e8 = cost_e10b_of(format!("cost_{name}_b8_e10b"));
        assert!(
            e8.report.delays_per_entry < e1.report.delays_per_entry,
            "cost_model: {name} batching did not amortize delays/entry on E10b"
        );
        cost_ratios.push(format!("\"{name}\": {ratio:.3}"));
    }
    // Partitioned-kernel bit-identity under the RDMA cost model: the
    // lookahead is RdmaCost::min_cost(), a true lower bound over every
    // verb/size/batch charge — so 1, 2, and 4 worker threads must
    // produce the identical run.
    let mut cost_sweep: Vec<MeasuredShard> = Vec::new();
    for &threads in &[1usize, 2, 4] {
        let mut sc = ShardedScenario::common_case(4, 3, 3, 5);
        sc.delay = DelayModel::Rdma(RdmaCost::baseline());
        sc.batch = 8;
        sc.window = 0;
        sc.total_cmds = cost_cmds;
        sc.partitions = 4;
        sc.threads = threads;
        sc.max_delays = 16 * (cost_cmds as u64) / 32 + 5_000;
        cost_sweep.push(measure_scenario(
            format!("cost_baseline_b8_p4_t{threads}"),
            &sc,
        ));
    }
    for tn in &cost_sweep[1..] {
        let t1 = &cost_sweep[0];
        assert_eq!(
            (
                t1.report.committed,
                t1.report.elapsed_delays,
                t1.report.events_dispatched,
                &t1.report.partition_peak_queue_lens,
            ),
            (
                tn.report.committed,
                tn.report.elapsed_delays,
                tn.report.events_dispatched,
                &tn.report.partition_peak_queue_lens,
            ),
            "cost_model: thread count changed the run under DelayModel::Rdma"
        );
    }
    println!(
        "  partitioned sweep (p4, t1/2/4) bit-identical under RDMA model; \
         adaptive cap 16 vs fixed b8 closed-loop: {:.2}x cmds/delay",
        cost_adaptive.report.committed_per_delay
            / cost_g4_of("cost_baseline_b8_g4".to_string())
                .report
                .committed_per_delay
    );

    println!("\nperf_snapshot: kernel queue stress (gossip, deep in-flight queues)");
    let stress: Vec<StressResult> = vec![measure_stress(5_000, 40), measure_stress(20_000, 60)];
    for r in &stress {
        println!(
            "  n={:<6} events={:<9} {:>9.0} ev/s",
            r.n, r.events, r.events_per_sec,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench-snapshot-v1\",\n");
    let _ = writeln!(json, "  \"pr\": {PR},");
    json.push_str(&format!("  \"workload_commands\": {cmds},\n"));
    json.push_str("  \"e10_common_case\": [\n");
    let rows: Vec<String> = table
        .iter()
        .map(|(name, r)| format!("    {}", protocol_json(name, r)))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"e10b_replicated_log\": {\n");
    let _ = writeln!(
        json,
        "    \"optimized_kernel_batch1\": {},",
        smr_json(&optimized)
    );
    let _ = writeln!(
        json,
        "    \"optimized_kernel_batch8\": {},",
        smr_json(&batched8)
    );
    let _ = writeln!(
        json,
        "    \"optimized_kernel_batch32\": {},",
        smr_json(&batched32)
    );
    let _ = writeln!(
        json,
        "    \"batching_speedup_entries_per_sec_b8\": {speedup_b8:.3},"
    );
    let _ = writeln!(
        json,
        "    \"batching_speedup_entries_per_sec_b32\": {speedup_b32:.3}"
    );
    json.push_str("  },\n");
    json.push_str("  \"sharded_log\": {\n");
    let _ = writeln!(json, "    \"total_commands\": {cmds},");
    json.push_str("    \"configs\": [\n");
    let rows: Vec<String> = sharded
        .iter()
        .chain([&zipf])
        .map(|m| format!("      {}", sharded_json(m)))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n    ],\n");
    let _ = writeln!(
        json,
        "    \"g1_open_loop_vs_e10b_batch8_ratio\": {g1_ratio:.3},"
    );
    let scaling: Vec<String> = [1usize, 4, 16, 64]
        .iter()
        .map(|&g| {
            format!(
                "\"g{g}\": {:.3}",
                shard_of(g).report.committed_per_delay / shard_of(1).report.committed_per_delay
            )
        })
        .collect();
    let _ = writeln!(
        json,
        "    \"scaling_committed_per_delay_vs_g1\": {{ {} }}",
        scaling.join(", ")
    );
    json.push_str("  },\n");
    json.push_str("  \"parallel_kernel\": {\n");
    let _ = writeln!(json, "    \"available_parallelism\": {cores},");
    json.push_str("    \"partitions\": 8,\n");
    json.push_str("    \"configs\": [\n");
    let rows: Vec<String> = sweep
        .iter()
        .map(|m| {
            let peaks: Vec<String> = m
                .report
                .partition_peak_queue_lens
                .iter()
                .map(u64::to_string)
                .collect();
            format!(
                "      {{ \"label\": \"{}\", \"groups\": {}, \"threads\": {}, \"entries\": {}, \"wall_secs\": {:.6}, \"entries_per_sec\": {:.0}, \"committed_per_delay\": {:.3}, \"elapsed_delays\": {:.1}, \"events_dispatched\": {}, \"events_per_sec\": {:.0}, \"partition_peak_queue_lens\": [{}] }}",
                m.label,
                m.groups,
                m.threads,
                m.report.committed,
                m.wall_secs,
                m.entries_per_sec(),
                m.report.committed_per_delay,
                m.report.elapsed_delays,
                m.report.events_dispatched,
                m.events_per_sec(),
                peaks.join(", "),
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n    ],\n");
    let sweep_speedups: Vec<String> = [8usize, 16]
        .iter()
        .map(|&g| {
            format!(
                "\"g{g}_2t\": {:.3}, \"g{g}_4t\": {:.3}",
                sweep_of(g, 2).entries_per_sec() / sweep_of(g, 1).entries_per_sec(),
                sweep_of(g, 4).entries_per_sec() / sweep_of(g, 1).entries_per_sec()
            )
        })
        .collect();
    let _ = writeln!(
        json,
        "    \"wall_speedup_vs_1_thread\": {{ {} }}",
        sweep_speedups.join(", ")
    );
    json.push_str("  },\n");
    json.push_str("  \"rebalance\": {\n");
    let _ = writeln!(json, "    \"total_commands\": {rebal_cmds},");
    json.push_str("    \"configs\": [\n");
    let rows: Vec<String> = rebal
        .iter()
        .chain(&rebal_sweep)
        .map(|m| format!("      {}", rebalance_json(m)))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n    ],\n");
    let _ = writeln!(
        json,
        "    \"zipf_auto_vs_static_range_committed_per_delay\": {zipf_recovery:.3},"
    );
    let _ = writeln!(
        json,
        "    \"hotset_auto_vs_static_hash\": {{ \"committed_per_delay\": {hot_recovery:.3}, \"tail_committed_per_delay\": {hot_tail_recovery:.3}, \"service_p99\": {hot_p99_recovery:.3} }}"
    );
    json.push_str("  },\n");
    json.push_str("  \"byzantine\": {\n");
    let _ = writeln!(json, "    \"total_commands\": {byz_cmds},");
    json.push_str("    \"configs\": [\n");
    let rows: Vec<String> = byz_all
        .iter()
        .map(|m| {
            format!(
                "      {{ \"label\": \"{}\", \"groups\": {}, \"entries\": {}, \"wall_secs\": {:.6}, \"entries_per_sec\": {:.0}, \"committed_per_delay\": {:.3}, \"elapsed_delays\": {:.1}, \"service_p50_delays\": {:.1}, \"service_p99_delays\": {:.1}, \"duplicates_suppressed\": {}, \"equivocations_blocked\": {}, \"byz_unconfirmed_claims\": {}, \"byz_withheld_reports\": {}, \"events_dispatched\": {}, \"allocations\": {} }}",
                m.label,
                m.groups,
                m.report.committed,
                m.wall_secs,
                m.entries_per_sec(),
                m.report.committed_per_delay,
                m.report.elapsed_delays,
                m.report.service_p50_latency_ticks as f64 / TICKS_PER_DELAY as f64,
                m.report.service_p99_latency_ticks as f64 / TICKS_PER_DELAY as f64,
                m.report.duplicates_suppressed,
                m.report.equivocations_blocked,
                m.report.byz_unconfirmed_claims,
                m.report.byz_withheld_reports,
                m.report.events_dispatched,
                m.allocs,
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n    ],\n");
    let _ = writeln!(
        json,
        "    \"crash_over_byzantine_committed_per_delay\": {byz_price:.3}"
    );
    json.push_str("  },\n");
    json.push_str("  \"byz_pipeline\": {\n");
    let _ = writeln!(json, "    \"total_commands\": {byz_cmds},");
    json.push_str("    \"router_window\": 64,\n");
    json.push_str("    \"configs\": [\n");
    let rows: Vec<String> = [&pipe_crash]
        .into_iter()
        .chain(&pipe)
        .map(|m| {
            format!(
                "      {{ \"label\": \"{}\", \"groups\": {}, \"entries\": {}, \"wall_secs\": {:.6}, \"entries_per_sec\": {:.0}, \"committed_per_delay\": {:.3}, \"elapsed_delays\": {:.1}, \"gap_vs_crash\": {:.3}, \"byz_fast_commits\": {}, \"byz_fast_confirms\": {}, \"duplicates_suppressed\": {}, \"events_dispatched\": {}, \"allocations\": {} }}",
                m.label,
                m.groups,
                m.report.committed,
                m.wall_secs,
                m.entries_per_sec(),
                m.report.committed_per_delay,
                m.report.elapsed_delays,
                pipe_gap(m),
                m.report.byz_fast_commits,
                m.report.byz_fast_confirms,
                m.report.duplicates_suppressed,
                m.report.events_dispatched,
                m.allocs,
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n    ],\n");
    let _ = writeln!(
        json,
        "    \"headline_w8_fast_gap_vs_crash\": {headline_gap:.3},"
    );
    let _ = writeln!(
        json,
        "    \"w1_conservative_gap_vs_crash\": {:.3}",
        pipe_gap(&pipe[0])
    );
    json.push_str("  },\n");
    json.push_str("  \"observability\": {\n");
    let _ = writeln!(json, "    \"total_commands\": {byz_cmds},");
    json.push_str("    \"configs\": [\n");
    let rows: Vec<String> = [&obs_untraced, &obs_traced]
        .iter()
        .map(|m| format!("      {}", sharded_json(m)))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n    ],\n");
    let _ = writeln!(
        json,
        "    \"untraced_over_traced_entries_per_sec\": {trace_overhead:.3},"
    );
    json.push_str("    \"span_stages\": [\n");
    let rows: Vec<String> = [("crash", &crash_spans), ("byzantine", &byz_spans)]
        .iter()
        .flat_map(|(cfg, stats)| {
            stats.iter().map(move |g| {
                let stages: Vec<String> = g
                    .stages
                    .iter()
                    .map(|st| {
                        format!(
                            "\"{0}_p50_delays\": {1:.2}, \"{0}_p99_delays\": {2:.2}",
                            st.stage,
                            st.hist.p50() as f64 / TICKS_PER_DELAY as f64,
                            st.hist.p99() as f64 / TICKS_PER_DELAY as f64,
                        )
                    })
                    .collect();
                format!(
                    "      {{ \"label\": \"spans_{cfg}_g{}\", \"config\": \"{cfg}\", \"group\": {}, \"spans\": {}, {} }}",
                    g.group,
                    g.group,
                    g.spans,
                    stages.join(", "),
                )
            })
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"cost_model\": {\n");
    let _ = writeln!(json, "    \"total_commands\": {cost_cmds},");
    json.push_str("    \"verb_cost_configs\": [\"baseline\", \"write_opt\", \"congested\"],\n");
    json.push_str("    \"doorbell_batch_sizes\": [1, 8],\n");
    json.push_str("    \"e10b_configs\": [\n");
    let rows: Vec<String> = cost_smr
        .iter()
        .map(|m| format!("      {}", smr_json(m)))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n    ],\n");
    json.push_str("    \"sharded_g4_configs\": [\n");
    let rows: Vec<String> = cost_shard
        .iter()
        .chain([&cost_adaptive])
        .chain(&cost_sweep)
        .map(|m| format!("      {}", sharded_json(m)))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n    ],\n");
    let _ = writeln!(
        json,
        "    \"batched_b8_over_b1_committed_per_delay\": {{ {} }}",
        cost_ratios.join(", ")
    );
    json.push_str("  },\n");
    json.push_str("  \"kernel_queue_stress\": [\n");
    let rows: Vec<String> = stress
        .iter()
        .map(|r| {
            format!(
                "    {{ \"actors\": {}, \"events\": {}, \"optimized_events_per_sec\": {:.0} }}",
                r.n, r.events, r.events_per_sec,
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let out = format!("{root}/BENCH_PR{PR}.json");
    std::fs::write(&out, &json).expect("write bench snapshot");
    println!("\nwrote {out}");

    // Per-PR regression gate (ROADMAP next-target (d)): compare against
    // the newest prior snapshot. Two tiers, matching what each metric can
    // prove:
    //
    // * Virtual-time metrics (committed_per_delay, delays_per_entry) are
    //   deterministic per seed and machine-independent — any worsening
    //   >10% is a real schedule regression and FAILS.
    // * Wall-clock entries/sec swings tens of percent between runs for
    //   byte-identical code on shared/virtualized hosts (measured on this
    //   repo's own seed: 582k -> 362k entries/sec minutes apart), so
    //   drops in the 10–50% band only WARN — in every mode, including
    //   strict, because wall-clock is never machine-independent and CI
    //   compares against a snapshot from a different machine; >50% is
    //   beyond plausible noise and FAILS. `PERF_GATE=strict` hard-fails
    //   every *machine-independent* signal instead: retired labels
    //   (below) and the thread-sweep speedup expectation. `warn` never
    //   fails; `off` skips.
    let mut gate_failed = sweep_gate_failed;
    if gate_mode == "off" {
        println!("perf gate: PERF_GATE=off, skipping");
        gate_failed = false;
    } else {
        match bench::gate::latest_prior_snapshot(std::path::Path::new(root), PR) {
            None => println!("perf gate: no prior BENCH_PR*.json to compare against"),
            Some((k, path)) => {
                let prior = std::fs::read_to_string(&path).expect("read prior snapshot");
                let prior_cmds = bench::gate::top_field(&prior, "workload_commands");
                if prior_cmds != Some(cmds as f64) {
                    println!(
                        "perf gate: BENCH_PR{k}.json measured {prior_cmds:?} commands, this run {cmds}; \
                         snapshots are incomparable, skipping"
                    );
                } else {
                    let regs = bench::gate::regressions(&prior, &json, 0.10);
                    let mut hard_regression = false;
                    for r in &regs {
                        let wall_clock = r.metric == "entries_per_sec";
                        let hard = !wall_clock || r.drop_frac > 0.50;
                        hard_regression |= hard && gate_mode != "warn";
                        println!(
                            "perf gate: {} {} {}: {:.3} -> {:.3} ({:.1}% worse{})",
                            if hard { "REGRESSION" } else { "warning" },
                            r.label,
                            r.metric,
                            r.prior,
                            r.current,
                            100.0 * r.drop_frac,
                            if hard {
                                ""
                            } else {
                                "; within cross-machine wall-clock noise"
                            },
                        );
                    }
                    // Retired labels: a configuration the prior snapshot
                    // measured that this run no longer emits. regressions()
                    // cannot see these (it only compares shared labels), so
                    // a rename or drop would silently lose gate coverage.
                    // Warn loudly always; under strict, fail unless the
                    // retirement is explicitly allowlisted.
                    let retired = bench::gate::retired_labels(&prior, &json);
                    let allow_env = std::env::var("PERF_GATE_RETIRED_OK").unwrap_or_default();
                    let allowed: Vec<&str> = allow_env
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .collect();
                    for label in &retired {
                        let ok = allowed.iter().any(|a| a == label);
                        let hard = gate_strict && !ok;
                        hard_regression |= hard;
                        println!(
                            "perf gate: {} label \"{label}\" from BENCH_PR{k}.json has \
                             DISAPPEARED from this snapshot — its regression coverage is lost{}",
                            if hard { "REGRESSION" } else { "warning" },
                            if ok {
                                " (allowlisted via PERF_GATE_RETIRED_OK)"
                            } else {
                                "; name it in PERF_GATE_RETIRED_OK if the retirement is intentional"
                            },
                        );
                    }
                    gate_failed |= hard_regression;
                    if !hard_regression {
                        println!("perf gate: no hard regression vs BENCH_PR{k}.json");
                    }
                }
            }
        }
    }
    if gate_failed {
        std::process::exit(1);
    }
}
