//! Timeline renderer: run any sharded scenario with tracing enabled and
//! export its event stream as JSONL, Chrome trace-event JSON, and the
//! self-contained HTML timeline viewer.
//!
//! ```text
//! cargo run --release --bin timeline -- [--scenario sharded|corpus] \
//!     [--fuzz-seed N] [--out DIR]
//! ```
//!
//! - `--scenario sharded` (default): the `sharded_log` example scenario —
//!   four crash-PMP groups, a Zipf workload, one leader crash + failover.
//! - `--scenario corpus`: the fuzz corpus's failover-resubmission
//!   schedule (`tests/fuzz_regressions.rs`), the densest known-good case.
//! - `--fuzz-seed N`: render the scenario `agreement::fuzz::generate(N)`
//!   produces instead (any case seed works, failing or not).
//! - `--out DIR`: output directory (default `target/timelines`).
//!
//! Each run writes `<name>.jsonl`, `<name>.trace.json` (load in Perfetto
//! or `chrome://tracing`), and `<name>.html` (open directly in a
//! browser; no network access needed), then prints the per-group span
//! histograms the same run produced.

use std::path::PathBuf;
use std::process::ExitCode;

use agreement::fuzz::render_timeline;
use agreement::harness::{run_sharded_with_events, ShardedScenario};
use agreement::sharded::WorkloadSpec;
use simnet::TICKS_PER_DELAY;

/// The `sharded_log` example schedule: crash + failover on group 1.
fn sharded_scenario() -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(4, 3, 3, 2026);
    sc.total_cmds = 2_000;
    sc.workload = WorkloadSpec::Zipf {
        keys: 4096,
        s: 0.99,
    };
    sc.window = 8;
    sc.batch = 4;
    sc.max_delays = 20_000;
    sc.crash_leaders = vec![(1, 50)];
    sc.announce = vec![(1, 1, 120)];
    sc
}

/// The fuzz corpus's failover-resubmission schedule (two crashes, two
/// failovers; see `tests/fuzz_regressions.rs`).
fn corpus_scenario() -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(4, 3, 3, 33);
    sc.total_cmds = 300;
    sc.workload = WorkloadSpec::Zipf {
        keys: 1024,
        s: 0.99,
    };
    sc.window = 6;
    sc.batch = 2;
    sc.crash_leaders = vec![(0, 15), (2, 31)];
    sc.announce = vec![(0, 1, 70), (2, 1, 90)];
    sc.max_delays = 20_000;
    sc
}

fn main() -> ExitCode {
    let mut out = PathBuf::from("target").join("timelines");
    let mut name = String::from("sharded");
    let mut sc = sharded_scenario();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => {
                let which = args.next().expect("--scenario needs a name");
                sc = match which.as_str() {
                    "sharded" => sharded_scenario(),
                    "corpus" => corpus_scenario(),
                    other => {
                        eprintln!("unknown scenario: {other} (use sharded|corpus)");
                        return ExitCode::FAILURE;
                    }
                };
                name = which;
            }
            "--fuzz-seed" => {
                let seed: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fuzz-seed needs an integer");
                sc = agreement::fuzz::generate(seed);
                name = format!("fuzz-{seed}");
            }
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "timeline: {name} — {} groups x (n={}, m={}), {} commands, {} partition(s)",
        sc.groups, sc.n, sc.m, sc.total_cmds, sc.partitions
    );
    let title = format!("{name}: {} groups, {} commands", sc.groups, sc.total_cmds);
    let art = render_timeline(&sc, &title);
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("could not create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let stem = out.join(&name);
    for (ext, body) in [
        ("jsonl", &art.jsonl),
        ("trace.json", &art.chrome),
        ("html", &art.html),
    ] {
        let path = stem.with_extension(ext);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("  wrote {}", path.display());
    }
    println!("  {} events traced", art.events);

    // The same traced run's per-stage span histograms, per group.
    let mut traced = sc.clone();
    traced.record_spans = true;
    let (report, _events) = run_sharded_with_events(&traced);
    println!("\n  group  spans  stage      p50(d)  p99(d)");
    for stats in &report.span_stats {
        for stage in &stats.stages {
            println!(
                "  {:>5}  {:>5}  {:<9}  {:>6.2}  {:>6.2}",
                stats.group,
                stats.spans,
                stage.stage,
                stage.hist.p50() as f64 / TICKS_PER_DELAY as f64,
                stage.hist.p99() as f64 / TICKS_PER_DELAY as f64,
            );
        }
    }
    ExitCode::SUCCESS
}
