//! Shared helpers for the benchmark harnesses.
//!
//! Each bench target regenerates one of the paper's tables/figures (see
//! DESIGN.md §4, experiments E1–E10): it *prints* the paper-style table
//! (virtual-time delay metrics, resilience outcomes, signature counts) and
//! registers Criterion wall-clock measurements for the simulation runs.

/// Prints a section header in the bench output.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats an `Option<f64>` delay for table cells.
pub fn fmt_delay(d: Option<f64>) -> String {
    match d {
        Some(x) => format!("{x:.1}"),
        None => "-".to_string(),
    }
}

/// Formats a boolean for table cells.
pub fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// The per-PR perf regression gate: compares the snapshot a `perf_snapshot`
/// run just produced against the newest prior `BENCH_PR<k>.json` at the
/// repo root and reports any throughput drop beyond a threshold.
///
/// The snapshots are this workspace's own generated JSON, so the extractor
/// is a purpose-built string scanner rather than a JSON parser (the
/// container has no serde); every measured object carries a unique
/// `"label"` and flat numeric fields.
pub mod gate {
    use std::path::{Path, PathBuf};

    /// Finds the newest `BENCH_PR<k>.json` with `k < current_pr` in `dir`.
    pub fn latest_prior_snapshot(dir: &Path, current_pr: u32) -> Option<(u32, PathBuf)> {
        let mut best: Option<(u32, PathBuf)> = None;
        for entry in std::fs::read_dir(dir).ok()?.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(k) = name
                .strip_prefix("BENCH_PR")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|num| num.parse::<u32>().ok())
            else {
                continue;
            };
            if k < current_pr && best.as_ref().is_none_or(|(b, _)| k > *b) {
                best = Some((k, entry.path()));
            }
        }
        best
    }

    /// Parses the number starting at `json[at..]` (optionally signed,
    /// decimal point allowed), ending at `,`, `}`, or whitespace.
    fn parse_number_at(json: &str, at: usize) -> Option<f64> {
        let rest = json[at..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    /// The value of the first `"field": <number>` at or after `from`.
    fn field_after(json: &str, from: usize, field: &str) -> Option<f64> {
        let needle = format!("\"{field}\":");
        let at = json[from..].find(&needle)? + from + needle.len();
        parse_number_at(json, at)
    }

    /// A top-level (first-occurrence) numeric field.
    pub fn top_field(json: &str, field: &str) -> Option<f64> {
        field_after(json, 0, field)
    }

    /// The value of `field` inside the measured object labeled `label`.
    /// The search is bounded at the object's closing `}` (measured objects
    /// are flat), so a label missing the field yields `None` rather than
    /// silently reading the next object's value.
    pub fn labeled_field(json: &str, label: &str, field: &str) -> Option<f64> {
        let needle = format!("\"label\": \"{label}\"");
        let at = json.find(&needle)? + needle.len();
        let end = at + json[at..].find('}')?;
        field_after(&json[..end], at, field)
    }

    /// Every `"label"` value appearing in a snapshot, in order.
    pub fn labels(json: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut from = 0;
        while let Some(hit) = json[from..].find("\"label\": \"") {
            let start = from + hit + "\"label\": \"".len();
            let Some(len) = json[start..].find('"') else {
                break;
            };
            out.push(json[start..start + len].to_string());
            from = start + len;
        }
        out
    }

    /// One detected regression.
    #[derive(Clone, Debug, PartialEq)]
    pub struct Regression {
        /// The measured configuration that got worse.
        pub label: String,
        /// Which gated metric worsened.
        pub metric: &'static str,
        /// Prior value.
        pub prior: f64,
        /// Current value.
        pub current: f64,
        /// Fractional worsening (`0.25` = 25% worse).
        pub drop_frac: f64,
    }

    /// The gated metrics: `(field, higher_is_better)`. `entries_per_sec`
    /// is wall-clock (noisy across machines; measured configs keep their
    /// best-of-N trial to compare noise floors). `committed_per_delay` and
    /// `delays_per_entry` are *virtual-time* quantities — deterministic
    /// per seed and identical on every machine — so any change there is a
    /// real schedule regression, never noise.
    const GATED_METRICS: [(&str, bool); 3] = [
        ("entries_per_sec", true),
        ("committed_per_delay", true),
        ("delays_per_entry", false),
    ];

    /// Labels present in `prior` but missing from `current`: measured
    /// configurations that silently lost regression coverage (renamed or
    /// dropped). [`regressions`] skips them by design — new benchmarks
    /// gate from their next PR on — so retirements must be surfaced
    /// separately: the snapshot gate warns on every one and, under
    /// `PERF_GATE=strict`, fails unless `PERF_GATE_RETIRED_OK` explicitly
    /// allowlists it. Deduplicated, in prior-snapshot order.
    pub fn retired_labels(prior: &str, current: &str) -> Vec<String> {
        let current_labels: std::collections::BTreeSet<String> =
            labels(current).into_iter().collect();
        let mut seen = std::collections::BTreeSet::new();
        labels(prior)
            .into_iter()
            .filter(|l| !current_labels.contains(l) && seen.insert(l.clone()))
            .collect()
    }

    /// Compares every gated metric for every label present in **both**
    /// snapshots; returns the configurations that worsened by more than
    /// `threshold` (e.g. `0.10`). Labels or fields only one side knows are
    /// skipped — new benchmarks gate from their next PR on; labels the
    /// prior snapshot knew but the current one dropped are reported by
    /// [`retired_labels`] so the gate can refuse to lose coverage
    /// silently.
    pub fn regressions(prior: &str, current: &str, threshold: f64) -> Vec<Regression> {
        let mut out = Vec::new();
        for label in labels(prior) {
            for (metric, higher_is_better) in GATED_METRICS {
                let Some(p) = labeled_field(prior, &label, metric) else {
                    continue;
                };
                let Some(c) = labeled_field(current, &label, metric) else {
                    continue;
                };
                if p <= 0.0 {
                    continue;
                }
                let drop_frac = if higher_is_better {
                    (p - c) / p
                } else {
                    (c - p) / p
                };
                if drop_frac > threshold {
                    out.push(Regression {
                        label: label.clone(),
                        metric,
                        prior: p,
                        current: c,
                        drop_frac,
                    });
                }
            }
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        const PRIOR: &str = r#"{
  "workload_commands": 1000,
  "a": { "label": "cfg_one", "entries": 10, "entries_per_sec": 1000, "x": 1 },
  "b": { "label": "cfg_two", "entries_per_sec": 500.5 }
}"#;

        #[test]
        fn extracts_labeled_and_top_fields() {
            assert_eq!(top_field(PRIOR, "workload_commands"), Some(1000.0));
            assert_eq!(
                labeled_field(PRIOR, "cfg_one", "entries_per_sec"),
                Some(1000.0)
            );
            assert_eq!(
                labeled_field(PRIOR, "cfg_two", "entries_per_sec"),
                Some(500.5)
            );
            assert_eq!(labeled_field(PRIOR, "cfg_missing", "entries_per_sec"), None);
            assert_eq!(labels(PRIOR), vec!["cfg_one", "cfg_two"]);
        }

        #[test]
        fn missing_field_does_not_read_the_next_object() {
            // cfg_gap has no entries_per_sec; the scan must stop at its
            // closing brace instead of returning cfg_after's value.
            let json = r#"{
  "a": { "label": "cfg_gap", "entries": 10 },
  "b": { "label": "cfg_after", "entries_per_sec": 999 }
}"#;
            assert_eq!(labeled_field(json, "cfg_gap", "entries_per_sec"), None);
            assert_eq!(
                labeled_field(json, "cfg_after", "entries_per_sec"),
                Some(999.0)
            );
        }

        #[test]
        fn flags_only_drops_beyond_threshold() {
            let current = r#"{
  "a": { "label": "cfg_one", "entries_per_sec": 950 },
  "b": { "label": "cfg_two", "entries_per_sec": 200 },
  "c": { "label": "cfg_new", "entries_per_sec": 1 }
}"#;
            let regs = regressions(PRIOR, current, 0.10);
            // cfg_one dropped 5% (within threshold); cfg_new is unknown to
            // the prior snapshot; only cfg_two's 60% drop is flagged.
            assert_eq!(regs.len(), 1);
            assert_eq!(regs[0].label, "cfg_two");
            assert_eq!(regs[0].metric, "entries_per_sec");
            assert!((regs[0].drop_frac - 0.6004).abs() < 0.001);
        }

        #[test]
        fn lower_is_better_metrics_gate_in_the_right_direction() {
            let prior = r#"{ "a": { "label": "cfg", "delays_per_entry": 2.0 } }"#;
            // Fewer delays per entry is an improvement, never flagged.
            let faster = r#"{ "a": { "label": "cfg", "delays_per_entry": 0.25 } }"#;
            assert!(regressions(prior, faster, 0.10).is_empty());
            // More delays per entry is a (machine-independent) regression.
            let slower = r#"{ "a": { "label": "cfg", "delays_per_entry": 2.5 } }"#;
            let regs = regressions(prior, slower, 0.10);
            assert_eq!(regs.len(), 1);
            assert_eq!(regs[0].metric, "delays_per_entry");
            assert!((regs[0].drop_frac - 0.25).abs() < 1e-9);
        }

        #[test]
        fn improvements_never_flag() {
            let current = r#"{ "a": { "label": "cfg_one", "entries_per_sec": 5000 } }"#;
            assert!(regressions(PRIOR, current, 0.10).is_empty());
        }

        #[test]
        fn retired_labels_surface_lost_coverage() {
            // cfg_two vanished (renamed to cfg_2): regressions() is blind
            // to it, retired_labels() is not.
            let current = r#"{
  "a": { "label": "cfg_one", "entries_per_sec": 1000 },
  "b": { "label": "cfg_2", "entries_per_sec": 1 }
}"#;
            assert!(regressions(PRIOR, current, 0.10).is_empty());
            assert_eq!(retired_labels(PRIOR, current), vec!["cfg_two"]);
            // Nothing retired when every prior label is still measured.
            assert!(retired_labels(PRIOR, PRIOR).is_empty());
            // Duplicated prior labels report once.
            let dup = r#"{
  "a": { "label": "cfg_gone", "x": 1 },
  "b": { "label": "cfg_gone", "x": 2 }
}"#;
            assert_eq!(retired_labels(dup, "{}"), vec!["cfg_gone"]);
        }

        #[test]
        fn finds_newest_prior_snapshot() {
            let dir = std::env::temp_dir().join(format!("gate_test_{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("BENCH_PR1.json"), "{}").unwrap();
            std::fs::write(dir.join("BENCH_PR3.json"), "{}").unwrap();
            std::fs::write(dir.join("BENCH_PR9.json"), "{}").unwrap();
            std::fs::write(dir.join("BENCH_PRx.json"), "{}").unwrap();
            let (k, path) = latest_prior_snapshot(&dir, 9).unwrap();
            assert_eq!(k, 3);
            assert!(path.ends_with("BENCH_PR3.json"));
            assert!(latest_prior_snapshot(&dir, 1).is_none());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
