//! Shared helpers for the benchmark harnesses.
//!
//! Each bench target regenerates one of the paper's tables/figures (see
//! DESIGN.md §4, experiments E1–E10): it *prints* the paper-style table
//! (virtual-time delay metrics, resilience outcomes, signature counts) and
//! registers Criterion wall-clock measurements for the simulation runs.

/// Prints a section header in the bench output.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats an `Option<f64>` delay for table cells.
pub fn fmt_delay(d: Option<f64>) -> String {
    match d {
        Some(x) => format!("{x:.1}"),
        None => "-".to_string(),
    }
}

/// Formats a boolean for table cells.
pub fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}
