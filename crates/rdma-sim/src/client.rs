//! The per-process memory client.
//!
//! Enforces the model constraint that a process has **at most one
//! outstanding operation on each memory** (§3 "Executions and steps"):
//! operations to a busy memory are queued FIFO and dispatched as responses
//! arrive; operations to distinct memories proceed in parallel.

use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;

use simnet::{ActorId, Context};

use crate::perm::Permission;
use crate::reg::RegId;
use crate::region::RegionId;
use crate::wire::{MemEmbed, MemRequest, MemResponse, MemWire, OpId};

/// Per-memory FIFO of operations waiting for the in-flight one.
type WaitQueue<V> = VecDeque<(OpId, MemRequest<V>)>;

/// A completed memory operation, as surfaced to the protocol.
#[derive(Clone, Debug)]
pub struct Completion<V> {
    /// The operation's id (returned by the submit call).
    pub op: OpId,
    /// Which memory answered.
    pub mem: ActorId,
    /// The outcome.
    pub resp: MemResponse<V>,
}

/// Issues memory operations on behalf of one process, respecting the
/// one-outstanding-op-per-memory rule.
pub struct MemoryClient<V, M> {
    next_op: u64,
    /// Operation currently in flight per memory. A client talks to a
    /// handful of memories, so a linear small-vec beats an ordered map on
    /// the per-operation hot path (and never allocates once warm).
    busy: Vec<(ActorId, OpId)>,
    /// Waiting operations per memory; entries are created on first use and
    /// retained (capacity included) for the client's lifetime.
    queues: Vec<(ActorId, WaitQueue<V>)>,
    _msg: PhantomData<M>,
}

impl<V, M> fmt::Debug for MemoryClient<V, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryClient")
            .field("busy", &self.busy)
            .field(
                "queued",
                &self.queues.iter().map(|(_, q)| q.len()).sum::<usize>(),
            )
            .finish()
    }
}

impl<V, M> Default for MemoryClient<V, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, M> MemoryClient<V, M> {
    /// Creates an idle client.
    pub fn new() -> MemoryClient<V, M> {
        MemoryClient {
            next_op: 0,
            busy: Vec::new(),
            queues: Vec::new(),
            _msg: PhantomData,
        }
    }
}

impl<V, M> MemoryClient<V, M>
where
    V: Clone + fmt::Debug + 'static,
    M: MemEmbed<V>,
{
    /// Submits an operation to `mem`. If the memory is busy the operation is
    /// queued; either way the operation's id is returned immediately.
    pub fn submit(&mut self, ctx: &mut Context<'_, M>, mem: ActorId, req: MemRequest<V>) -> OpId {
        self.next_op += 1;
        let op = OpId(self.next_op);
        let op_name = match &req {
            MemRequest::Read { .. } => {
                ctx.metrics().mem_reads += 1;
                "read"
            }
            // A batched write is one memory operation (one round trip),
            // exactly like a single write — that is the point of batching.
            MemRequest::Write { .. } | MemRequest::WriteMany { .. } => {
                ctx.metrics().mem_writes += 1;
                "write"
            }
            MemRequest::ReadRange { .. } => {
                ctx.metrics().mem_range_reads += 1;
                "read_range"
            }
            MemRequest::ChangePerm { .. } => {
                ctx.metrics().perm_changes += 1;
                "change_perm"
            }
        };
        ctx.obs_mem_op(op_name);
        if self.is_busy(mem) {
            match self.queues.iter_mut().find(|(m, _)| *m == mem) {
                Some((_, q)) => q.push_back((op, req)),
                None => {
                    let mut q = VecDeque::new();
                    q.push_back((op, req));
                    self.queues.push((mem, q));
                }
            }
        } else {
            self.busy.push((mem, op));
            let class = req.cost_class();
            ctx.send_classed(mem, M::from_wire(MemWire::Req { op, req }), class);
        }
        op
    }

    /// Sugar for [`MemoryClient::submit`] with a read request.
    pub fn read(
        &mut self,
        ctx: &mut Context<'_, M>,
        mem: ActorId,
        region: RegionId,
        reg: RegId,
    ) -> OpId {
        self.submit(ctx, mem, MemRequest::Read { region, reg })
    }

    /// Sugar for [`MemoryClient::submit`] with a write request.
    pub fn write(
        &mut self,
        ctx: &mut Context<'_, M>,
        mem: ActorId,
        region: RegionId,
        reg: RegId,
        value: V,
    ) -> OpId {
        self.submit(ctx, mem, MemRequest::Write { region, reg, value })
    }

    /// Sugar for [`MemoryClient::submit`] with a batched multi-register
    /// write (one round trip covering all of `writes`).
    pub fn write_many(
        &mut self,
        ctx: &mut Context<'_, M>,
        mem: ActorId,
        region: RegionId,
        writes: Vec<(RegId, V)>,
    ) -> OpId {
        self.submit(ctx, mem, MemRequest::WriteMany { region, writes })
    }

    /// Sugar for [`MemoryClient::submit`] with a range read.
    pub fn read_range(
        &mut self,
        ctx: &mut Context<'_, M>,
        mem: ActorId,
        region: RegionId,
        within: Option<crate::RegionSpec>,
    ) -> OpId {
        self.submit(ctx, mem, MemRequest::ReadRange { region, within })
    }

    /// Sugar for [`MemoryClient::submit`] with a permission change.
    pub fn change_perm(
        &mut self,
        ctx: &mut Context<'_, M>,
        mem: ActorId,
        region: RegionId,
        new: Permission,
    ) -> OpId {
        self.submit(ctx, mem, MemRequest::ChangePerm { region, new })
    }

    /// Feeds an incoming message to the client. Returns the completion if
    /// the message was the response to one of this client's operations; the
    /// next queued operation for that memory (if any) is dispatched.
    ///
    /// Protocols call this for every [`MemWire`] message they receive.
    pub fn on_wire(
        &mut self,
        ctx: &mut Context<'_, M>,
        from: ActorId,
        wire: MemWire<V>,
    ) -> Option<Completion<V>> {
        let MemWire::Resp { op, resp } = wire else {
            return None;
        };
        match self.busy.iter().position(|&(m, o)| m == from && o == op) {
            Some(ix) => {
                self.busy.swap_remove(ix);
            }
            // A response we no longer expect (e.g. after a protocol-level
            // reset): ignore it but keep the pipeline moving.
            None => return None,
        }
        if let Some((_, queue)) = self.queues.iter_mut().find(|(m, _)| *m == from) {
            if let Some((next_op, req)) = queue.pop_front() {
                self.busy.push((from, next_op));
                let class = req.cost_class();
                ctx.send_classed(from, M::from_wire(MemWire::Req { op: next_op, req }), class);
            }
        }
        Some(Completion {
            op,
            mem: from,
            resp,
        })
    }

    /// Whether an operation is currently in flight to `mem`.
    pub fn is_busy(&self, mem: ActorId) -> bool {
        self.busy.iter().any(|&(m, _)| m == mem)
    }

    /// Number of queued (not yet sent) operations across all memories.
    pub fn queued_len(&self) -> usize {
        self.queues.iter().map(|(_, q)| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryActor;
    use crate::perm::LegalChange;
    use crate::region::RegionSpec;
    use simnet::{Actor, EventKind, Simulation, Time};

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum TMsg {
        Mem(MemWire<u64>),
    }
    impl MemEmbed<u64> for TMsg {
        fn from_wire(wire: MemWire<u64>) -> Self {
            TMsg::Mem(wire)
        }
        fn into_wire(self) -> Result<MemWire<u64>, Self> {
            let TMsg::Mem(w) = self;
            Ok(w)
        }
    }

    const REGION: RegionId = RegionId(0);

    /// Issues `count` writes to one memory at Start, all at once; records
    /// completion times to verify FIFO serialization.
    struct Burst {
        mem: ActorId,
        count: u64,
        client: MemoryClient<u64, TMsg>,
        completions: Vec<(OpId, Time)>,
    }
    impl Actor<TMsg> for Burst {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => {
                    for i in 0..self.count {
                        self.client
                            .write(ctx, self.mem, REGION, RegId::one(1, i), i);
                    }
                }
                EventKind::Msg {
                    from,
                    msg: TMsg::Mem(wire),
                } => {
                    if let Some(c) = self.client.on_wire(ctx, from, wire) {
                        self.completions.push((c.op, ctx.now()));
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn serializes_ops_to_one_memory() {
        let mut sim: Simulation<TMsg> = Simulation::new(1);
        let mem = sim.add(
            MemoryActor::<u64, TMsg>::new(LegalChange::Static).with_region(
                REGION,
                RegionSpec::Space(1),
                Permission::open(),
            ),
        );
        let b = sim.add(Burst {
            mem,
            count: 3,
            client: MemoryClient::new(),
            completions: vec![],
        });
        sim.run_to_quiescence(Time::from_delays(100));
        let burst = sim.actor_as::<Burst>(b).unwrap();
        // Each op is a 2-delay round trip and they must not overlap.
        let times: Vec<_> = burst.completions.iter().map(|(_, t)| *t).collect();
        assert_eq!(
            times,
            vec![
                Time::from_delays(2),
                Time::from_delays(4),
                Time::from_delays(6)
            ]
        );
        // FIFO order.
        let ops: Vec<_> = burst.completions.iter().map(|(op, _)| op.0).collect();
        assert_eq!(ops, vec![1, 2, 3]);
        assert_eq!(sim.metrics().mem_writes, 3);
    }

    /// Issues one write to each of several memories at Start.
    struct FanOut {
        mems: Vec<ActorId>,
        client: MemoryClient<u64, TMsg>,
        completions: Vec<(ActorId, Time)>,
    }
    impl Actor<TMsg> for FanOut {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => {
                    for mem in self.mems.clone() {
                        self.client.write(ctx, mem, REGION, RegId::one(1, 0), 9);
                    }
                }
                EventKind::Msg {
                    from,
                    msg: TMsg::Mem(wire),
                } => {
                    if let Some(c) = self.client.on_wire(ctx, from, wire) {
                        self.completions.push((c.mem, ctx.now()));
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn parallel_across_memories() {
        let mut sim: Simulation<TMsg> = Simulation::new(1);
        let mems: Vec<_> = (0..3)
            .map(|_| {
                sim.add(
                    MemoryActor::<u64, TMsg>::new(LegalChange::Static).with_region(
                        REGION,
                        RegionSpec::Space(1),
                        Permission::open(),
                    ),
                )
            })
            .collect();
        let f = sim.add(FanOut {
            mems,
            client: MemoryClient::new(),
            completions: vec![],
        });
        sim.run_to_quiescence(Time::from_delays(100));
        let fan = sim.actor_as::<FanOut>(f).unwrap();
        // All three complete at 2 delays: parallel round trips.
        assert_eq!(fan.completions.len(), 3);
        for (_, t) in &fan.completions {
            assert_eq!(*t, Time::from_delays(2));
        }
    }

    #[test]
    fn stale_response_ignored() {
        // Drive on_wire directly with a response for an op we never sent.
        let mut sim: Simulation<TMsg> = Simulation::new(1);
        struct Probe {
            client: MemoryClient<u64, TMsg>,
            got: Vec<OpId>,
        }
        impl Actor<TMsg> for Probe {
            fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
                if let EventKind::Msg {
                    from,
                    msg: TMsg::Mem(wire),
                } = ev
                {
                    if let Some(c) = self.client.on_wire(ctx, from, wire) {
                        self.got.push(c.op);
                    }
                }
            }
        }
        let p = sim.add(Probe {
            client: MemoryClient::new(),
            got: vec![],
        });
        sim.schedule(
            Time::ZERO,
            p,
            EventKind::Msg {
                from: simnet::ActorId(42),
                msg: TMsg::Mem(MemWire::Resp {
                    op: OpId(7),
                    resp: MemResponse::Ack,
                }),
            },
        );
        sim.run_to_quiescence(Time::from_delays(10));
        assert!(sim.actor_as::<Probe>(p).unwrap().got.is_empty());
    }
}
