//! # rdma-sim — the paper's RDMA memory model, simulated
//!
//! Implements the shared-memory half of the message-and-memory model from
//! *The Impact of RDMA on Agreement* (§3, §7):
//!
//! * **Memories** ([`MemoryActor`]) hold registers ([`RegId`]) grouped into
//!   **regions** ([`RegionSpec`]) with **permissions** ([`Permission`]:
//!   disjoint read / write / read-write process sets).
//! * `read` / `write` name the region through which access is claimed; the
//!   memory naks operations lacking permission. This check is the trusted
//!   component: Byzantine processes cannot bypass it, just as a real NIC
//!   enforces protection-domain registration without CPU involvement.
//! * `changePermission` is gated by the algorithm's [`LegalChange`] policy
//!   (the paper's `legalChange` predicate) — `Static` forbids all changes,
//!   `AnyChange` allows them (crash-only algorithms), `Policy` captures
//!   shapes like "only revoking the leader's write permission".
//! * **Failures**: memories crash (scheduled by the harness); a crashed
//!   memory hangs without responding, indistinguishable from a slow one.
//! * The [`MemoryClient`] enforces "at most one outstanding operation per
//!   memory" per process and surfaces completions; each operation costs two
//!   network delays (request + response), the paper's cost model.
//!
//! Real-RDMA correspondence (§7): a region with read permission for all and
//! write for one process models a memory region registered read-only in
//! every peer's protection domain plus read-write in the owner's;
//! `changePermission` models (de)registering a region; [`MemRequest::ReadRange`]
//! models a one-shot RDMA read of a registered slot array.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
mod memory;
mod perm;
mod reg;
mod region;
mod wire;

pub use client::{Completion, MemoryClient};
pub use memory::MemoryActor;
pub use perm::{LegalChange, LegalChangeFn, PermSet, Permission};
pub use reg::RegId;
pub use region::{RegionId, RegionSpec};
pub use wire::{MemEmbed, MemRequest, MemResponse, MemWire, OpId};
