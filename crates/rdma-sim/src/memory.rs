//! The memory actor: a simulated RDMA-capable memory node.
//!
//! The memory is a **trusted** component: it enforces region permissions and
//! the `legalChange` policy on every operation, so a Byzantine process
//! "cannot operate on memories without the required permission" (§3). Its
//! failure mode is a crash (scheduled by the harness through
//! [`Simulation::crash_at`]), after which operations hang — never wrong
//! answers.
//!
//! [`Simulation::crash_at`]: simnet::Simulation::crash_at

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::marker::PhantomData;

use simnet::{Actor, ActorId, Context, EventKind};

use crate::perm::{LegalChange, Permission};
use crate::reg::RegId;
use crate::region::{RegionId, RegionSpec};
use crate::wire::{MemEmbed, MemRequest, MemResponse, MemWire};

/// A simulated memory with registers, regions and permissions.
///
/// Type parameters: `V` is the register value type; `M` the simulation
/// message type embedding [`MemWire<V>`].
pub struct MemoryActor<V, M> {
    regions: BTreeMap<RegionId, (RegionSpec, Permission)>,
    /// Hash-indexed register store: writes are the per-log-entry hot path,
    /// so O(1) insert beats ordered storage. Range reads (rare: takeover
    /// scans) sort their rows, preserving the deterministic RegId-ordered
    /// responses an ordered map used to give.
    registers: HashMap<RegId, V>,
    /// Scratch buffer for assembling range-read rows (the swmr
    /// scratch-pool pattern): matching rows are collected and sorted here,
    /// whose capacity persists across scans, then cloned once into the
    /// wire payload — a single exact-size allocation per scan instead of
    /// the collect-and-grow churn of building the payload directly.
    row_scratch: Vec<(RegId, V)>,
    legal: LegalChange,
    _msg: PhantomData<M>,
}

impl<V, M> fmt::Debug for MemoryActor<V, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryActor")
            .field("regions", &self.regions.len())
            .field("registers", &self.registers.len())
            .field("legal", &self.legal)
            .finish()
    }
}

impl<V, M> MemoryActor<V, M>
where
    V: Clone + fmt::Debug + 'static,
    M: MemEmbed<V>,
{
    /// Creates a memory with no regions and the given permission-change
    /// policy.
    pub fn new(legal: LegalChange) -> MemoryActor<V, M> {
        MemoryActor {
            regions: BTreeMap::new(),
            registers: HashMap::new(),
            row_scratch: Vec::new(),
            legal,
            _msg: PhantomData,
        }
    }

    /// Declares a region. Regions are fixed at setup; only their permissions
    /// change at run time (through `changePermission`).
    pub fn add_region(&mut self, id: RegionId, spec: RegionSpec, perm: Permission) -> &mut Self {
        let prev = self.regions.insert(id, (spec, perm));
        assert!(prev.is_none(), "region {id:?} declared twice");
        self
    }

    /// Builder-style variant of [`MemoryActor::add_region`].
    pub fn with_region(mut self, id: RegionId, spec: RegionSpec, perm: Permission) -> Self {
        self.add_region(id, spec, perm);
        self
    }

    /// Current permission of a region (for tests and assertions).
    pub fn permission(&self, id: RegionId) -> Option<&Permission> {
        self.regions.get(&id).map(|(_, p)| p)
    }

    /// Direct register inspection (for tests and assertions).
    pub fn register(&self, reg: RegId) -> Option<&V> {
        self.registers.get(&reg)
    }

    fn handle(&mut self, from: ActorId, req: MemRequest<V>) -> MemResponse<V> {
        match req {
            MemRequest::Read { region, reg } => match self.regions.get(&region) {
                Some((spec, perm)) if spec.contains(reg) && perm.allows_read(from) => {
                    MemResponse::Value(self.registers.get(&reg).cloned())
                }
                _ => MemResponse::Nak,
            },
            MemRequest::Write { region, reg, value } => match self.regions.get(&region) {
                Some((spec, perm)) if spec.contains(reg) && perm.allows_write(from) => {
                    self.registers.insert(reg, value);
                    MemResponse::Ack
                }
                _ => MemResponse::Nak,
            },
            MemRequest::WriteMany { region, writes } => match self.regions.get(&region) {
                Some((spec, perm))
                    if perm.allows_write(from) && writes.iter().all(|(r, _)| spec.contains(*r)) =>
                {
                    for (reg, value) in writes {
                        self.registers.insert(reg, value);
                    }
                    MemResponse::Ack
                }
                _ => MemResponse::Nak,
            },
            MemRequest::ReadRange { region, within } => match self.regions.get(&region) {
                Some((spec, perm)) if perm.allows_read(from) => {
                    let rows = &mut self.row_scratch;
                    rows.clear();
                    rows.extend(
                        self.registers
                            .iter()
                            .filter(|(r, _)| {
                                spec.contains(**r) && within.is_none_or(|w| w.contains(**r))
                            })
                            .map(|(r, v)| (*r, v.clone())),
                    );
                    // RegId order, as the ordered register store used to
                    // produce: responses stay deterministic.
                    rows.sort_unstable_by_key(|(r, _)| *r);
                    MemResponse::Range(rows.clone())
                }
                _ => MemResponse::Nak,
            },
            MemRequest::ChangePerm { region, new } => match self.regions.get_mut(&region) {
                Some((_, perm)) => {
                    if self.legal.allows(from, region, perm, &new) {
                        *perm = new;
                        MemResponse::PermAck
                    } else {
                        MemResponse::PermNak
                    }
                }
                None => MemResponse::PermNak,
            },
        }
    }
}

impl<V, M> Actor<M> for MemoryActor<V, M>
where
    V: Clone + fmt::Debug + 'static,
    M: MemEmbed<V>,
{
    fn on_event(&mut self, ctx: &mut Context<'_, M>, ev: EventKind<M>) {
        let EventKind::Msg { from, msg } = ev else {
            return;
        };
        let Ok(MemWire::Req { op, req }) = msg.into_wire() else {
            return;
        };
        let resp = self.handle(from, req);
        let class = resp.cost_class();
        ctx.send_classed(from, M::from_wire(MemWire::Resp { op, resp }), class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::PermSet;
    use crate::wire::OpId;
    use simnet::{Simulation, Time};

    /// Minimal message type for exercising the memory actor directly.
    #[derive(Clone, Debug, PartialEq, Eq)]
    enum TMsg {
        Mem(MemWire<u64>),
    }
    impl MemEmbed<u64> for TMsg {
        fn from_wire(wire: MemWire<u64>) -> Self {
            TMsg::Mem(wire)
        }
        fn into_wire(self) -> Result<MemWire<u64>, Self> {
            let TMsg::Mem(w) = self;
            Ok(w)
        }
    }

    /// Driver that fires a scripted list of requests at one memory and
    /// collects responses.
    struct Driver {
        mem: ActorId,
        script: Vec<MemRequest<u64>>,
        responses: Vec<(OpId, MemResponse<u64>)>,
    }
    impl Actor<TMsg> for Driver {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => {
                    for (i, req) in self.script.drain(..).enumerate() {
                        ctx.send(
                            self.mem,
                            TMsg::Mem(MemWire::Req {
                                op: OpId(i as u64),
                                req,
                            }),
                        );
                    }
                }
                EventKind::Msg {
                    msg: TMsg::Mem(MemWire::Resp { op, resp }),
                    ..
                } => {
                    self.responses.push((op, resp));
                }
                _ => {}
            }
        }
    }

    const REGION: RegionId = RegionId(0);
    const LOCKED: RegionId = RegionId(1);

    fn run_script(
        legal: LegalChange,
        perm: Permission,
        script: Vec<MemRequest<u64>>,
    ) -> Vec<(OpId, MemResponse<u64>)> {
        let mut sim: Simulation<TMsg> = Simulation::new(3);
        let mem = MemoryActor::<u64, TMsg>::new(legal)
            .with_region(REGION, RegionSpec::Space(1), perm)
            .with_region(LOCKED, RegionSpec::Space(2), Permission::read_only());
        let mem_id = sim.add(mem);
        let drv = sim.add(Driver {
            mem: mem_id,
            script,
            responses: Vec::new(),
        });
        sim.run_to_quiescence(Time::from_delays(100));
        let mut out = sim.actor_as::<Driver>(drv).unwrap().responses.clone();
        out.sort_by_key(|(op, _)| *op);
        out
    }

    #[test]
    fn write_then_read_round_trip() {
        let out = run_script(
            LegalChange::Static,
            Permission::open(),
            vec![
                MemRequest::Write {
                    region: REGION,
                    reg: RegId::one(1, 0),
                    value: 42,
                },
                MemRequest::Read {
                    region: REGION,
                    reg: RegId::one(1, 0),
                },
                MemRequest::Read {
                    region: REGION,
                    reg: RegId::one(1, 1),
                },
            ],
        );
        assert_eq!(out[0].1, MemResponse::Ack);
        assert_eq!(out[1].1, MemResponse::Value(Some(42)));
        // Unwritten register reads as ⊥.
        assert_eq!(out[2].1, MemResponse::Value(None));
    }

    #[test]
    fn write_without_permission_naks() {
        // Region writable only by actor 5; the driver is actor 1.
        let perm = Permission {
            read: PermSet::Everybody,
            write: PermSet::Nobody,
            rw: PermSet::only([ActorId(5)]),
        };
        let out = run_script(
            LegalChange::Static,
            perm,
            vec![
                MemRequest::Write {
                    region: REGION,
                    reg: RegId::one(1, 0),
                    value: 1,
                },
                MemRequest::Read {
                    region: REGION,
                    reg: RegId::one(1, 0),
                },
            ],
        );
        assert_eq!(out[0].1, MemResponse::Nak);
        // The write did not take effect.
        assert_eq!(out[1].1, MemResponse::Value(None));
    }

    #[test]
    fn register_outside_region_naks() {
        let out = run_script(
            LegalChange::Static,
            Permission::open(),
            vec![
                // Register in space 2 accessed through the space-1 region.
                MemRequest::Write {
                    region: REGION,
                    reg: RegId::one(2, 0),
                    value: 1,
                },
                MemRequest::Read {
                    region: REGION,
                    reg: RegId::one(2, 0),
                },
            ],
        );
        assert_eq!(out[0].1, MemResponse::Nak);
        assert_eq!(out[1].1, MemResponse::Nak);
    }

    #[test]
    fn unknown_region_naks() {
        let out = run_script(
            LegalChange::Static,
            Permission::open(),
            vec![MemRequest::Read {
                region: RegionId(99),
                reg: RegId::one(1, 0),
            }],
        );
        assert_eq!(out[0].1, MemResponse::Nak);
    }

    #[test]
    fn write_many_is_atomic_and_permission_checked() {
        let out = run_script(
            LegalChange::Static,
            Permission::open(),
            vec![
                MemRequest::WriteMany {
                    region: REGION,
                    writes: vec![(RegId::one(1, 0), 1), (RegId::one(1, 1), 2)],
                },
                MemRequest::Read {
                    region: REGION,
                    reg: RegId::one(1, 1),
                },
                // One register outside the region: nothing is applied.
                MemRequest::WriteMany {
                    region: REGION,
                    writes: vec![(RegId::one(1, 2), 3), (RegId::one(2, 0), 4)],
                },
                MemRequest::Read {
                    region: REGION,
                    reg: RegId::one(1, 2),
                },
            ],
        );
        assert_eq!(out[0].1, MemResponse::Ack);
        assert_eq!(out[1].1, MemResponse::Value(Some(2)));
        assert_eq!(out[2].1, MemResponse::Nak);
        assert_eq!(out[3].1, MemResponse::Value(None));
    }

    #[test]
    fn range_read_returns_written_registers() {
        let out = run_script(
            LegalChange::Static,
            Permission::open(),
            vec![
                MemRequest::Write {
                    region: REGION,
                    reg: RegId::one(1, 3),
                    value: 30,
                },
                MemRequest::Write {
                    region: REGION,
                    reg: RegId::one(1, 1),
                    value: 10,
                },
                MemRequest::ReadRange {
                    region: REGION,
                    within: None,
                },
            ],
        );
        let MemResponse::Range(rows) = &out[2].1 else {
            panic!("expected range")
        };
        assert_eq!(rows, &vec![(RegId::one(1, 1), 10), (RegId::one(1, 3), 30)]);
    }

    #[test]
    fn static_permissions_reject_changes() {
        let out = run_script(
            LegalChange::Static,
            Permission::open(),
            vec![
                MemRequest::ChangePerm {
                    region: REGION,
                    new: Permission::read_only(),
                },
                MemRequest::Write {
                    region: REGION,
                    reg: RegId::one(1, 0),
                    value: 7,
                },
            ],
        );
        assert_eq!(out[0].1, MemResponse::PermNak);
        // Change was a no-op; write still allowed.
        assert_eq!(out[1].1, MemResponse::Ack);
    }

    #[test]
    fn any_change_applies_and_takes_effect() {
        let out = run_script(
            LegalChange::AnyChange,
            Permission::open(),
            vec![
                MemRequest::ChangePerm {
                    region: REGION,
                    new: Permission::read_only(),
                },
                MemRequest::Write {
                    region: REGION,
                    reg: RegId::one(1, 0),
                    value: 7,
                },
                MemRequest::Read {
                    region: REGION,
                    reg: RegId::one(1, 0),
                },
            ],
        );
        assert_eq!(out[0].1, MemResponse::PermAck);
        // Own write permission revoked by the change.
        assert_eq!(out[1].1, MemResponse::Nak);
        assert_eq!(out[2].1, MemResponse::Value(None));
    }

    #[test]
    fn crashed_memory_hangs() {
        let mut sim: Simulation<TMsg> = Simulation::new(3);
        let mem = MemoryActor::<u64, TMsg>::new(LegalChange::Static).with_region(
            REGION,
            RegionSpec::Space(1),
            Permission::open(),
        );
        let mem_id = sim.add(mem);
        let drv = sim.add(Driver {
            mem: mem_id,
            script: vec![MemRequest::Read {
                region: REGION,
                reg: RegId::one(1, 0),
            }],
            responses: Vec::new(),
        });
        sim.crash_at(mem_id, Time::ZERO);
        sim.run_to_quiescence(Time::from_delays(100));
        assert!(sim.actor_as::<Driver>(drv).unwrap().responses.is_empty());
    }
}
