//! Permissions: who may read, write, or read-write a memory region.
//!
//! Per §3 of the paper, each memory region `mr` carries three disjoint sets
//! of processes `R_mr`, `W_mr`, `RW_mr`. A process has *read permission* if
//! it is in `R ∪ RW` and *write permission* if it is in `W ∪ RW`. Permission
//! changes go through `changePermission`, which the memory subjects to the
//! algorithm's `legalChange` predicate — the small trusted component that
//! lets the algorithms confine Byzantine processes.

use std::collections::BTreeSet;
use std::fmt;

use simnet::ActorId;

use crate::region::RegionId;

/// A (possibly co-infinite) set of processes, used for permission sets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PermSet {
    /// The empty set.
    Nobody,
    /// Every process.
    Everybody,
    /// Exactly these processes.
    Only(BTreeSet<ActorId>),
    /// Every process except these.
    AllBut(BTreeSet<ActorId>),
}

impl PermSet {
    /// Builds [`PermSet::Only`] from an iterator of ids.
    pub fn only<I: IntoIterator<Item = ActorId>>(ids: I) -> PermSet {
        PermSet::Only(ids.into_iter().collect())
    }

    /// Builds [`PermSet::AllBut`] from an iterator of ids.
    pub fn all_but<I: IntoIterator<Item = ActorId>>(ids: I) -> PermSet {
        PermSet::AllBut(ids.into_iter().collect())
    }

    /// Membership test.
    pub fn contains(&self, p: ActorId) -> bool {
        match self {
            PermSet::Nobody => false,
            PermSet::Everybody => true,
            PermSet::Only(s) => s.contains(&p),
            PermSet::AllBut(s) => !s.contains(&p),
        }
    }
}

/// The permission triple of one memory region.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Permission {
    /// Processes allowed to read only.
    pub read: PermSet,
    /// Processes allowed to write only.
    pub write: PermSet,
    /// Processes allowed to both read and write.
    pub rw: PermSet,
}

impl Permission {
    /// `R = Π \ {writer}, W = ∅, RW = {writer}` — the paper's Single-Writer
    /// Multi-Reader region shape (also the initial shape of Protected Memory
    /// Paxos regions, with the writer being the initial leader).
    pub fn exclusive_writer(writer: ActorId) -> Permission {
        Permission {
            read: PermSet::all_but([writer]),
            write: PermSet::Nobody,
            rw: PermSet::only([writer]),
        }
    }

    /// Everyone may read, nobody may write.
    pub fn read_only() -> Permission {
        Permission {
            read: PermSet::Everybody,
            write: PermSet::Nobody,
            rw: PermSet::Nobody,
        }
    }

    /// Everyone may read and write (the Disk Paxos disk model: "each memory
    /// has a single region which always permits all processes to read and
    /// write all registers").
    pub fn open() -> Permission {
        Permission {
            read: PermSet::Nobody,
            write: PermSet::Nobody,
            rw: PermSet::Everybody,
        }
    }

    /// Whether `p` may read under this permission (`p ∈ R ∪ RW`).
    pub fn allows_read(&self, p: ActorId) -> bool {
        self.read.contains(p) || self.rw.contains(p)
    }

    /// Whether `p` may write under this permission (`p ∈ W ∪ RW`).
    pub fn allows_write(&self, p: ActorId) -> bool {
        self.write.contains(p) || self.rw.contains(p)
    }
}

/// Signature of a `legalChange` predicate: may `requester` change `region`'s
/// permission from `old` to `new`?
pub type LegalChangeFn =
    fn(requester: ActorId, region: RegionId, old: &Permission, new: &Permission) -> bool;

/// The algorithm-supplied policy deciding which permission changes the
/// memory accepts (§3, "Permission change").
#[derive(Clone, Copy)]
pub enum LegalChange {
    /// `legalChange` always returns false: **static permissions**.
    Static,
    /// `legalChange` always returns true (crash-failure algorithms, where
    /// permissions are a performance device rather than a defence).
    AnyChange,
    /// A custom predicate (e.g. Cheap Quorum permits only revoking the
    /// leader's write permission on the leader region).
    Policy(LegalChangeFn),
}

impl LegalChange {
    /// Evaluates the policy.
    pub fn allows(
        &self,
        requester: ActorId,
        region: RegionId,
        old: &Permission,
        new: &Permission,
    ) -> bool {
        match self {
            LegalChange::Static => false,
            LegalChange::AnyChange => true,
            LegalChange::Policy(f) => f(requester, region, old, new),
        }
    }
}

impl fmt::Debug for LegalChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalChange::Static => write!(f, "LegalChange::Static"),
            LegalChange::AnyChange => write!(f, "LegalChange::AnyChange"),
            LegalChange::Policy(_) => write!(f, "LegalChange::Policy(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ActorId = ActorId(0);
    const P1: ActorId = ActorId(1);
    const P2: ActorId = ActorId(2);

    #[test]
    fn permset_membership() {
        assert!(!PermSet::Nobody.contains(P0));
        assert!(PermSet::Everybody.contains(P0));
        assert!(PermSet::only([P1]).contains(P1));
        assert!(!PermSet::only([P1]).contains(P2));
        assert!(PermSet::all_but([P1]).contains(P2));
        assert!(!PermSet::all_but([P1]).contains(P1));
    }

    #[test]
    fn exclusive_writer_shape() {
        let p = Permission::exclusive_writer(P1);
        assert!(p.allows_write(P1));
        assert!(p.allows_read(P1));
        assert!(!p.allows_write(P0));
        assert!(p.allows_read(P0));
    }

    #[test]
    fn read_only_and_open() {
        let ro = Permission::read_only();
        assert!(ro.allows_read(P0) && !ro.allows_write(P0));
        let open = Permission::open();
        assert!(open.allows_read(P2) && open.allows_write(P2));
    }

    #[test]
    fn legal_change_policies() {
        let old = Permission::exclusive_writer(P0);
        let new = Permission::read_only();
        assert!(!LegalChange::Static.allows(P1, RegionId(0), &old, &new));
        assert!(LegalChange::AnyChange.allows(P1, RegionId(0), &old, &new));
        fn only_p2(r: ActorId, _: RegionId, _: &Permission, _: &Permission) -> bool {
            r == ActorId(2)
        }
        let pol = LegalChange::Policy(only_p2);
        assert!(!pol.allows(P1, RegionId(0), &old, &new));
        assert!(pol.allows(P2, RegionId(0), &old, &new));
    }
}
