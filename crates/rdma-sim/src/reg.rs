//! Register identifiers.
//!
//! The paper's memories hold *registers*, grouped into *memory regions*. The
//! protocols index registers along up to three dimensions (e.g. the
//! non-equivocating broadcast slots `slots[p, k, q]`), so a register id is a
//! namespace plus three coordinates.

use std::fmt;

/// Identifies one register within a memory.
///
/// `space` is a protocol-chosen namespace constant; `a`, `b`, `c` are
/// protocol-defined coordinates (unused ones are zero by convention).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId {
    /// Protocol namespace (e.g. "non-equivocating broadcast slots").
    pub space: u16,
    /// First coordinate.
    pub a: u64,
    /// Second coordinate.
    pub b: u64,
    /// Third coordinate.
    pub c: u64,
}

impl RegId {
    /// A register addressed by namespace and three coordinates.
    pub fn new(space: u16, a: u64, b: u64, c: u64) -> RegId {
        RegId { space, a, b, c }
    }

    /// A singleton register in `space` (all coordinates zero).
    pub fn scalar(space: u16) -> RegId {
        RegId::new(space, 0, 0, 0)
    }

    /// A register addressed by one coordinate.
    pub fn one(space: u16, a: u64) -> RegId {
        RegId::new(space, a, 0, 0)
    }

    /// A register addressed by two coordinates.
    pub fn two(space: u16, a: u64, b: u64) -> RegId {
        RegId::new(space, a, b, 0)
    }
}

impl fmt::Debug for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}[{},{},{}]", self.space, self.a, self.b, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(RegId::scalar(3), RegId::new(3, 0, 0, 0));
        assert_eq!(RegId::one(3, 7), RegId::new(3, 7, 0, 0));
        assert_eq!(RegId::two(3, 7, 9), RegId::new(3, 7, 9, 0));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [RegId::one(1, 2), RegId::one(1, 1), RegId::scalar(0)];
        v.sort();
        assert_eq!(v[0], RegId::scalar(0));
        assert_eq!(v[1], RegId::one(1, 1));
    }
}
