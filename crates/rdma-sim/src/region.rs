//! Memory regions: named, permission-bearing subsets of a memory's registers.
//!
//! Accessing a register requires naming the region through which access is
//! claimed (paper §3: "when reading or writing data, a process specifies the
//! region and the register, and the system uses the region to determine if
//! access is allowed"). Regions may overlap in the model; the paper's
//! algorithms (and ours) use disjoint regions.

use std::fmt;

use crate::reg::RegId;

/// Identifies a memory region within one memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mr{}", self.0)
    }
}

/// Which registers a region contains.
///
/// Regions must describe unbounded register sets (e.g. "all broadcast slots
/// written by process p", for every sequence number), so they are patterns
/// rather than explicit sets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionSpec {
    /// Every register of the memory (the Disk Paxos disk shape, and the
    /// Protected Memory Paxos per-memory region).
    All,
    /// Exactly one register.
    Exact(RegId),
    /// All registers in a namespace.
    Space(u16),
    /// All registers in a namespace whose present coordinates match.
    /// `None` coordinates are wildcards.
    Pattern {
        /// Namespace to match.
        space: u16,
        /// Required first coordinate, or wildcard.
        a: Option<u64>,
        /// Required second coordinate, or wildcard.
        b: Option<u64>,
        /// Required third coordinate, or wildcard.
        c: Option<u64>,
    },
}

impl RegionSpec {
    /// All registers in `space` with first coordinate `a` (e.g. "process
    /// p's row of broadcast slots").
    pub fn row(space: u16, a: u64) -> RegionSpec {
        RegionSpec::Pattern {
            space,
            a: Some(a),
            b: None,
            c: None,
        }
    }

    /// Membership test.
    pub fn contains(&self, reg: RegId) -> bool {
        match *self {
            RegionSpec::All => true,
            RegionSpec::Exact(r) => r == reg,
            RegionSpec::Space(s) => s == reg.space,
            RegionSpec::Pattern { space, a, b, c } => {
                space == reg.space
                    && a.is_none_or(|v| v == reg.a)
                    && b.is_none_or(|v| v == reg.b)
                    && c.is_none_or(|v| v == reg.c)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_everything() {
        assert!(RegionSpec::All.contains(RegId::new(9, 1, 2, 3)));
    }

    #[test]
    fn exact_matches_one() {
        let spec = RegionSpec::Exact(RegId::one(1, 5));
        assert!(spec.contains(RegId::one(1, 5)));
        assert!(!spec.contains(RegId::one(1, 6)));
    }

    #[test]
    fn space_matches_namespace() {
        let spec = RegionSpec::Space(4);
        assert!(spec.contains(RegId::new(4, 9, 9, 9)));
        assert!(!spec.contains(RegId::new(5, 9, 9, 9)));
    }

    #[test]
    fn row_pattern() {
        let spec = RegionSpec::row(2, 7);
        assert!(spec.contains(RegId::new(2, 7, 0, 0)));
        assert!(spec.contains(RegId::new(2, 7, 123, 456)));
        assert!(!spec.contains(RegId::new(2, 8, 0, 0)));
        assert!(!spec.contains(RegId::new(3, 7, 0, 0)));
    }

    #[test]
    fn full_pattern() {
        let spec = RegionSpec::Pattern {
            space: 1,
            a: Some(2),
            b: None,
            c: Some(4),
        };
        assert!(spec.contains(RegId::new(1, 2, 99, 4)));
        assert!(!spec.contains(RegId::new(1, 2, 99, 5)));
    }
}
