//! The wire protocol between processes and memories.
//!
//! A memory operation is a request/response round trip — two network delays,
//! matching the paper's cost model ("a memory operation takes two delays
//! because its hardware implementation requires a round trip"). Requests and
//! responses travel as ordinary simulation messages; protocols embed them in
//! their own message enums through [`MemEmbed`].

use std::fmt;

use crate::perm::Permission;
use crate::reg::RegId;
use crate::region::RegionId;

/// Correlates a memory response with its request. Unique per client.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// A memory operation request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemRequest<V> {
    /// `read(mr, r)` — returns the register value if the caller has read
    /// permission on `region` and `reg ∈ region`.
    Read {
        /// Region through which access is claimed.
        region: RegionId,
        /// Register to read.
        reg: RegId,
    },
    /// `write(mr, r, v)`.
    Write {
        /// Region through which access is claimed.
        region: RegionId,
        /// Register to write.
        reg: RegId,
        /// Value to store.
        value: V,
    },
    /// Writes several registers of one region in a single round trip.
    ///
    /// Models RDMA scatter-gather / doorbell batching: the NIC applies one
    /// work request covering multiple registered locations, so the cost —
    /// two network delays, one memory operation — is that of a single
    /// write no matter how many registers it covers. Permission checking
    /// is all-or-nothing: if the caller lacks write permission or any
    /// register falls outside the region, nothing is written and the
    /// memory naks.
    WriteMany {
        /// Region through which access is claimed.
        region: RegionId,
        /// `(register, value)` pairs, applied atomically in order.
        writes: Vec<(RegId, V)>,
    },
    /// Reads every currently-written register of `region` in one round trip,
    /// optionally restricted to a sub-pattern.
    ///
    /// This models an RDMA read of a registered buffer (one DMA fetch of a
    /// whole slot array — or a strided column of it — as §7 describes: "the
    /// process can register the two dimensional array of values in read-only
    /// mode"). Registers never written (still ⊥) are absent from the
    /// response.
    ReadRange {
        /// Region to scan (permission is checked against this region).
        region: RegionId,
        /// Optional extra filter: only registers also matching this pattern
        /// are returned.
        within: Option<crate::region::RegionSpec>,
    },
    /// `changePermission(mr, new_perm)`, subject to the memory's
    /// `legalChange` policy.
    ChangePerm {
        /// Region whose permission should change.
        region: RegionId,
        /// Requested new permission triple.
        new: Permission,
    },
}

impl<V> MemRequest<V> {
    /// Short tag for tracing.
    pub fn kind_name(&self) -> &'static str {
        match self {
            MemRequest::Read { .. } => "read",
            MemRequest::Write { .. } => "write",
            MemRequest::WriteMany { .. } => "write_many",
            MemRequest::ReadRange { .. } => "read_range",
            MemRequest::ChangePerm { .. } => "change_perm",
        }
    }
}

/// A memory operation response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemResponse<V> {
    /// Successful read; `None` is the initial value ⊥.
    Value(Option<V>),
    /// Successful range read: the written registers of the region.
    Range(Vec<(RegId, V)>),
    /// Successful write.
    Ack,
    /// Permission or region check failed (the paper's `nak`).
    Nak,
    /// Permission change applied.
    PermAck,
    /// Permission change rejected by `legalChange` (it "becomes a no-op";
    /// we additionally tell the caller so protocols can observe it).
    PermNak,
}

impl<V> MemResponse<V> {
    /// Whether this response indicates the operation took effect.
    pub fn is_ok(&self) -> bool {
        !matches!(self, MemResponse::Nak | MemResponse::PermNak)
    }
}

/// A memory-protocol message: either leg of the round trip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemWire<V> {
    /// Process → memory.
    Req {
        /// Correlation id chosen by the client.
        op: OpId,
        /// The operation.
        req: MemRequest<V>,
    },
    /// Memory → process.
    Resp {
        /// Correlation id echoed back.
        op: OpId,
        /// The outcome.
        resp: MemResponse<V>,
    },
}

/// Embedding of the memory wire protocol into a protocol's message type.
///
/// Protocol crates define one message enum per simulation and give it a
/// variant wrapping [`MemWire`]; the [`MemoryActor`] then works for any such
/// enum.
///
/// [`MemoryActor`]: crate::MemoryActor
pub trait MemEmbed<V>: Sized + Clone + fmt::Debug + 'static {
    /// Wraps a wire message.
    fn from_wire(wire: MemWire<V>) -> Self;
    /// Unwraps a wire message, or returns the original if this message is
    /// not part of the memory protocol.
    fn into_wire(self) -> Result<MemWire<V>, Self>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_ok_classification() {
        assert!(MemResponse::<u8>::Value(None).is_ok());
        assert!(MemResponse::<u8>::Range(vec![]).is_ok());
        assert!(MemResponse::<u8>::Ack.is_ok());
        assert!(MemResponse::<u8>::PermAck.is_ok());
        assert!(!MemResponse::<u8>::Nak.is_ok());
        assert!(!MemResponse::<u8>::PermNak.is_ok());
    }

    #[test]
    fn request_kind_names() {
        let r: MemRequest<u8> = MemRequest::Read {
            region: RegionId(0),
            reg: RegId::scalar(0),
        };
        assert_eq!(r.kind_name(), "read");
        let r: MemRequest<u8> = MemRequest::ReadRange {
            region: RegionId(0),
            within: None,
        };
        assert_eq!(r.kind_name(), "read_range");
    }
}
