//! The wire protocol between processes and memories.
//!
//! A memory operation is a request/response round trip — two network delays,
//! matching the paper's cost model ("a memory operation takes two delays
//! because its hardware implementation requires a round trip"). Requests and
//! responses travel as ordinary simulation messages; protocols embed them in
//! their own message enums through [`MemEmbed`].

use std::fmt;

use simnet::{CostClass, Verb};

use crate::perm::Permission;
use crate::reg::RegId;
use crate::region::RegionId;

/// Correlates a memory response with its request. Unique per client.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// A memory operation request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemRequest<V> {
    /// `read(mr, r)` — returns the register value if the caller has read
    /// permission on `region` and `reg ∈ region`.
    Read {
        /// Region through which access is claimed.
        region: RegionId,
        /// Register to read.
        reg: RegId,
    },
    /// `write(mr, r, v)`.
    Write {
        /// Region through which access is claimed.
        region: RegionId,
        /// Register to write.
        reg: RegId,
        /// Value to store.
        value: V,
    },
    /// Writes several registers of one region in a single round trip.
    ///
    /// Models RDMA scatter-gather / doorbell batching: the NIC applies one
    /// work request covering multiple registered locations, so the cost —
    /// two network delays, one memory operation — is that of a single
    /// write no matter how many registers it covers. Permission checking
    /// is all-or-nothing: if the caller lacks write permission or any
    /// register falls outside the region, nothing is written and the
    /// memory naks.
    WriteMany {
        /// Region through which access is claimed.
        region: RegionId,
        /// `(register, value)` pairs, applied atomically in order.
        writes: Vec<(RegId, V)>,
    },
    /// Reads every currently-written register of `region` in one round trip,
    /// optionally restricted to a sub-pattern.
    ///
    /// This models an RDMA read of a registered buffer (one DMA fetch of a
    /// whole slot array — or a strided column of it — as §7 describes: "the
    /// process can register the two dimensional array of values in read-only
    /// mode"). Registers never written (still ⊥) are absent from the
    /// response.
    ReadRange {
        /// Region to scan (permission is checked against this region).
        region: RegionId,
        /// Optional extra filter: only registers also matching this pattern
        /// are returned.
        within: Option<crate::region::RegionSpec>,
    },
    /// `changePermission(mr, new_perm)`, subject to the memory's
    /// `legalChange` policy.
    ChangePerm {
        /// Region whose permission should change.
        region: RegionId,
        /// Requested new permission triple.
        new: Permission,
    },
}

impl<V> MemRequest<V> {
    /// Short tag for tracing.
    pub fn kind_name(&self) -> &'static str {
        match self {
            MemRequest::Read { .. } => "read",
            MemRequest::Write { .. } => "write",
            MemRequest::WriteMany { .. } => "write_many",
            MemRequest::ReadRange { .. } => "read_range",
            MemRequest::ChangePerm { .. } => "change_perm",
        }
    }

    /// Cost classification of the request leg under
    /// [`simnet::DelayModel::Rdma`]: reads map to the READ verb, writes to
    /// WRITE (a [`MemRequest::WriteMany`] of `k` entries is one doorbell
    /// batch of `k` work requests), and permission changes to the atomic
    /// CAS verb. Payload bytes are approximated from the in-memory sizes
    /// of the register ids and values carried.
    pub fn cost_class(&self) -> CostClass {
        let entry = entry_bytes::<V>();
        match self {
            MemRequest::Read { .. } => CostClass::new(Verb::Read, entry, 1),
            MemRequest::Write { .. } => CostClass::new(Verb::Write, entry, 1),
            MemRequest::WriteMany { writes, .. } => {
                let k = writes.len().max(1) as u32;
                CostClass::new(Verb::Write, k.saturating_mul(entry), k)
            }
            // The request leg of a range read carries only the pattern;
            // the payload comes back on the response leg.
            MemRequest::ReadRange { .. } => CostClass::new(Verb::Read, entry, 1),
            MemRequest::ChangePerm { .. } => {
                CostClass::new(Verb::Cas, std::mem::size_of::<Permission>() as u32, 1)
            }
        }
    }
}

/// Approximate serialized size of one `(register, value)` entry.
fn entry_bytes<V>() -> u32 {
    (std::mem::size_of::<RegId>() + std::mem::size_of::<V>()) as u32
}

/// A memory operation response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemResponse<V> {
    /// Successful read; `None` is the initial value ⊥.
    Value(Option<V>),
    /// Successful range read: the written registers of the region.
    Range(Vec<(RegId, V)>),
    /// Successful write.
    Ack,
    /// Permission or region check failed (the paper's `nak`).
    Nak,
    /// Permission change applied.
    PermAck,
    /// Permission change rejected by `legalChange` (it "becomes a no-op";
    /// we additionally tell the caller so protocols can observe it).
    PermNak,
}

impl<V> MemResponse<V> {
    /// Whether this response indicates the operation took effect.
    pub fn is_ok(&self) -> bool {
        !matches!(self, MemResponse::Nak | MemResponse::PermNak)
    }

    /// Cost classification of the response leg: a completion travelling
    /// back as an inline send, sized by the payload it returns (one value
    /// for [`MemResponse::Value`], the whole written slice for
    /// [`MemResponse::Range`], nothing for acks/naks).
    pub fn cost_class(&self) -> CostClass {
        let entry = entry_bytes::<V>();
        match self {
            MemResponse::Value(Some(_)) => CostClass::new(Verb::Send, entry, 1),
            MemResponse::Range(rows) => {
                CostClass::new(Verb::Send, (rows.len() as u32).saturating_mul(entry), 1)
            }
            _ => CostClass::SEND,
        }
    }
}

/// A memory-protocol message: either leg of the round trip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemWire<V> {
    /// Process → memory.
    Req {
        /// Correlation id chosen by the client.
        op: OpId,
        /// The operation.
        req: MemRequest<V>,
    },
    /// Memory → process.
    Resp {
        /// Correlation id echoed back.
        op: OpId,
        /// The outcome.
        resp: MemResponse<V>,
    },
}

impl<V> MemWire<V> {
    /// Cost classification of this leg (request or response) under
    /// [`simnet::DelayModel::Rdma`].
    pub fn cost_class(&self) -> CostClass {
        match self {
            MemWire::Req { req, .. } => req.cost_class(),
            MemWire::Resp { resp, .. } => resp.cost_class(),
        }
    }
}

/// Embedding of the memory wire protocol into a protocol's message type.
///
/// Protocol crates define one message enum per simulation and give it a
/// variant wrapping [`MemWire`]; the [`MemoryActor`] then works for any such
/// enum.
///
/// [`MemoryActor`]: crate::MemoryActor
pub trait MemEmbed<V>: Sized + Clone + fmt::Debug + 'static {
    /// Wraps a wire message.
    fn from_wire(wire: MemWire<V>) -> Self;
    /// Unwraps a wire message, or returns the original if this message is
    /// not part of the memory protocol.
    fn into_wire(self) -> Result<MemWire<V>, Self>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_ok_classification() {
        assert!(MemResponse::<u8>::Value(None).is_ok());
        assert!(MemResponse::<u8>::Range(vec![]).is_ok());
        assert!(MemResponse::<u8>::Ack.is_ok());
        assert!(MemResponse::<u8>::PermAck.is_ok());
        assert!(!MemResponse::<u8>::Nak.is_ok());
        assert!(!MemResponse::<u8>::PermNak.is_ok());
    }

    #[test]
    fn request_kind_names() {
        let r: MemRequest<u8> = MemRequest::Read {
            region: RegionId(0),
            reg: RegId::scalar(0),
        };
        assert_eq!(r.kind_name(), "read");
        let r: MemRequest<u8> = MemRequest::ReadRange {
            region: RegionId(0),
            within: None,
        };
        assert_eq!(r.kind_name(), "read_range");
    }

    #[test]
    fn cost_classes_tag_verbs_and_batch_width() {
        let w: MemRequest<u64> = MemRequest::Write {
            region: RegionId(0),
            reg: RegId::scalar(0),
            value: 9,
        };
        assert_eq!(w.cost_class().verb, Verb::Write);
        assert_eq!(w.cost_class().wrs, 1);

        let many: MemRequest<u64> = MemRequest::WriteMany {
            region: RegionId(0),
            writes: (0..5u64).map(|i| (RegId::scalar(i as u16), i)).collect(),
        };
        let c = many.cost_class();
        assert_eq!(c.verb, Verb::Write);
        assert_eq!(c.wrs, 5);
        assert_eq!(c.bytes, 5 * w.cost_class().bytes);

        let perm: MemRequest<u64> = MemRequest::ChangePerm {
            region: RegionId(0),
            new: Permission::open(),
        };
        assert_eq!(perm.cost_class().verb, Verb::Cas);

        let range: MemResponse<u64> = MemResponse::Range(vec![(RegId::scalar(0), 1); 4]);
        assert_eq!(range.cost_class().verb, Verb::Send);
        assert_eq!(range.cost_class().bytes, 4 * w.cost_class().bytes);
        assert_eq!(MemResponse::<u64>::Ack.cost_class(), CostClass::SEND);
    }
}
