//! Property tests of the memory model: permission algebra, region
//! membership, and the data-path invariant that unauthorized operations
//! never change state.

use proptest::prelude::*;
use rdma_sim::{PermSet, Permission, RegId, RegionSpec};
use simnet::ActorId;

fn arb_pid() -> impl Strategy<Value = ActorId> {
    (0u32..8).prop_map(ActorId)
}

fn arb_permset() -> impl Strategy<Value = PermSet> {
    prop_oneof![
        Just(PermSet::Nobody),
        Just(PermSet::Everybody),
        proptest::collection::btree_set(arb_pid(), 0..4).prop_map(PermSet::Only),
        proptest::collection::btree_set(arb_pid(), 0..4).prop_map(PermSet::AllBut),
    ]
}

fn arb_reg() -> impl Strategy<Value = RegId> {
    (0u16..4, 0u64..4, 0u64..4, 0u64..4).prop_map(|(s, a, b, c)| RegId::new(s, a, b, c))
}

proptest! {
    /// AllBut is the complement of Only over any probe set.
    #[test]
    fn permset_complement(ids in proptest::collection::btree_set(arb_pid(), 0..4), p in arb_pid()) {
        let only = PermSet::Only(ids.clone());
        let allbut = PermSet::AllBut(ids);
        prop_assert_eq!(only.contains(p), !allbut.contains(p));
    }

    /// exclusive_writer: the writer can read and write; everyone else can
    /// only read — for every probe identity.
    #[test]
    fn exclusive_writer_law(w in arb_pid(), p in arb_pid()) {
        let perm = Permission::exclusive_writer(w);
        prop_assert!(perm.allows_read(p));
        prop_assert_eq!(perm.allows_write(p), p == w);
    }

    /// An arbitrary read set governs reads exactly; with no write or rw
    /// grants, writes are always denied.
    #[test]
    fn arbitrary_read_set_governs_reads(ps in arb_permset(), p in arb_pid()) {
        let perm = Permission { read: ps.clone(), write: PermSet::Nobody, rw: PermSet::Nobody };
        prop_assert_eq!(perm.allows_read(p), ps.contains(p));
        prop_assert!(!perm.allows_write(p));
    }

    /// read_only and open are constant functions of the probe.
    #[test]
    fn constant_permissions(p in arb_pid()) {
        let ro = Permission::read_only();
        prop_assert!(ro.allows_read(p) && !ro.allows_write(p));
        let open = Permission::open();
        prop_assert!(open.allows_read(p) && open.allows_write(p));
    }

    /// Region membership laws: All ⊇ Space ⊇ row ⊇ Exact, for matching
    /// registers.
    #[test]
    fn region_containment_chain(reg in arb_reg()) {
        prop_assert!(RegionSpec::All.contains(reg));
        prop_assert!(RegionSpec::Space(reg.space).contains(reg));
        prop_assert!(RegionSpec::row(reg.space, reg.a).contains(reg));
        prop_assert!(RegionSpec::Exact(reg).contains(reg));
    }

    /// A pattern with all coordinates pinned is equivalent to Exact.
    #[test]
    fn full_pattern_is_exact(reg in arb_reg(), probe in arb_reg()) {
        let pat = RegionSpec::Pattern {
            space: reg.space,
            a: Some(reg.a),
            b: Some(reg.b),
            c: Some(reg.c),
        };
        prop_assert_eq!(pat.contains(probe), RegionSpec::Exact(reg).contains(probe));
    }

    /// Wildcards only widen: if a pattern with pinned coordinate matches,
    /// the same pattern with that coordinate wild also matches.
    #[test]
    fn wildcard_monotone(reg in arb_reg(), probe in arb_reg()) {
        let pinned = RegionSpec::Pattern {
            space: reg.space, a: Some(reg.a), b: Some(reg.b), c: Some(reg.c),
        };
        let wild_b = RegionSpec::Pattern {
            space: reg.space, a: Some(reg.a), b: None, c: Some(reg.c),
        };
        if pinned.contains(probe) {
            prop_assert!(wild_b.contains(probe));
        }
    }
}

mod data_path {
    use rdma_sim::{
        LegalChange, MemEmbed, MemResponse, MemWire, MemoryActor, MemoryClient, Permission, RegId,
        RegionId, RegionSpec,
    };
    use simnet::{Actor, ActorId, Context, EventKind, Simulation, Time};

    use proptest::prelude::*;

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum TMsg {
        Mem(MemWire<u64>),
    }
    impl MemEmbed<u64> for TMsg {
        fn from_wire(wire: MemWire<u64>) -> Self {
            TMsg::Mem(wire)
        }
        fn into_wire(self) -> Result<MemWire<u64>, Self> {
            let TMsg::Mem(w) = self;
            Ok(w)
        }
    }

    const OWNED: RegionId = RegionId(0);
    const FOREIGN: RegionId = RegionId(1);

    /// Issues an arbitrary interleaving of reads/writes against an owned
    /// and a foreign region; tracks the model's answer against a local
    /// oracle of what the register must contain.
    struct Fuzzer {
        mem: ActorId,
        script: Vec<(bool /*write*/, bool /*owned*/, u64)>,
        client: MemoryClient<u64, TMsg>,
        oracle: Option<u64>,
        violations: usize,
        pending: std::collections::BTreeMap<rdma_sim::OpId, (bool, bool, u64)>,
    }

    impl Actor<TMsg> for Fuzzer {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => {
                    for (w, owned, v) in self.script.clone() {
                        let region = if owned { OWNED } else { FOREIGN };
                        let reg = if owned {
                            RegId::one(0, 0)
                        } else {
                            RegId::one(1, 0)
                        };
                        let op = if w {
                            self.client.write(ctx, self.mem, region, reg, v)
                        } else {
                            self.client.read(ctx, self.mem, region, reg)
                        };
                        self.pending.insert(op, (w, owned, v));
                    }
                }
                EventKind::Msg {
                    from,
                    msg: TMsg::Mem(wire),
                } => {
                    let Some(c) = self.client.on_wire(ctx, from, wire) else {
                        return;
                    };
                    let (w, owned, v) = self.pending.remove(&c.op).expect("tracked");
                    match (w, owned, c.resp) {
                        // Owned write must ack and becomes the oracle value
                        // (ops are FIFO per memory, so order matches).
                        (true, true, MemResponse::Ack) => self.oracle = Some(v),
                        (true, true, _) => self.violations += 1,
                        // Foreign write must nak.
                        (true, false, MemResponse::Nak) => {}
                        (true, false, _) => self.violations += 1,
                        // Owned read must match the oracle exactly.
                        (false, true, MemResponse::Value(got)) => {
                            if got != self.oracle {
                                self.violations += 1;
                            }
                        }
                        (false, true, _) => self.violations += 1,
                        // Foreign reads are allowed (read: everybody).
                        (false, false, MemResponse::Value(_)) => {}
                        (false, false, _) => self.violations += 1,
                    }
                }
                _ => {}
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Under any op interleaving: owned ops linearize FIFO, foreign
        /// writes never take effect, reads reflect exactly the acked
        /// writes.
        #[test]
        fn permission_and_fifo_invariants(
            script in proptest::collection::vec((any::<bool>(), any::<bool>(), 0u64..100), 1..24),
            seed in 0u64..1000,
        ) {
            let mut sim: Simulation<TMsg> = Simulation::new(seed);
            let mem = sim.add(
                MemoryActor::<u64, TMsg>::new(LegalChange::Static)
                    .with_region(OWNED, RegionSpec::Space(0), Permission::exclusive_writer(ActorId(1)))
                    .with_region(FOREIGN, RegionSpec::Space(1), Permission::exclusive_writer(ActorId(99))),
            );
            let f = sim.add(Fuzzer {
                mem,
                script,
                client: MemoryClient::new(),
                oracle: None,
                violations: 0,
                pending: Default::default(),
            });
            sim.run_to_quiescence(Time::from_delays(10_000));
            let fz = sim.actor_as::<Fuzzer>(f).unwrap();
            prop_assert!(fz.pending.is_empty(), "ops lost");
            prop_assert_eq!(fz.violations, 0);
        }
    }
}
