//! Offline stand-in for `criterion` (API subset).
//!
//! The build container has no registry access, so the bench targets link
//! this shim instead: it runs each registered closure a handful of times,
//! reports min/mean wall-clock per iteration, and skips all of criterion's
//! statistical machinery. The printed tables the benches produce (the
//! paper-reproduction output) are unaffected — they come from the bench
//! code itself.
//!
//! Iteration count: `CRITERION_SHIM_SAMPLES` env var, default 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Types usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Hands the measured closure to the runner.
pub struct Bencher {
    samples: u32,
    /// Filled by [`Bencher::iter`]: (total elapsed, iterations).
    measured: Option<(Duration, u32)>,
}

impl Bencher {
    /// Measures `f`, running it a fixed number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.measured = Some((start.elapsed(), self.samples));
    }
}

fn run_one(group: &str, id: &str, samples: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        measured: None,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match b.measured {
        Some((total, n)) if n > 0 => {
            let per = total / n;
            println!("bench {label:<40} {per:>12.2?}/iter ({n} iters)");
        }
        _ => println!("bench {label:<40} (no measurement)"),
    }
}

fn samples_from_env() -> u32 {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Shim driver; collects nothing, runs benches eagerly.
pub struct Criterion {
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            samples: samples_from_env(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _parent: self,
        }
    }

    /// Registers (and immediately runs) an ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one("", &id.into_id(), self.samples, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-bench sample count (capped at the shim's env default so
    /// `cargo test`-invoked runs stay fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u32).min(samples_from_env());
        self.samples = self.samples.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.name, &id.into_id(), self.samples, &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&self.name, &id.into_id(), self.samples, &mut g);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a bench entry point running the listed functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary (harness = false).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes flags like --bench / --test; none change shim
            // behaviour, so they are accepted and ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("trivial", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        c.bench_function("ungrouped", |b| b.iter(|| ()));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all() {
        benches();
    }
}
