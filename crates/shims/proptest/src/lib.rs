//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! `prop_assert!` / `prop_assert_eq!`, integer-range and tuple strategies,
//! [`strategy::Just`], [`prop_oneof!`], `any::<T>()`, `.prop_map(..)`, and
//! `collection::{vec, btree_set}`.
//!
//! Cases are sampled deterministically: the RNG for case `i` of test `t` is
//! seeded from `hash(t) ^ i`, so failures reproduce exactly across runs
//! (there is no failure persistence file and no shrinking — the failing
//! inputs are printed instead).

#![forbid(unsafe_code)]

use std::fmt;

pub use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// Test-runner types referenced by the macros.
pub mod test_runner {
    /// Why a test case failed (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type each generated case body evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` sampled cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::StdRng;
    use rand::Rng as _;

    /// A recipe for sampling values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (for heterogeneous unions).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Strategy returning a clone of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (what [`prop_oneof!`] builds).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<V> {
        alternatives: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given non-empty alternative list.
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { alternatives }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> V {
            let ix = rng.gen_range(0..self.alternatives.len());
            self.alternatives[ix].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.sample(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng as _;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vec of `size.len()` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s; duplicates collapse, so the set may be
    /// smaller than the drawn size (matching real proptest's semantics
    /// loosely enough for these tests).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Set of up to `size.len()` elements from `element`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s; duplicate keys collapse like
    /// [`btree_set`]'s elements.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Map of up to `size.len()` entries with keys from `key` and values
    /// from `value`.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng as _;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> u32 {
            rng.gen()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Deterministic per-(test, case) RNG seed.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    StdRng::seed_from_u64(h.finish() ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Renders one argument for the failure report.
pub fn fmt_arg(name: &str, value: &dyn fmt::Debug) -> String {
    format!("{name} = {value:?}")
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                // Rendered before the body runs: the body may move the
                // inputs, and shrinking-free failure reports need them.
                let __report: String = [
                    $($crate::fmt_arg(stringify!($arg), &$arg),)*
                ]
                .join(", ");
                let result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!("proptest case {case} failed: {e}\n  inputs: {__report}");
                }
            }
        }
    )*};
}

/// `prop_assume!`: skips the case (successfully) when the assumption does
/// not hold. Without shrinking there is no rejection bookkeeping; the case
/// simply passes vacuously.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// `prop_assert!`: like `assert!` but reported through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!`: equality assertion through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// `prop_assert_ne!`: inequality assertion through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Uniform choice between alternative strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u64> {
        (0u64..10).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_maps(x in 0u64..100, y in small(), b in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(y % 2, 0);
            let _: bool = b;
        }

        #[test]
        fn collections(v in crate::collection::vec(0u32..5, 1..8),
                       s in crate::collection::btree_set(0u32..5, 0..4)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(s.len() < 4);
            for x in v { prop_assert!(x < 5); }
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u64), Just(2u64), 10u64..12]) {
            prop_assert!(x == 1 || x == 2 || (10..12).contains(&x));
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = crate::case_rng("t", 0);
        let mut b = crate::case_rng("t", 0);
        use rand::Rng as _;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
