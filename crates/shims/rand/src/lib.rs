//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no registry access, so this workspace ships the
//! small slice of `rand` it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`], here xoshiro256++ seeded through SplitMix64
//! rather than ChaCha12), the [`Rng`] extension trait with `gen`,
//! `gen_range` and `gen_bool`, and the [`SeedableRng`] constructor.
//!
//! Determinism is the only contract the simulation kernel relies on: a
//! given seed must yield the same sequence on every platform and run. The
//! statistical quality of xoshiro256++ is far beyond what schedule jitter
//! needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not
    /// cryptographic; simulations only need determinism and decent
    /// equidistribution.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A type samplable uniformly from all of its values (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// A range samplable uniformly; implemented for `Range` and
/// `RangeInclusive` over the integer types the workspace draws from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by 128-bit widening multiply (Lemire's
/// unbiased-enough reduction without the rejection loop; the bias is
/// < 2^-64 per draw, irrelevant for schedule jitter and imperceptible to
/// the property tests).
fn mul_reduce<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_reduce(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == 0 && hi as u128 == <$t>::MAX as u128 {
                    return <$t>::from_le_bytes(
                        rng.next_u64().to_le_bytes()[..std::mem::size_of::<$t>()]
                            .try_into()
                            .expect("size"),
                    );
                }
                let span = (hi - lo) as u64 + 1;
                lo + mul_reduce(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full-range distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53-bit mantissa comparison, deterministic across platforms.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(0u64..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
