//! # sigsim — simulated unforgeable signatures
//!
//! The paper's algorithms (§3 *Signatures*) assume primitives `sign(v)` and
//! `sValid(p, v)`: unforgeable signatures where only process `p` can produce
//! a signature attributable to `p`, and anyone can verify one.
//!
//! For a protocol-logic reproduction, cryptographic hardness is unnecessary:
//! what matters is that the *simulation* cannot contain a forged signature.
//! This crate enforces unforgeability **by construction**:
//!
//! * The [`SigAuthority`] holds one secret 64-bit key per identity. Keys are
//!   never exposed.
//! * A process signs through its [`Signer`], handed out by the harness for
//!   that process's identity only. Byzantine actor implementations receive a
//!   `Signer` for their own id and therefore can *sign anything as
//!   themselves* (lie, equivocate at the application layer) but cannot mint
//!   a valid signature attributable to a correct process.
//! * Verification recomputes a keyed digest over the value's canonical
//!   [`Hash`] feed. Digests are 64-bit [`SipHash`] outputs — plenty for an
//!   in-process simulation; this is documented as simulation-grade, not
//!   cryptography.
//!
//! Signature creations and verifications are counted, feeding the paper's
//! "one signature in the common case" measurement for Cheap Quorum (§4.2).
//!
//! ```
//! use sigsim::{SigAuthority, SigVerifier};
//! use simnet::ActorId;
//!
//! let mut auth = SigAuthority::new(7);
//! let alice = auth.register(ActorId(0));
//! let bob = auth.register(ActorId(1));
//! let verifier = auth.verifier();
//!
//! let sig = alice.sign(&"attack at dawn");
//! assert!(verifier.valid(ActorId(0), &"attack at dawn", &sig));
//! assert!(!verifier.valid(ActorId(0), &"retreat", &sig)); // altered value
//! assert!(!verifier.valid(ActorId(1), &"attack at dawn", &sig)); // wrong signer
//! drop(bob);
//! ```
//!
//! [`SipHash`]: std::collections::hash_map::DefaultHasher

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use simnet::ActorId;

/// A signature over a value, attributable to one identity.
///
/// Opaque to protocols: its only uses are carrying it in messages/registers
/// and passing it to [`SigVerifier::valid`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature {
    signer: ActorId,
    tag: u64,
}

impl Signature {
    /// The identity this signature claims to come from. Claims are only
    /// meaningful after [`SigVerifier::valid`] succeeds.
    pub fn claimed_signer(&self) -> ActorId {
        self.signer
    }

    /// A syntactically well-formed but invalid signature, as a Byzantine
    /// process might fabricate. Useful in adversary implementations and
    /// tests; verification always rejects it (up to 64-bit digest collision,
    /// which the constructor avoids by construction for the authority's
    /// keyspace only probabilistically — in practice tests never collide).
    pub fn forged(claimed: ActorId, junk: u64) -> Signature {
        Signature {
            signer: claimed,
            tag: junk,
        }
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig[{}:{:08x}]", self.signer, self.tag as u32)
    }
}

/// Usage counters. Atomics (relaxed — they are statistics, not
/// synchronization) so signer/verifier handles stay `Send + Sync` and
/// signed actors can execute on the partitioned parallel kernel's worker
/// threads.
#[derive(Debug, Default)]
struct Counters {
    created: AtomicU64,
    verified: AtomicU64,
    rejected: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    keys: RwLock<BTreeMap<ActorId, u64>>,
    counters: Counters,
}

impl Inner {
    fn digest<T: Hash + ?Sized>(&self, signer: ActorId, value: &T) -> Option<u64> {
        let key = *self.keys.read().expect("key table poisoned").get(&signer)?;
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        signer.hash(&mut h);
        value.hash(&mut h);
        Some(h.finish())
    }
}

/// The trusted signing authority: registers identities and issues
/// [`Signer`]s and [`SigVerifier`]s.
///
/// One authority is shared per simulation. It is the analogue of the PKI the
/// paper assumes when it assumes unforgeable signatures.
#[derive(Debug)]
pub struct SigAuthority {
    inner: Arc<Inner>,
    rng: StdRng,
}

impl SigAuthority {
    /// Creates an authority with a seeded key generator.
    pub fn new(seed: u64) -> SigAuthority {
        SigAuthority {
            inner: Arc::new(Inner {
                keys: RwLock::new(BTreeMap::new()),
                counters: Counters::default(),
            }),
            rng: StdRng::seed_from_u64(seed ^ 0x5169_5349_4d5f_4b45), // "SIGSIM_KE"
        }
    }

    /// Registers `id` and returns its private [`Signer`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered (identities are unique).
    pub fn register(&mut self, id: ActorId) -> Signer {
        let key: u64 = self.rng.gen();
        let prev = self
            .inner
            .keys
            .write()
            .expect("key table poisoned")
            .insert(id, key);
        assert!(prev.is_none(), "identity {id} registered twice");
        Signer {
            inner: Arc::clone(&self.inner),
            me: id,
        }
    }

    /// Returns a verifier handle. Any number may be created; they share the
    /// authority's counters.
    pub fn verifier(&self) -> SigVerifier {
        SigVerifier {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Total signatures created so far.
    pub fn signatures_created(&self) -> u64 {
        self.inner.counters.created.load(Ordering::Relaxed)
    }

    /// Total verification checks performed so far.
    pub fn verifications(&self) -> u64 {
        self.inner.counters.verified.load(Ordering::Relaxed)
    }

    /// Verification checks that returned false.
    pub fn rejections(&self) -> u64 {
        self.inner.counters.rejected.load(Ordering::Relaxed)
    }
}

/// The private signing capability of one identity.
///
/// Holding a `Signer` is what it means to *be* that identity; the harness
/// gives each actor exactly its own.
#[derive(Clone)]
pub struct Signer {
    inner: Arc<Inner>,
    me: ActorId,
}

impl Signer {
    /// The identity this signer signs as.
    pub fn id(&self) -> ActorId {
        self.me
    }

    /// Signs `value` (the paper's `sign(v)`).
    pub fn sign<T: Hash + ?Sized>(&self, value: &T) -> Signature {
        self.inner.counters.created.fetch_add(1, Ordering::Relaxed);
        let tag = self
            .inner
            .digest(self.me, value)
            .expect("signer identity vanished from authority");
        Signature {
            signer: self.me,
            tag,
        }
    }
}

impl fmt::Debug for Signer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signer({})", self.me)
    }
}

/// A verification handle (the paper's `sValid(p, v)`).
#[derive(Clone)]
pub struct SigVerifier {
    inner: Arc<Inner>,
}

impl SigVerifier {
    /// Returns true iff `sig` is a valid signature by `signer` over `value`.
    pub fn valid<T: Hash + ?Sized>(&self, signer: ActorId, value: &T, sig: &Signature) -> bool {
        self.inner.counters.verified.fetch_add(1, Ordering::Relaxed);
        let ok = sig.signer == signer && (self.inner.digest(signer, value) == Some(sig.tag));
        if !ok {
            self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Convenience: checks that `sig` is valid for the signer it claims.
    pub fn valid_claimed<T: Hash + ?Sized>(&self, value: &T, sig: &Signature) -> bool {
        self.valid(sig.claimed_signer(), value, sig)
    }
}

impl fmt::Debug for SigVerifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SigVerifier({} identities)",
            self.inner.keys.read().expect("key table poisoned").len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Signer, Signer, SigVerifier, SigAuthority) {
        let mut auth = SigAuthority::new(123);
        let a = auth.register(ActorId(0));
        let b = auth.register(ActorId(1));
        let v = auth.verifier();
        (a, b, v, auth)
    }

    #[test]
    fn sign_verify_round_trip() {
        let (a, _, v, _) = setup();
        let sig = a.sign(&(1u64, "x"));
        assert!(v.valid(ActorId(0), &(1u64, "x"), &sig));
        assert!(v.valid_claimed(&(1u64, "x"), &sig));
    }

    #[test]
    fn altered_value_rejected() {
        let (a, _, v, _) = setup();
        let sig = a.sign(&42u64);
        assert!(!v.valid(ActorId(0), &43u64, &sig));
    }

    #[test]
    fn cross_signer_rejected() {
        let (a, b, v, _) = setup();
        let sa = a.sign(&7u64);
        let sb = b.sign(&7u64);
        // b cannot pass off its signature as a's, nor vice versa.
        assert!(!v.valid(ActorId(0), &7u64, &sb));
        assert!(!v.valid(ActorId(1), &7u64, &sa));
    }

    #[test]
    fn forged_signature_rejected() {
        let (_, _, v, _) = setup();
        for junk in [0u64, 1, u64::MAX, 0xdead_beef] {
            let f = Signature::forged(ActorId(0), junk);
            assert!(!v.valid(ActorId(0), &7u64, &f));
        }
    }

    #[test]
    fn unknown_identity_rejected() {
        let (a, _, v, _) = setup();
        let sig = a.sign(&7u64);
        assert!(!v.valid(ActorId(9), &7u64, &sig));
    }

    #[test]
    fn counters_track_usage() {
        let (a, _, v, auth) = setup();
        let sig = a.sign(&1u8);
        let _ = a.sign(&2u8);
        assert!(v.valid(ActorId(0), &1u8, &sig));
        assert!(!v.valid(ActorId(0), &9u8, &sig));
        assert_eq!(auth.signatures_created(), 2);
        assert_eq!(auth.verifications(), 2);
        assert_eq!(auth.rejections(), 1);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut auth = SigAuthority::new(1);
        let _a = auth.register(ActorId(0));
        let _b = auth.register(ActorId(0));
    }

    #[test]
    fn deterministic_keys_from_seed() {
        let mk = || {
            let mut auth = SigAuthority::new(77);
            let s = auth.register(ActorId(3));
            s.sign(&"v")
        };
        assert_eq!(mk(), mk());
    }
}
