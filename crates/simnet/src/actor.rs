//! The actor abstraction.
//!
//! A simulation is a set of actors — processes and memories — that take
//! steps only in reaction to events. Per the paper's model (§3), in each
//! step an actor may send messages / invoke memory operations (by emitting
//! further events through the [`Context`]) and update its local state;
//! computation is instantaneous.

use std::any::Any;

use crate::event::EventKind;
use crate::sim::Context;

/// A deterministic event-driven state machine living inside a simulation.
///
/// Implementations must be deterministic functions of (current state, event,
/// context randomness) for runs to be reproducible from a seed.
pub trait Actor<M>: 'static {
    /// Reacts to one event. All effects (sends, timers, metric marks) go
    /// through `ctx`; they are applied after the handler returns.
    fn on_event(&mut self, ctx: &mut Context<'_, M>, ev: EventKind<M>);
}

/// Object-safe wrapper adding downcasting to [`Actor`]; implemented for every
/// actor automatically. Harnesses use it to inspect actor state after a run.
pub trait AnyActor<M>: Actor<M> {
    /// Upcasts to [`Any`] for downcasting by concrete type.
    fn as_any(&self) -> &dyn Any;
    /// Mutable variant of [`AnyActor::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M, T: Actor<M> + Any> AnyActor<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
