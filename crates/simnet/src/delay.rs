//! Link delay models.
//!
//! The system model is asynchronous: link delays are arbitrary, chosen by an
//! adversary (here, a seeded random schedule or an explicit hook). The
//! common-case analyses in the paper assume synchrony — every message takes
//! exactly one delay — which is [`DelayModel::Constant`] with
//! [`Duration::DELAY`].

use rand::rngs::StdRng;
use rand::Rng;

use crate::time::{Duration, Time};

/// How long a message spends in flight on a link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelayModel {
    /// Every message takes exactly this long (synchronous link).
    Constant(Duration),
    /// Each message independently takes a uniform duration in `[lo, hi]`.
    Uniform {
        /// Minimum latency (inclusive).
        lo: Duration,
        /// Maximum latency (inclusive).
        hi: Duration,
    },
    /// Partial synchrony in the style of Dwork–Lynch–Stockmeyer: before the
    /// global stabilization time `gst` delays are uniform in `[lo, hi]`;
    /// from `gst` on, every message takes exactly `after` (a known bound
    /// holds). This is the standard liveness assumption the paper invokes.
    PartialSynchrony {
        /// Minimum pre-GST latency.
        lo: Duration,
        /// Maximum pre-GST latency.
        hi: Duration,
        /// The global stabilization time.
        gst: Time,
        /// The post-GST latency bound.
        after: Duration,
    },
}

impl DelayModel {
    /// The synchronous, failure-free common case: one network delay per hop.
    pub fn synchronous() -> DelayModel {
        DelayModel::Constant(Duration::DELAY)
    }

    /// The smallest duration this model can ever sample — the conservative
    /// *lookahead* bound the partitioned kernel ([`crate::ParSimulation`])
    /// synchronizes on: events executed concurrently within a window of
    /// this width cannot causally affect each other across partitions.
    pub fn min_delay(&self) -> Duration {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, .. } => lo,
            DelayModel::PartialSynchrony { lo, after, .. } => lo.min(after),
        }
    }

    /// Samples the in-flight duration for a message sent at `now`.
    pub fn sample(&self, now: Time, rng: &mut StdRng) -> Duration {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, hi } => sample_uniform(lo, hi, rng),
            DelayModel::PartialSynchrony { lo, hi, gst, after } => {
                if now >= gst {
                    after
                } else {
                    // A pre-GST message may still be delayed past GST, but
                    // no-loss requires eventual delivery; the sampled bound
                    // already guarantees that.
                    sample_uniform(lo, hi, rng)
                }
            }
        }
    }
}

fn sample_uniform(lo: Duration, hi: Duration, rng: &mut StdRng) -> Duration {
    assert!(lo <= hi, "uniform delay bounds inverted: {lo:?} > {hi:?}");
    if lo == hi {
        lo
    } else {
        Duration(rng.gen_range(lo.0..=hi.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = DelayModel::synchronous();
        for _ in 0..10 {
            assert_eq!(m.sample(Time::ZERO, &mut rng), Duration::DELAY);
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let lo = Duration::from_delays(1);
        let hi = Duration::from_delays(4);
        let m = DelayModel::Uniform { lo, hi };
        for _ in 0..100 {
            let d = m.sample(Time::ZERO, &mut rng);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn partial_synchrony_stabilizes() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = DelayModel::PartialSynchrony {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(10),
            gst: Time::from_delays(100),
            after: Duration::DELAY,
        };
        let d = m.sample(Time::from_delays(100), &mut rng);
        assert_eq!(d, Duration::DELAY);
        let d = m.sample(Time::from_delays(500), &mut rng);
        assert_eq!(d, Duration::DELAY);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(9),
        };
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            assert_eq!(m.sample(Time::ZERO, &mut a), m.sample(Time::ZERO, &mut b));
        }
    }
}
