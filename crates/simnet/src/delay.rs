//! Link delay models.
//!
//! The system model is asynchronous: link delays are arbitrary, chosen by an
//! adversary (here, a seeded random schedule or an explicit hook). The
//! common-case analyses in the paper assume synchrony — every message takes
//! exactly one delay — which is [`DelayModel::Constant`] with
//! [`Duration::DELAY`].
//!
//! [`DelayModel::Rdma`] refines the uniform per-hop charge into an
//! RDMA-faithful cost model: senders classify each message by *verb*
//! (inline send, one-sided WRITE/READ, CAS) and payload via [`CostClass`],
//! and the model charges per-verb base latency, payload-size-dependent
//! serialization, and doorbell batching — `k` work requests posted
//! together pay one doorbell ring plus a small per-WR increment instead of
//! `k` full rounds. Messages sent without a class (plain protocol
//! traffic) are charged as inline sends.

use rand::rngs::StdRng;
use rand::Rng;

use crate::time::{Duration, Time};

/// The RDMA verb a message models, for cost accounting under
/// [`DelayModel::Rdma`]. Non-RDMA delay models ignore the verb entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// Two-sided inline send (ordinary protocol messages, completions).
    Send,
    /// One-sided RDMA WRITE.
    Write,
    /// One-sided RDMA READ.
    Read,
    /// Atomic compare-and-swap (here: permission changes, the memory's
    /// atomically-checked control operation).
    Cas,
}

/// Cost classification of one message: which verb it models, how many
/// payload bytes it carries, and how many work requests were posted
/// together in its doorbell batch.
///
/// Producers of memory traffic (the `rdma-sim` wire layer) tag each leg;
/// everything else defaults to [`CostClass::SEND`]. Under every model but
/// [`DelayModel::Rdma`] the class is ignored, so classification never
/// perturbs existing schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostClass {
    /// The verb this message models.
    pub verb: Verb,
    /// Approximate serialized payload size, in bytes.
    pub bytes: u32,
    /// Work requests posted together (≥ 1); a doorbell batch of `k`
    /// writes is one message with `wrs = k`.
    pub wrs: u32,
}

impl CostClass {
    /// The default class: a payload-free inline send, one work request.
    pub const SEND: CostClass = CostClass {
        verb: Verb::Send,
        bytes: 0,
        wrs: 1,
    };

    /// Builds a class; `wrs` is clamped to at least 1 when charged.
    pub const fn new(verb: Verb, bytes: u32, wrs: u32) -> CostClass {
        CostClass { verb, bytes, wrs }
    }
}

/// Per-verb cost table of [`DelayModel::Rdma`], in ticks.
///
/// A message classified `(verb, bytes, wrs)` is charged
///
/// ```text
/// doorbell + base(verb) + per_wr · (wrs − 1) + per_kb · bytes / 1024 + U[0, jitter]
/// ```
///
/// — one doorbell ring per posting, the verb's base fabric latency, a
/// small increment for each *additional* work request in the batch (they
/// ride the same doorbell and pipeline on the NIC), payload
/// serialization, and optional uniform fabric jitter. Every term beyond
/// `doorbell + base` is nonnegative, so
/// [`RdmaCost::min_cost`] — `doorbell` plus the cheapest verb — is a true
/// lower bound over all verb/size/batch combinations: exactly the
/// *lookahead* the partitioned kernel ([`crate::ParSimulation`])
/// synchronizes on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RdmaCost {
    /// Base latency of a two-sided inline send.
    pub send: Duration,
    /// Base latency of a one-sided WRITE.
    pub write: Duration,
    /// Base latency of a one-sided READ.
    pub read: Duration,
    /// Base latency of an atomic CAS.
    pub cas: Duration,
    /// Doorbell ring (MMIO posting cost), charged once per message no
    /// matter how many work requests it batches.
    pub doorbell: Duration,
    /// Increment per additional work request in a doorbell batch.
    pub per_wr: Duration,
    /// Payload serialization cost per 1024 bytes (charged pro rata).
    pub per_kb: Duration,
    /// Uniform extra fabric latency in `[0, jitter]` (`0` disables the
    /// draw entirely, keeping RNG streams untouched).
    pub jitter: Duration,
}

impl RdmaCost {
    /// Symmetric verbs calibrated so a singleton small-payload operation
    /// costs exactly one network delay — the paper's synchronous unit —
    /// while batching and payload size become visible.
    pub fn baseline() -> RdmaCost {
        RdmaCost {
            send: Duration(750),
            write: Duration(750),
            read: Duration(750),
            cas: Duration(750),
            doorbell: Duration(250),
            per_wr: Duration(40),
            per_kb: Duration(30),
            jitter: Duration::ZERO,
        }
    }

    /// Asymmetric verbs in the shape RDMA microbenchmarks report:
    /// WRITE cheapest, READ pricier, CAS the most expensive.
    pub fn write_optimized() -> RdmaCost {
        RdmaCost {
            send: Duration(800),
            write: Duration(600),
            read: Duration(900),
            cas: Duration(1300),
            doorbell: Duration(250),
            per_wr: Duration(40),
            per_kb: Duration(30),
            jitter: Duration::ZERO,
        }
    }

    /// A loaded fabric: payload bandwidth dominates and latency jitters.
    pub fn congested() -> RdmaCost {
        RdmaCost {
            send: Duration(750),
            write: Duration(750),
            read: Duration(750),
            cas: Duration(750),
            doorbell: Duration(400),
            per_wr: Duration(60),
            per_kb: Duration(250),
            jitter: Duration(300),
        }
    }

    /// Cost of one classified message (see the type-level formula).
    pub fn charge(&self, class: CostClass, rng: &mut StdRng) -> Duration {
        let base = match class.verb {
            Verb::Send => self.send,
            Verb::Write => self.write,
            Verb::Read => self.read,
            Verb::Cas => self.cas,
        };
        let extra_wrs = Duration(self.per_wr.0 * (class.wrs.max(1) as u64 - 1));
        let size = Duration(self.per_kb.0 * class.bytes as u64 / 1024);
        let jitter = if self.jitter.0 == 0 {
            Duration::ZERO
        } else {
            Duration(rng.gen_range(0..=self.jitter.0))
        };
        self.doorbell + base + extra_wrs + size + jitter
    }

    /// The smallest cost any class can be charged: one doorbell plus the
    /// cheapest verb (batch, payload and jitter terms are all ≥ 0).
    pub fn min_cost(&self) -> Duration {
        self.doorbell + self.send.min(self.write).min(self.read).min(self.cas)
    }
}

/// How long a message spends in flight on a link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelayModel {
    /// Every message takes exactly this long (synchronous link).
    Constant(Duration),
    /// Each message independently takes a uniform duration in `[lo, hi]`.
    Uniform {
        /// Minimum latency (inclusive).
        lo: Duration,
        /// Maximum latency (inclusive).
        hi: Duration,
    },
    /// Partial synchrony in the style of Dwork–Lynch–Stockmeyer: before the
    /// global stabilization time `gst` delays are uniform in `[lo, hi]`;
    /// from `gst` on, every message takes exactly `after` (a known bound
    /// holds). Messages still in flight at `gst` are delivered by
    /// `gst + after` — the DLS guarantee covers *deliveries* after
    /// stabilization, not just sends.
    PartialSynchrony {
        /// Minimum pre-GST latency.
        lo: Duration,
        /// Maximum pre-GST latency.
        hi: Duration,
        /// The global stabilization time.
        gst: Time,
        /// The post-GST latency bound.
        after: Duration,
    },
    /// RDMA-faithful verb costs: per-verb base latency, payload-size
    /// serialization, and doorbell batching (see [`RdmaCost`]). Messages
    /// carry a [`CostClass`]; unclassified traffic is charged as an
    /// inline send.
    Rdma(RdmaCost),
}

impl DelayModel {
    /// The synchronous, failure-free common case: one network delay per hop.
    pub fn synchronous() -> DelayModel {
        DelayModel::Constant(Duration::DELAY)
    }

    /// The smallest duration this model can ever sample — the conservative
    /// *lookahead* bound the partitioned kernel ([`crate::ParSimulation`])
    /// synchronizes on: events executed concurrently within a window of
    /// this width cannot causally affect each other across partitions.
    /// For [`DelayModel::Rdma`] this is the minimum over **every**
    /// verb/size/batch combination ([`RdmaCost::min_cost`]).
    pub fn min_delay(&self) -> Duration {
        match self {
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform { lo, .. } => *lo,
            DelayModel::PartialSynchrony { lo, after, .. } => (*lo).min(*after),
            DelayModel::Rdma(c) => c.min_cost(),
        }
    }

    /// Samples the in-flight duration for a message sent at `now`.
    /// Equivalent to [`DelayModel::sample_classed`] with
    /// [`CostClass::SEND`].
    #[inline]
    pub fn sample(&self, now: Time, rng: &mut StdRng) -> Duration {
        self.sample_classed(now, CostClass::SEND, rng)
    }

    /// Samples the in-flight duration for a message of cost class `class`
    /// sent at `now`. Only [`DelayModel::Rdma`] distinguishes classes;
    /// every other model charges its usual per-hop delay, with identical
    /// RNG draws — classification never changes non-RDMA schedules.
    pub fn sample_classed(&self, now: Time, class: CostClass, rng: &mut StdRng) -> Duration {
        match self {
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform { lo, hi } => sample_uniform(*lo, *hi, rng),
            DelayModel::PartialSynchrony { lo, hi, gst, after } => {
                if now >= *gst {
                    *after
                } else {
                    // A pre-GST message may be delayed past GST, but no
                    // later than gst + after: once the network stabilizes
                    // the known bound applies to everything still in
                    // flight (DLS). The draw happens regardless, so the
                    // RNG stream does not depend on the cap.
                    let latest = (*gst + *after) - now;
                    sample_uniform(*lo, *hi, rng).min(latest)
                }
            }
            DelayModel::Rdma(c) => c.charge(class, rng),
        }
    }
}

fn sample_uniform(lo: Duration, hi: Duration, rng: &mut StdRng) -> Duration {
    assert!(lo <= hi, "uniform delay bounds inverted: {lo:?} > {hi:?}");
    if lo == hi {
        lo
    } else {
        Duration(rng.gen_range(lo.0..=hi.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = DelayModel::synchronous();
        for _ in 0..10 {
            assert_eq!(m.sample(Time::ZERO, &mut rng), Duration::DELAY);
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let lo = Duration::from_delays(1);
        let hi = Duration::from_delays(4);
        let m = DelayModel::Uniform { lo, hi };
        for _ in 0..100 {
            let d = m.sample(Time::ZERO, &mut rng);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn partial_synchrony_stabilizes() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = DelayModel::PartialSynchrony {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(10),
            gst: Time::from_delays(100),
            after: Duration::DELAY,
        };
        let d = m.sample(Time::from_delays(100), &mut rng);
        assert_eq!(d, Duration::DELAY);
        let d = m.sample(Time::from_delays(500), &mut rng);
        assert_eq!(d, Duration::DELAY);
    }

    #[test]
    fn partial_synchrony_in_flight_messages_respect_the_dls_bound() {
        // A message sent one tick before GST must deliver by gst + after,
        // even though the pre-GST uniform range would allow much later.
        let gst = Time::from_delays(100);
        let after = Duration::DELAY;
        let m = DelayModel::PartialSynchrony {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(50),
            gst,
            after,
        };
        let mut rng = StdRng::seed_from_u64(11);
        for sent_delays in [95u64, 99, 50, 0] {
            let sent = Time::from_delays(sent_delays);
            for _ in 0..200 {
                let d = m.sample(sent, &mut rng);
                assert!(
                    sent + d <= gst + after,
                    "sent at {sent:?}, delivered at {:?} after gst+after",
                    sent + d
                );
                assert!(d >= m.min_delay(), "cap broke the lookahead bound");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(9),
        };
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            assert_eq!(m.sample(Time::ZERO, &mut a), m.sample(Time::ZERO, &mut b));
        }
    }

    #[test]
    fn rdma_baseline_singleton_costs_one_delay() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Rdma(RdmaCost::baseline());
        // An unclassified protocol message and a small singleton write
        // both cost exactly one network delay: calibrated to the paper's
        // synchronous unit.
        assert_eq!(m.sample(Time::ZERO, &mut rng), Duration::DELAY);
        let w = m.sample_classed(Time::ZERO, CostClass::new(Verb::Write, 64, 1), &mut rng);
        assert_eq!(w, Duration::DELAY + Duration(30 * 64 / 1024));
    }

    #[test]
    fn rdma_doorbell_batching_amortizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = RdmaCost::baseline();
        let one = c.charge(CostClass::new(Verb::Write, 64, 1), &mut rng);
        let eight = c.charge(CostClass::new(Verb::Write, 8 * 64, 8), &mut rng);
        // One batched posting of 8 WRs is far cheaper than 8 rounds...
        assert!(eight < Duration(8 * one.0), "batching did not amortize");
        // ...but dearer than a single WR (per-WR and payload terms).
        assert!(eight > one);
    }

    #[test]
    fn rdma_verbs_are_distinguished() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Rdma(RdmaCost::write_optimized());
        let mut at = |v| m.sample_classed(Time::ZERO, CostClass::new(v, 0, 1), &mut rng);
        let (w, r, c, s) = (
            at(Verb::Write),
            at(Verb::Read),
            at(Verb::Cas),
            at(Verb::Send),
        );
        assert!(
            w < s && s < r && r < c,
            "verb ordering: {w:?} {s:?} {r:?} {c:?}"
        );
    }

    #[test]
    fn rdma_min_cost_is_a_true_lower_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        for cost in [
            RdmaCost::baseline(),
            RdmaCost::write_optimized(),
            RdmaCost::congested(),
        ] {
            let m = DelayModel::Rdma(cost);
            let floor = m.min_delay();
            assert!(floor > Duration::ZERO);
            for verb in [Verb::Send, Verb::Write, Verb::Read, Verb::Cas] {
                for bytes in [0u32, 1, 64, 4096, 1 << 20] {
                    for wrs in [0u32, 1, 2, 32, 1024] {
                        for _ in 0..4 {
                            let d = m.sample_classed(
                                Time::ZERO,
                                CostClass::new(verb, bytes, wrs),
                                &mut rng,
                            );
                            assert!(d >= floor, "{verb:?} {bytes}B x{wrs}: {d:?} < {floor:?}");
                        }
                    }
                }
            }
        }
    }
}
