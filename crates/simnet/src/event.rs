//! Events delivered to actors.

use crate::ids::{ActorId, TimerId};

/// An event delivered to an actor's [`Actor::on_event`] hook.
///
/// [`Actor::on_event`]: crate::Actor::on_event
#[derive(Clone, Debug)]
pub enum EventKind<M> {
    /// The simulation has started. Delivered once to every actor at its
    /// scheduled start time (time zero unless the harness staggered starts).
    Start,
    /// A message arrived over a link.
    ///
    /// Links satisfy the paper's *integrity* (a message is received at most
    /// once and only if previously sent) and *no-loss* (every sent message is
    /// eventually received) properties; the kernel never drops or duplicates.
    Msg {
        /// The sending actor.
        from: ActorId,
        /// The payload.
        msg: M,
    },
    /// A timer set by this actor expired.
    Timer {
        /// The id returned when the timer was set.
        id: TimerId,
        /// The caller-chosen tag distinguishing timer purposes.
        tag: u64,
    },
    /// The leader oracle (the paper's Ω failure detector) announced a new
    /// leader. The harness scripts oracle behaviour; after the global
    /// stabilization time it must converge on a single correct process to
    /// provide Ω's eventual accuracy.
    LeaderChange {
        /// The actor now trusted as leader.
        leader: ActorId,
    },
}

impl<M> EventKind<M> {
    /// A terse tag for tracing.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EventKind::Start => "start",
            EventKind::Msg { .. } => "msg",
            EventKind::Timer { .. } => "timer",
            EventKind::LeaderChange { .. } => "leader",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        let e: EventKind<u8> = EventKind::Start;
        assert_eq!(e.kind_name(), "start");
        let e: EventKind<u8> = EventKind::Msg {
            from: ActorId(0),
            msg: 1,
        };
        assert_eq!(e.kind_name(), "msg");
        let e: EventKind<u8> = EventKind::Timer {
            id: TimerId(0),
            tag: 9,
        };
        assert_eq!(e.kind_name(), "timer");
        let e: EventKind<u8> = EventKind::LeaderChange { leader: ActorId(1) };
        assert_eq!(e.kind_name(), "leader");
    }
}
