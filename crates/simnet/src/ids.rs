//! Identifiers for simulation entities.

use std::fmt;

/// Identifies an actor (a process or a memory) within one simulation.
///
/// Actor ids are dense, assigned in registration order starting from 0.
/// Whether an id denotes a process or a memory is a convention of the
/// harness that built the simulation; the kernel treats all actors alike.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// The raw index of this actor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifies a pending timer set through [`Context::set_timer`].
///
/// [`Context::set_timer`]: crate::Context::set_timer
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(ActorId(3).to_string(), "a3");
        assert_eq!(format!("{:?}", ActorId(3)), "a3");
        assert_eq!(ActorId(7).index(), 7);
    }
}
