//! # simnet — deterministic discrete-event simulation kernel
//!
//! The substrate on which this workspace reproduces *The Impact of RDMA on
//! Agreement* (Aguilera et al., PODC 2019). The paper's model (§3) is a
//! **message-and-memory** (M&M) system: `n` processes and `m` shared
//! memories, where processes communicate both by sending messages and by
//! reading/writing remote memory. This crate provides the common kernel —
//! actors, virtual time, links, failures — while the RDMA-specific memory
//! semantics live in the `rdma-sim` crate (memories are just actors here).
//!
//! ## Fidelity to the paper's model
//!
//! * **Asynchrony.** Delays are arbitrary per-message values chosen by a
//!   seeded adversary ([`DelayModel`], [`DelayHook`]). Safety tests run under
//!   adversarial schedules; liveness tests add partial synchrony
//!   ([`DelayModel::PartialSynchrony`]).
//! * **Delay metric.** The paper's performance unit: a message takes one
//!   delay; a memory operation takes two (request + response legs, each a
//!   message here). [`Time::as_delays`] and [`Metrics::first_decision_delays`]
//!   expose decision latency in exactly those units. An optional
//!   RDMA-faithful refinement ([`DelayModel::Rdma`]) charges per-verb
//!   costs (send/WRITE/READ/CAS), payload serialization, and doorbell
//!   batching instead of a uniform per-hop price; senders classify
//!   traffic via [`Context::send_classed`] and [`CostClass`].
//! * **Failures.** [`Simulation::crash_at`] silences an actor: a crashed
//!   process takes no more steps, a crashed memory hangs without responding
//!   (indistinguishable from a slow one, as §3 requires). Byzantine behaviour
//!   is modelled by registering a malicious [`Actor`] implementation; the
//!   *trusted* components (memories enforcing permissions, the signature
//!   authority) are separate actors/objects a Byzantine process cannot
//!   subvert.
//! * **Determinism.** Every run is a pure function of its seed: the event
//!   queue breaks ties by scheduling order and randomness flows from one
//!   seeded generator.
//!
//! ## Performance model
//!
//! Kernel dispatch is the wall-clock floor under every experiment, so the
//! hot path is engineered around three rules:
//!
//! * **Queue structure.** The event queue is a bucketed calendar queue
//!   ("timing wheel"): one bucket per virtual tick over a 2^15-tick
//!   near-future window, a two-level occupancy bitmap to find the next
//!   non-empty tick in a few word operations, and a binary-heap fallback
//!   for far-future events that migrate into the wheel as time approaches
//!   them. Push and pop are O(1) in the common case, with no
//!   sift-up/sift-down moves of event payloads; the win over the old
//!   `BinaryHeap` kernel grows with the number of in-flight events
//!   (≈2x events/sec with tens of thousands queued — see
//!   `BENCH_PR1.json`'s `kernel_queue_stress`).
//! * **Allocation rules.** Steady-state dispatch performs no heap
//!   allocation: link delays are sampled by reference (no per-send model
//!   clone), kernel trace lines are `&'static str` and actor notes are
//!   lazy ([`Context::note_with`]) so disabled tracing costs nothing,
//!   timers use generation-stamped slots (O(1) arm/cancel/fire, bounded
//!   memory — the old cancelled-timer tombstone set grew forever), the
//!   per-dispatch pending buffer is recycled, and crash flags live in a
//!   dense bitvector.
//! * **Determinism contract.** Events dispatch in strictly ascending
//!   `(time, seq)` order, where `seq` is the kernel-assigned scheduling
//!   sequence number; RNG draws happen in dispatch order. Any conforming
//!   queue implementation is therefore observationally identical; the
//!   golden-schedule suite pins recorded decisions, metrics, and traces
//!   so any schedule drift fails loudly. (The pre-overhaul heap kernel,
//!   once kept as a `Legacy` profile for differential testing, is
//!   retired: the scenario fuzzer's golden pins cover that role.)
//!
//! ## Partitioned parallel execution
//!
//! For workloads made of loosely-coupled actor clusters (the sharded SMR
//! service's disjoint replication groups), [`ParSimulation`] splits the
//! kernel into per-partition sub-kernels — each with its own calendar
//! queue, timer table, metrics, and RNG stream — executed on a scoped
//! thread pool under conservative window synchronization: partitions run
//! independently for one *lookahead* (the minimum cross-partition link
//! delay) of virtual time, then exchange staged cross-partition messages
//! at a barrier in a fixed merge order. Results are bit-identical for any
//! worker-thread count; see the [`partition`](ParSimulation) module docs
//! for the protocol and the determinism argument.
//!
//! ## Example
//!
//! ```
//! use simnet::{Actor, Context, EventKind, Simulation, Time};
//!
//! struct Counter { seen: u32 }
//! impl Actor<u32> for Counter {
//!     fn on_event(&mut self, _ctx: &mut Context<'_, u32>, ev: EventKind<u32>) {
//!         if let EventKind::Msg { msg, .. } = ev { self.seen += msg; }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let counter = sim.add(Counter { seen: 0 });
//! sim.schedule(Time::ZERO, counter, EventKind::Msg { from: counter, msg: 41 });
//! sim.run_to_quiescence(Time::from_delays(10));
//! assert_eq!(sim.actor_as::<Counter>(counter).unwrap().seen, 41);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod actor;
mod delay;
mod event;
mod ids;
mod metrics;
pub mod obs;
mod partition;
mod queue;
mod sim;
mod time;
mod trace;

pub use actor::{Actor, AnyActor};
pub use delay::{CostClass, DelayModel, RdmaCost, Verb};
pub use event::EventKind;
pub use ids::{ActorId, TimerId};
pub use metrics::Metrics;
pub use partition::{ParActors, ParSimulation, Partitioning};
pub use sim::{Choice, ChoiceHook, ChoicePayload, Context, DelayHook, RunOutcome, Simulation};
pub use time::{Duration, Time, TICKS_PER_DELAY};
pub use trace::{Trace, TraceEntry};
