//! Per-run metrics.
//!
//! The benchmarks in this repository reproduce the paper's evaluation metric
//! — decision latency in network delays — plus auxiliary cost counters
//! (messages, memory operations, signatures) used by the signature-count and
//! throughput experiments.

use std::collections::BTreeMap;

use crate::ids::ActorId;
use crate::time::Time;

/// Cap on the sampled queue-depth series: when reached, every other
/// sample is discarded and the sampling stride doubles, so memory stays
/// bounded on arbitrarily long runs while coverage stays uniform.
const QUEUE_SAMPLE_CAP: usize = 256;

/// Dispatch counts broken out by event kind — `peak_queue_len`'s
/// companion: *what* the kernel was dispatching, not just how deep the
/// queue got. The fields sum to [`Metrics::events_dispatched`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchCounts {
    /// `Start` events dispatched.
    pub start: u64,
    /// Messages delivered to live actors.
    pub msg: u64,
    /// Timer events dispatched to live actors (stale ones included —
    /// they were scheduled and popped even if the actor never saw them).
    pub timer: u64,
    /// Leader-change announcements dispatched.
    pub leader: u64,
    /// Crash events executed.
    pub crash: u64,
    /// Events dropped because the recipient had crashed.
    pub dropped: u64,
}

impl DispatchCounts {
    /// Total dispatches across all kinds.
    pub fn total(&self) -> u64 {
        self.start + self.msg + self.timer + self.leader + self.crash + self.dropped
    }
}

/// Counters and timestamps accumulated over one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Events dispatched by the kernel (messages, timers, starts, leader
    /// changes, crashes, and drops to crashed actors). The denominator of
    /// the events/sec and allocations-per-event perf metrics.
    pub events_dispatched: u64,
    /// The same dispatches broken out per event kind.
    pub dispatches: DispatchCounts,
    /// Messages handed to the network (includes memory-operation legs).
    pub messages_sent: u64,
    /// Messages actually delivered (excludes those addressed to crashed actors).
    pub messages_delivered: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Memory read operations submitted (counted by the memory client).
    pub mem_reads: u64,
    /// Memory write operations submitted.
    pub mem_writes: u64,
    /// Memory range-read operations submitted.
    pub mem_range_reads: u64,
    /// Permission-change operations submitted.
    pub perm_changes: u64,
    /// Deepest the kernel event queue ever got, in scheduled events. Large
    /// multi-group workloads (many actors, many in-flight messages) are
    /// where queue depth — and the calendar queue's O(1) advantage over the
    /// legacy heap — shows up; this exposes it to the perf snapshots.
    pub peak_queue_len: u64,
    /// Deterministically sampled `(ticks, queue depth)` series: one
    /// sample every `queue_sample_stride` dispatches, decimated (stride
    /// doubled, every other sample dropped) whenever the series would
    /// exceed its cap. Purely a function of the dispatch sequence, so it
    /// is identical across replays and worker-thread counts.
    queue_depth_samples: Vec<(u64, u64)>,
    /// Current sampling stride in dispatches (starts at 1, doubles on
    /// decimation).
    queue_sample_stride: u64,
    /// When each actor first reported a decision, in event order.
    decisions: BTreeMap<ActorId, Time>,
    /// When each actor reported aborting (Cheap Quorum panic path).
    aborts: BTreeMap<ActorId, Time>,
}

impl Metrics {
    /// Creates an empty metrics record.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records that `actor` decided at `at`. Later reports for the same
    /// actor are ignored (decisions are irrevocable).
    pub fn record_decision(&mut self, actor: ActorId, at: Time) {
        self.decisions.entry(actor).or_insert(at);
    }

    /// Records that `actor` aborted (gave up on a fast path) at `at`.
    pub fn record_abort(&mut self, actor: ActorId, at: Time) {
        self.aborts.entry(actor).or_insert(at);
    }

    /// The instant of the earliest decision, if any.
    ///
    /// A protocol is *k-deciding* if in common-case executions some process
    /// decides within k delays; this is the measured quantity.
    pub fn first_decision(&self) -> Option<Time> {
        self.decisions.values().copied().min()
    }

    /// The earliest decision expressed in network delays.
    pub fn first_decision_delays(&self) -> Option<f64> {
        self.first_decision().map(Time::as_delays)
    }

    /// When `actor` first decided, if it has.
    pub fn decision_time(&self, actor: ActorId) -> Option<Time> {
        self.decisions.get(&actor).copied()
    }

    /// All recorded decision instants, keyed by actor.
    pub fn decisions(&self) -> &BTreeMap<ActorId, Time> {
        &self.decisions
    }

    /// All recorded abort instants, keyed by actor.
    pub fn aborts(&self) -> &BTreeMap<ActorId, Time> {
        &self.aborts
    }

    /// Total memory operations of all kinds.
    pub fn mem_ops(&self) -> u64 {
        self.mem_reads + self.mem_writes + self.mem_range_reads + self.perm_changes
    }

    /// Offers one queue-depth observation (taken by the kernel at every
    /// dispatch, *before* the pop). Kept only if the current dispatch
    /// count lands on the sampling stride; the series decimates itself to
    /// stay under a fixed cap.
    pub fn sample_queue_depth(&mut self, at: Time, depth: u64) {
        let stride = self.queue_sample_stride.max(1);
        if !self.events_dispatched.is_multiple_of(stride) {
            return;
        }
        self.queue_depth_samples.push((at.0, depth));
        if self.queue_depth_samples.len() >= QUEUE_SAMPLE_CAP {
            let mut keep = false;
            self.queue_depth_samples.retain(|_| {
                keep = !keep;
                keep
            });
            self.queue_sample_stride = stride * 2;
        }
    }

    /// The sampled `(ticks, queue depth)` series, in time order.
    pub fn queue_depth_samples(&self) -> &[(u64, u64)] {
        &self.queue_depth_samples
    }

    /// The current queue-depth sampling stride, in dispatches.
    pub fn queue_sample_stride(&self) -> u64 {
        self.queue_sample_stride.max(1)
    }

    /// Folds another partition's metrics into this record (the partitioned
    /// kernel keeps one [`Metrics`] per sub-kernel and merges at the end):
    /// event/message/memory counters sum; `peak_queue_len` takes the max —
    /// under partitioning there is no single global queue, so the merged
    /// value means "deepest any partition's queue got" and the per-partition
    /// peaks are reported alongside it; decision and abort instants union,
    /// keeping the earliest per actor (decisions are irrevocable).
    pub fn absorb(&mut self, other: &Metrics) {
        self.events_dispatched += other.events_dispatched;
        self.dispatches.start += other.dispatches.start;
        self.dispatches.msg += other.dispatches.msg;
        self.dispatches.timer += other.dispatches.timer;
        self.dispatches.leader += other.dispatches.leader;
        self.dispatches.crash += other.dispatches.crash;
        self.dispatches.dropped += other.dispatches.dropped;
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.timers_fired += other.timers_fired;
        self.mem_reads += other.mem_reads;
        self.mem_writes += other.mem_writes;
        self.mem_range_reads += other.mem_range_reads;
        self.perm_changes += other.perm_changes;
        self.peak_queue_len = self.peak_queue_len.max(other.peak_queue_len);
        // Queue-depth series: merge-sort by time (each series is already
        // time-ordered; partition index is immaterial after the merge)
        // and re-decimate to the cap. Deterministic because absorb is
        // called in fixed partition order.
        let mut merged =
            Vec::with_capacity(self.queue_depth_samples.len() + other.queue_depth_samples.len());
        {
            let (a, b) = (&self.queue_depth_samples, &other.queue_depth_samples);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                if a[i] <= b[j] {
                    merged.push(a[i]);
                    i += 1;
                } else {
                    merged.push(b[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&a[i..]);
            merged.extend_from_slice(&b[j..]);
        }
        while merged.len() >= QUEUE_SAMPLE_CAP {
            let mut keep = false;
            merged.retain(|_| {
                keep = !keep;
                keep
            });
        }
        self.queue_depth_samples = merged;
        self.queue_sample_stride = self
            .queue_sample_stride
            .max(other.queue_sample_stride)
            .max(1);
        for (&actor, &at) in &other.decisions {
            self.decisions
                .entry(actor)
                .and_modify(|t| *t = (*t).min(at))
                .or_insert(at);
        }
        for (&actor, &at) in &other.aborts {
            self.aborts
                .entry(actor)
                .and_modify(|t| *t = (*t).min(at))
                .or_insert(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_decision_is_min() {
        let mut m = Metrics::new();
        assert_eq!(m.first_decision(), None);
        m.record_decision(ActorId(1), Time::from_delays(5));
        m.record_decision(ActorId(0), Time::from_delays(2));
        assert_eq!(m.first_decision(), Some(Time::from_delays(2)));
        assert_eq!(m.first_decision_delays(), Some(2.0));
    }

    #[test]
    fn decisions_are_irrevocable() {
        let mut m = Metrics::new();
        m.record_decision(ActorId(0), Time::from_delays(2));
        m.record_decision(ActorId(0), Time::from_delays(9));
        assert_eq!(m.decision_time(ActorId(0)), Some(Time::from_delays(2)));
    }

    #[test]
    fn mem_ops_totals() {
        let mut m = Metrics::new();
        m.mem_reads = 2;
        m.mem_writes = 3;
        m.mem_range_reads = 1;
        m.perm_changes = 4;
        assert_eq!(m.mem_ops(), 10);
    }

    #[test]
    fn dispatch_counts_sum_and_absorb() {
        let mut a = Metrics::new();
        a.events_dispatched = 5;
        a.dispatches.msg = 3;
        a.dispatches.timer = 2;
        let mut b = Metrics::new();
        b.events_dispatched = 2;
        b.dispatches.start = 1;
        b.dispatches.crash = 1;
        a.absorb(&b);
        assert_eq!(a.dispatches.total(), 7);
        assert_eq!(a.dispatches.total(), a.events_dispatched);
    }

    #[test]
    fn queue_samples_decimate_under_cap() {
        let mut m = Metrics::new();
        for i in 0..10_000u64 {
            m.events_dispatched = i;
            m.sample_queue_depth(Time(i * 10), i % 97);
        }
        assert!(m.queue_depth_samples().len() < QUEUE_SAMPLE_CAP);
        assert!(m.queue_sample_stride() > 1, "stride doubled at least once");
        // Series stays time-ordered.
        let s = m.queue_depth_samples();
        assert!(s.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn queue_samples_are_replay_identical() {
        let run = || {
            let mut m = Metrics::new();
            for i in 0..5_000u64 {
                m.events_dispatched = i;
                m.sample_queue_depth(Time(i * 3), (i * 7) % 31);
            }
            m.queue_depth_samples().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn absorb_merges_queue_series_in_time_order() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        for i in 0..50u64 {
            a.events_dispatched = i;
            a.sample_queue_depth(Time(i * 4), i);
            b.events_dispatched = i;
            b.sample_queue_depth(Time(i * 4 + 2), 100 + i);
        }
        a.absorb(&b);
        let s = a.queue_depth_samples();
        assert_eq!(s.len(), 100);
        assert!(s.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
