//! Per-run metrics.
//!
//! The benchmarks in this repository reproduce the paper's evaluation metric
//! — decision latency in network delays — plus auxiliary cost counters
//! (messages, memory operations, signatures) used by the signature-count and
//! throughput experiments.

use std::collections::BTreeMap;

use crate::ids::ActorId;
use crate::time::Time;

/// Counters and timestamps accumulated over one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Events dispatched by the kernel (messages, timers, starts, leader
    /// changes, crashes, and drops to crashed actors). The denominator of
    /// the events/sec and allocations-per-event perf metrics.
    pub events_dispatched: u64,
    /// Messages handed to the network (includes memory-operation legs).
    pub messages_sent: u64,
    /// Messages actually delivered (excludes those addressed to crashed actors).
    pub messages_delivered: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Memory read operations submitted (counted by the memory client).
    pub mem_reads: u64,
    /// Memory write operations submitted.
    pub mem_writes: u64,
    /// Memory range-read operations submitted.
    pub mem_range_reads: u64,
    /// Permission-change operations submitted.
    pub perm_changes: u64,
    /// Deepest the kernel event queue ever got, in scheduled events. Large
    /// multi-group workloads (many actors, many in-flight messages) are
    /// where queue depth — and the calendar queue's O(1) advantage over the
    /// legacy heap — shows up; this exposes it to the perf snapshots.
    pub peak_queue_len: u64,
    /// When each actor first reported a decision, in event order.
    decisions: BTreeMap<ActorId, Time>,
    /// When each actor reported aborting (Cheap Quorum panic path).
    aborts: BTreeMap<ActorId, Time>,
}

impl Metrics {
    /// Creates an empty metrics record.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records that `actor` decided at `at`. Later reports for the same
    /// actor are ignored (decisions are irrevocable).
    pub fn record_decision(&mut self, actor: ActorId, at: Time) {
        self.decisions.entry(actor).or_insert(at);
    }

    /// Records that `actor` aborted (gave up on a fast path) at `at`.
    pub fn record_abort(&mut self, actor: ActorId, at: Time) {
        self.aborts.entry(actor).or_insert(at);
    }

    /// The instant of the earliest decision, if any.
    ///
    /// A protocol is *k-deciding* if in common-case executions some process
    /// decides within k delays; this is the measured quantity.
    pub fn first_decision(&self) -> Option<Time> {
        self.decisions.values().copied().min()
    }

    /// The earliest decision expressed in network delays.
    pub fn first_decision_delays(&self) -> Option<f64> {
        self.first_decision().map(Time::as_delays)
    }

    /// When `actor` first decided, if it has.
    pub fn decision_time(&self, actor: ActorId) -> Option<Time> {
        self.decisions.get(&actor).copied()
    }

    /// All recorded decision instants, keyed by actor.
    pub fn decisions(&self) -> &BTreeMap<ActorId, Time> {
        &self.decisions
    }

    /// All recorded abort instants, keyed by actor.
    pub fn aborts(&self) -> &BTreeMap<ActorId, Time> {
        &self.aborts
    }

    /// Total memory operations of all kinds.
    pub fn mem_ops(&self) -> u64 {
        self.mem_reads + self.mem_writes + self.mem_range_reads + self.perm_changes
    }

    /// Folds another partition's metrics into this record (the partitioned
    /// kernel keeps one [`Metrics`] per sub-kernel and merges at the end):
    /// event/message/memory counters sum; `peak_queue_len` takes the max —
    /// under partitioning there is no single global queue, so the merged
    /// value means "deepest any partition's queue got" and the per-partition
    /// peaks are reported alongside it; decision and abort instants union,
    /// keeping the earliest per actor (decisions are irrevocable).
    pub fn absorb(&mut self, other: &Metrics) {
        self.events_dispatched += other.events_dispatched;
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.timers_fired += other.timers_fired;
        self.mem_reads += other.mem_reads;
        self.mem_writes += other.mem_writes;
        self.mem_range_reads += other.mem_range_reads;
        self.perm_changes += other.perm_changes;
        self.peak_queue_len = self.peak_queue_len.max(other.peak_queue_len);
        for (&actor, &at) in &other.decisions {
            self.decisions
                .entry(actor)
                .and_modify(|t| *t = (*t).min(at))
                .or_insert(at);
        }
        for (&actor, &at) in &other.aborts {
            self.aborts
                .entry(actor)
                .and_modify(|t| *t = (*t).min(at))
                .or_insert(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_decision_is_min() {
        let mut m = Metrics::new();
        assert_eq!(m.first_decision(), None);
        m.record_decision(ActorId(1), Time::from_delays(5));
        m.record_decision(ActorId(0), Time::from_delays(2));
        assert_eq!(m.first_decision(), Some(Time::from_delays(2)));
        assert_eq!(m.first_decision_delays(), Some(2.0));
    }

    #[test]
    fn decisions_are_irrevocable() {
        let mut m = Metrics::new();
        m.record_decision(ActorId(0), Time::from_delays(2));
        m.record_decision(ActorId(0), Time::from_delays(9));
        assert_eq!(m.decision_time(ActorId(0)), Some(Time::from_delays(2)));
    }

    #[test]
    fn mem_ops_totals() {
        let mut m = Metrics::new();
        m.mem_reads = 2;
        m.mem_writes = 3;
        m.mem_range_reads = 1;
        m.perm_changes = 4;
        assert_eq!(m.mem_ops(), 10);
    }
}
